"""Determining contention states without running the probe.

§3.3's estimation variant: regress the probing query's cost on a few
system statistics (eq. (2): CPU load, I/O utilization, used memory),
then read the contention state from a cheap statistics snapshot instead
of executing the probe.  This example calibrates the estimator, shows
which parameters the significance screen keeps, and compares the state
assignments (and resulting cost estimates) against the observed-probe
path.

Run:  python examples/probing_estimation.py
"""

from repro.core import CostModelBuilder, G1, ProbingCostEstimator
from repro.env import EnvironmentMonitor
from repro.workload import make_site


def main() -> None:
    site = make_site("probe_site", environment_kind="uniform", scale=0.02, seed=19)
    builder = CostModelBuilder(site.database)
    monitor = EnvironmentMonitor(site.environment)

    print("calibrating the probing-cost estimator (eq. (2)) ...")
    estimator = ProbingCostEstimator()
    fit = estimator.calibrate(builder.probe, monitor, samples=80)
    print(f"  kept parameters: {list(estimator.selected_parameters)}")
    print(f"  regression R2 = {fit.r_squared:.3f}, SEE = {fit.standard_error:.4f}\n")

    print("deriving a G1 multi-states model ...")
    outcome = builder.build(G1, site.generator.queries_for(G1, 150), "iupma")
    model = outcome.model
    print(f"  {model.num_states} states over probing costs "
          f"[{model.states.cmin:.3f}, {model.states.cmax:.3f}]\n")

    print("state determination, observed vs estimated probing costs:")
    agree = 0
    rounds = 12
    for i in range(rounds):
        snapshot = monitor.statistics()
        estimated = estimator.estimate(snapshot)
        observed = builder.probe.observe()
        s_est = model.state_for(estimated)
        s_obs = model.state_for(observed)
        agree += s_est == s_obs
        print(
            f"  t={site.environment.now:8.0f}s  level={site.environment.level():.2f}  "
            f"probe obs={observed:6.3f}s est={estimated:6.3f}s  "
            f"state obs=s{s_obs} est=s{s_est}"
        )
        site.environment.advance(120.0)
    print(f"\nstates agreed on {agree}/{rounds} snapshots — estimation is "
          "cheaper per check, at a small accuracy cost.")


if __name__ == "__main__":
    main()
