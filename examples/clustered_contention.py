"""Clustered contention: when and why ICMA beats IUPMA.

Many real sites are not uniformly loaded — they idle most of the day,
run moderate load during business hours, and spike during batch windows.
The paper models this as a clustered contention distribution and offers
ICMA (clustering-based state determination) for it.

This example samples one query class in such an environment, prints the
Figure-10-style histogram of probing costs, shows the state boundaries
each algorithm picks, and scores both models on the same test queries.

Run:  python examples/clustered_contention.py
"""

import numpy as np

from repro.core import (
    CostModelBuilder,
    G2,
    StatesConfig,
    agglomerate,
    determine_states_icma,
    determine_states_iupma,
    validate_model,
)
from repro.experiments import ascii_histogram
from repro.workload import make_site


def main() -> None:
    site = make_site("clustered_site", environment_kind="clustered", scale=0.02, seed=41)
    builder = CostModelBuilder(site.database)

    print("sampling G2 queries under clustered contention ...")
    train = builder.collect(site.generator.queries_for(G2, 170))
    test = builder.collect(site.generator.queries_for(G2, 60))

    probing = np.array([o.probing_cost for o in train])
    print()
    print(ascii_histogram(probing.tolist(), bins=16,
                          title="probing-cost histogram (Figure 10 analogue)"))

    clusters = agglomerate(probing.tolist(), 3)
    print("\nagglomerative clusters (centroid linkage):")
    for c in clusters:
        print(f"  [{c.minimum:.3f}, {c.maximum:.3f}]  n={c.count}  centroid={c.centroid:.3f}")

    names = G2.variables.basic
    X = np.array([[o.values[n] for n in names] for o in train])
    y = np.array([o.cost for o in train])
    config = StatesConfig()
    iupma = determine_states_iupma(X, y, probing, names, config)
    icma = determine_states_icma(X, y, probing, names, config)
    print(f"\nIUPMA states: {iupma.states.describe()}")
    print(f"ICMA  states: {icma.states.describe()}")

    print()
    for algorithm in ("iupma", "icma"):
        model = builder.build_from_observations(train, G2, algorithm).model
        report = validate_model(model, test)
        print(
            f"{algorithm.upper():5s}: {model.num_states} states, "
            f"R2={report.r_squared:.3f}, very good {report.pct_very_good:.0f}%, "
            f"good {report.pct_good:.0f}%"
        )
    print(
        "\nICMA's boundaries track the load clusters, so each state's "
        "equation fits a\nnarrow contention band instead of an arbitrary "
        "uniform slice."
    )


if __name__ == "__main__":
    main()
