"""Operating a calibrated site over time: replay + maintenance.

Simulates a day in the life of one local site in the MDBS:

1. derive multi-states cost models for the classes the workload uses;
2. replay a mixed, timed query workload while the contention level keeps
   moving — each query is estimated *just in time* (fresh probing cost)
   exactly as the global optimizer would;
3. let the database change (bulk growth + a new index — §2's
   occasionally-changing factors) and watch the :class:`ModelMaintainer`
   detect it and re-derive the affected models.

Run:  python examples/workload_replay.py
"""

from repro.core import (
    ChangeDetector,
    CostModelBuilder,
    G1,
    G2,
    ModelMaintainer,
)
from repro.workload import WorkloadTrace, make_site, replay_trace


def main() -> None:
    site = make_site("ops_site", environment_kind="uniform", scale=0.02, seed=29)
    builder = CostModelBuilder(site.database)

    print("deriving cost models for the workload's classes (G1, G2) ...")
    maintainer = ModelMaintainer(
        builder,
        detector=ChangeDetector(site.database, cardinality_drift=0.2),
        rebuild_period_seconds=500_000.0,
    )
    for query_class in (G1, G2):
        outcome = maintainer.register(
            query_class,
            lambda n, qc=query_class: site.generator.queries_for(qc, n),
            sample_count=140,
        )
        print(
            f"  {query_class.label}: {outcome.model.num_states} states, "
            f"R2={outcome.model.r_squared:.3f}"
        )

    print("\nreplaying a 2-hour mixed workload (40 queries) ...")
    trace = WorkloadTrace.mixed(
        site.generator, {G1: 25, G2: 15}, duration_seconds=7200.0, seed=5
    )
    models = {label: outcome.model for label, outcome in maintainer.models.items()}
    report = replay_trace(site.database, trace, models, builder.probe)
    print(
        f"  estimates: {report.pct_very_good:.0f}% very good, "
        f"{report.pct_good:.0f}% good across contention levels "
        f"{min(r.contention_level for r in report.records):.2f}.."
        f"{max(r.contention_level for r in report.records):.2f}"
    )
    for label, records in sorted(report.by_class().items()):
        errors = [r.rel_error for r in records if r.covered]
        print(
            f"  {label}: {len(records)} queries, "
            f"median rel err {sorted(errors)[len(errors) // 2]:.2f}"
        )

    print("\nnow the database changes: R1 grows 60% and gains an index ...")
    table = site.database.catalog.table("R1")
    import numpy as np

    rng = np.random.default_rng(1)
    rows = table.rows()
    for _ in range(int(table.cardinality * 0.6)):
        table.insert(rows[int(rng.integers(0, len(rows)))])
    site.database.create_index("R1_nc_a5", "R1", "a5")
    site.database.analyze()

    due = maintainer.due()
    print("maintenance finds models due for rebuild:")
    for label, reasons in due.items():
        for reason in reasons[:3]:
            print(f"  {label}: {reason}")
    rebuilt = maintainer.maintain()
    for label, outcome in rebuilt.items():
        print(
            f"rebuilt {label}: {outcome.model.num_states} states, "
            f"R2={outcome.model.r_squared:.3f}"
        )
    print("\n(the frequently-changing load needed no rebuild at all — the")
    print("qualitative variable absorbs it; only catalog-level drift does.)")


if __name__ == "__main__":
    main()
