"""Quickstart: derive a multi-states cost model and estimate query costs.

Builds one simulated local database system under uniformly dynamic load,
derives a cost model for the sequential-scan query class (G1) with the
multi-states query sampling method, and compares its estimates against
observed costs for a few fresh queries.

Run:  python examples/quickstart.py
"""

from repro.core import CostModelBuilder, G1, classify, validate_model
from repro.workload import make_site


def main() -> None:
    # A local site: Oracle-like engine, tables R1..R12 (scaled down),
    # contention level drawn uniformly at random over time.
    site = make_site(
        "oracle_site", environment_kind="uniform", scale=0.02, seed=11
    )
    print(f"site: {site.name}, tables: {site.database.catalog.table_names}")
    print(f"current contention level: {site.environment.level():.2f} "
          f"(slowdown {site.environment.slowdown():.1f}x)\n")

    # Derive the G1 cost model: sample queries, probe the contention,
    # determine states (IUPMA), select variables, fit.
    builder = CostModelBuilder(site.database)
    sample_queries = site.generator.queries_for(G1, 150)
    outcome = builder.build(G1, sample_queries, algorithm="iupma")
    model = outcome.model

    print("derived cost model:")
    print(model.equation_table())
    print(f"\ntraining fit: R2={model.r_squared:.3f}, "
          f"SEE={model.standard_error:.3g}, F significant: {model.is_significant()}\n")

    # Use the model the way the global optimizer would: estimate fresh
    # queries' costs from catalog-derivable variables plus a probing cost.
    test_queries = site.generator.queries_for(G1, 40)
    test_obs = builder.collect(test_queries)
    report = validate_model(model, test_obs)
    print(f"on {report.n_queries} fresh test queries:")
    print(f"  very good estimates (rel err <= 30%): {report.pct_very_good:.0f}%")
    print(f"  good estimates (within 2x):           {report.pct_good:.0f}%")

    sql = "select a1, a5, a7 from R4 where a3 > 300 and a8 < 2000"
    query = site.database.parse(sql)
    print(f"\nexample query: {sql}")
    print(f"  class: {classify(site.database, query).label}")
    probing_cost = builder.probe.observe()
    result = site.database.execute(query)
    from repro.core import extract_variables

    estimate = model.predict(extract_variables(result), probing_cost)
    point, lower, upper = model.predict_with_interval(
        extract_variables(result), probing_cost
    )
    print(f"  observed {result.elapsed:.2f}s vs estimated {estimate:.2f}s "
          f"(state s{model.state_for(probing_cost)}, "
          f"95% interval [{lower:.2f}, {upper:.2f}]s)")

    # For the full story of how the model was derived (state search,
    # merges, variable selection), render the derivation report:
    from repro.core import derivation_report

    report_text = derivation_report(outcome)
    print("\n--- derivation report (first 15 lines) ---")
    print("\n".join(report_text.splitlines()[:15]))

    # The report ends with per-phase build timings (real seconds spent
    # sampling / partitioning / selecting / fitting):
    lines = report_text.splitlines()
    start = lines.index("Derivation cost") - 1
    print("\n".join(lines[start:]))


if __name__ == "__main__":
    main()
