"""Why static cost models fail in dynamic environments — and the fix.

Reproduces the paper's central comparison (its Table 5) on one query
class: derive three cost models for the same local database —

* **static**       — the static query sampling method, trained in a
                     static (idle) environment (Static Approach 1);
* **one-state**    — the static method applied to dynamic-environment
                     samples (Static Approach 2);
* **multi-states** — the paper's method: contention states from IUPMA +
                     a qualitative variable in the regression;

then scores all three on the same dynamic test queries.

Run:  python examples/dynamic_calibration.py
"""

from repro.core import CostModelBuilder, G2, validate_model
from repro.experiments import format_table
from repro.workload import make_site


def main() -> None:
    # Two sites over the IDENTICAL database (same seed): one idle, one
    # under uniformly dynamic load.
    dynamic = make_site("site_dyn", environment_kind="uniform", scale=0.02, seed=23)
    static = make_site("site_static", environment_kind="static", scale=0.02, seed=23)

    dyn_builder = CostModelBuilder(dynamic.database)
    static_builder = CostModelBuilder(static.database)

    print("sampling G2 (non-clustered index scan) queries ...")
    dyn_obs = dyn_builder.collect(dynamic.generator.queries_for(G2, 170))
    static_obs = static_builder.collect(static.generator.queries_for(G2, 70))
    test_obs = dyn_builder.collect(dynamic.generator.queries_for(G2, 60))

    multi = dyn_builder.build_from_observations(dyn_obs, G2, "iupma").model
    one_state = dyn_builder.build_from_observations(dyn_obs, G2, "static").model
    static_model = static_builder.build_from_observations(static_obs, G2, "static").model

    rows = []
    for name, model in (
        ("multi-states", multi),
        ("one-state", one_state),
        ("static", static_model),
    ):
        report = validate_model(model, test_obs)
        rows.append(
            (
                name,
                model.num_states,
                report.r_squared,
                report.standard_error,
                report.pct_very_good,
                report.pct_good,
            )
        )
    print()
    print(
        format_table(
            ("model", "# states", "R2 (train)", "SEE", "very good %", "good %"),
            rows,
            title=f"G2 on {dynamic.name}: estimate quality on dynamic test queries",
        )
    )

    print(
        "\nThe static model fits its own (static) training data almost perfectly\n"
        "yet misses nearly every dynamic execution; the one-state model splits\n"
        "the difference badly; the multi-states model tracks the contention."
    )
    print("\nmulti-states model detail:")
    print(multi.equation_table())


if __name__ == "__main__":
    main()
