"""Global query optimization across two autonomous local DBSs.

Builds the full MDBS of the paper's Figure 3: an Oracle-like site and a
DB2-like site (each under its own dynamic load), MDBS agents, a global
catalog holding derived multi-states cost models, and a global optimizer
that decides where to execute an inter-site join — then executes the
chosen plan for real and compares estimate vs observation.

Run:  python examples/global_optimization.py
"""

from repro.core import CostModelBuilder, G1, G3
from repro.engine import Comparison, DB2_LIKE, ORACLE_LIKE
from repro.mdbs import GlobalJoinQuery, MDBSAgent, MDBSServer
from repro.workload import make_site


def derive_models(server: MDBSServer, site) -> None:
    """Derive and register the cost models global optimization needs."""
    builder = CostModelBuilder(site.database)
    for query_class, count in ((G1, 120), (G3, 130)):
        queries = site.generator.queries_for(
            query_class, count, tables=["R1", "R2", "R3", "R4", "R5"]
        )
        outcome = builder.build(query_class, queries, algorithm="iupma")
        server.store_cost_model(site.name, outcome.model)
        print(
            f"  {site.name}: {query_class.label} model — "
            f"{outcome.model.num_states} states, R2={outcome.model.r_squared:.3f}"
        )


def main() -> None:
    oracle = make_site(
        "oracle_site", profile=ORACLE_LIKE, environment_kind="uniform",
        scale=0.02, seed=3,
    )
    db2 = make_site(
        "db2_site", profile=DB2_LIKE, environment_kind="uniform",
        scale=0.02, seed=4,
    )

    server = MDBSServer()
    for site in (oracle, db2):
        server.register_agent(MDBSAgent(site.database))

    print("deriving local cost models (multi-states query sampling) ...")
    for site in (oracle, db2):
        derive_models(server, site)

    query = GlobalJoinQuery(
        "oracle_site", "R3",
        "db2_site", "R4",
        "a4", "a4",
        ("R3.a1", "R3.a5", "R4.a2"),
        left_predicate=Comparison("a3", "<=", 400),
        right_predicate=Comparison("a7", ">", 20000),
    )
    print(f"\nglobal query: {query}\n")

    optimizer = server.optimizer()
    for plan in optimizer.plans(query):
        print(plan.describe())
        print()

    chosen = server.optimize(query)
    print(f"optimizer chose: join at the {chosen.join_site} site\n")

    execution = server.execute(query, chosen)
    print(f"executed: {execution.cardinality} result rows")
    for step in execution.steps:
        print(f"  {step.description}: {step.seconds:.3f}s observed")
    print(
        f"total observed {execution.observed_seconds:.2f}s vs "
        f"estimated {execution.estimated_seconds:.2f}s"
    )

    # -- and a three-way chain across both sites -------------------------
    from repro.mdbs import JoinLink, MultiJoinQuery, MultiwayExecutor, Operand

    chain = MultiJoinQuery(
        operands=(
            Operand("oracle_site", "R1", Comparison("a3", "<", 600)),
            Operand("db2_site", "R2"),
            Operand("oracle_site", "R5", Comparison("a7", ">", 25000)),
        ),
        links=(
            JoinLink("R1", "a4", "R2", "a4"),
            JoinLink("R2", "a4", "R5", "a4"),
        ),
        columns=("R1.a1", "R2.a2", "R5.a5"),
    )
    print("\nthree-way chain join R1 ⋈ R2 ⋈ R5 across the two sites:")
    multi = MultiwayExecutor(server).execute(chain)
    print(multi.plan.describe())
    print(
        f"executed: {multi.cardinality} rows, observed "
        f"{multi.observed_seconds:.2f}s vs estimated {multi.estimated_seconds:.2f}s"
    )


if __name__ == "__main__":
    main()
