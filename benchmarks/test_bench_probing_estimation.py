"""Ablation: observed vs estimated probing costs (§3.3, eq. (2)).

Paper: "using the estimated costs of a probing query to determine system
contention states is usually more efficient.  However, estimation errors
may introduce certain inaccuracy."  Reproduction target: the eq. (2)
regression itself fits well, its parameter screen keeps a meaningful
subset, and the model validated with estimated probes loses only a
modest amount of accuracy versus observed probes.
"""

from repro.experiments.probing_estimation import (
    render_probing_estimation,
    run_probing_estimation,
)

from .conftest import run_once


def test_bench_probing_estimation(benchmark, config):
    result = run_once(benchmark, run_probing_estimation, config)

    print()
    print(render_probing_estimation(result))

    # eq. (2) captures the contention signal from system statistics.
    assert result.estimator_r_squared > 0.7
    assert 1 <= len(result.selected_parameters) <= 3

    observed = result.report_observed
    estimated = result.report_estimated
    # Estimation still yields a usable model...
    assert estimated.pct_good > 50.0
    # ...but never beats the observed-probe path by a wide margin, and
    # typically trails it (the paper's "certain inaccuracy").
    assert estimated.pct_good <= observed.pct_good + 10.0
    assert estimated.pct_very_good <= observed.pct_very_good + 10.0
