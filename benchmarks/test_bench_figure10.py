"""Figure 10: histogram of the contention level in the clustered case.

Paper: the sampled contention level (gauged by probing cost) piles up in
a few clusters rather than spreading uniformly.  Reproduction target: a
strongly non-uniform histogram — a chi-squared statistic against the
uniform distribution far above the uniform expectation, with multiple
separated modes.
"""

import numpy as np

from repro.experiments.table6 import render_figure10, run_table6

from .conftest import run_once


def test_bench_figure10(benchmark, config):
    result = run_once(benchmark, run_table6, config)

    print()
    print(render_figure10(result, bins=16))

    probing = np.asarray(result.probing_costs)
    counts, _ = np.histogram(probing, bins=12)
    expected = len(probing) / len(counts)
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    print(f"chi-squared vs uniform: {chi2:.0f} (df={len(counts) - 1})")

    # Far from uniform (99.9% critical value for df=11 is ~31.3).
    assert chi2 > 40.0
    # At least two separated modes: some interior bins are (nearly) empty
    # while others are heavily populated.
    assert counts.max() > 4 * max(1.0, counts.min() + 1)
    interior = counts[1:-1]
    assert (interior <= expected / 4).any()
