"""Loadgen scale baseline: the coordinator/worker harness up the ladder.

Runs the worker ladder of :mod:`repro.experiments.loadgen_scale` once
under pytest-benchmark at the quick preset with the mixed fault plan,
asserts the ISSUE acceptance criteria (worker-count invariance, closed
drift loops, zero lost requests), and records the scaling curve to
``BENCH_loadgen_scale.json`` at the repo root (the CI ``loadgen-smoke``
job regenerates and uploads it at the tiny preset; EXPERIMENTS.md
documents the schema).
"""

import json
import os
from pathlib import Path

from repro.experiments.loadgen_scale import (
    loadgen_scale_payload,
    render_loadgen_scale,
    render_loadgen_timings,
    run_loadgen_scale,
)

from .conftest import run_once

#: Override the payload destination (CI writes into the workspace root).
_OUT_ENV = "BENCH_LOADGEN_OUT"


def _payload_path() -> Path:
    override = os.environ.get(_OUT_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_loadgen_scale.json"


def test_bench_loadgen_scale(benchmark, config):
    result = run_once(benchmark, run_loadgen_scale, config)

    # Shards are the determinism unit: every rung of the worker ladder
    # served the same shard list, so the merged aggregates must be
    # byte-identical — `--workers` changes concurrency, never results.
    assert len(result.reports) >= 2
    assert result.deterministic

    aggregate = result.aggregate()
    assert aggregate["failed"] == 0
    assert aggregate["completed"] == aggregate["requests"]
    assert aggregate["requests"] > 0

    # The mixed plan disturbs shard 0 (outage) and shard 1 (slowdown);
    # every disturbed shard's drift loop must have closed: detected by
    # the accuracy windows, model re-derived, accuracy back in the good
    # band after the fault cleared.
    loops = aggregate["drift"]["loops"]
    assert "0" in loops, "outage shard never registered a disturbance"
    for shard, loop in sorted(loops.items()):
        assert loop["detect_round"] is not None, f"shard {shard}: undetected"
        assert loop["recover_round"] is not None, f"shard {shard}: no recovery"
        assert loop["detect_latency_rounds"] <= 4, f"shard {shard}: slow detect"
    assert aggregate["drift"]["published"] > 0

    # Wall-clock side: every rung moved requests.
    for report in result.reports:
        assert report.wall_stats()["qps"] > 0.0

    payload = loadgen_scale_payload(result)
    path = _payload_path()
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print(render_loadgen_scale(result))
    print(render_loadgen_timings(result))
    print(f"payload -> {path}")
