"""Figures 4–9: observed vs estimated costs for test queries.

Paper: six plots (G1/G2/G3 x DB2/Oracle) of test queries sorted by
result size; the multi-states estimates track the observed scatter while
the one-state estimates form a single compromise curve.  Reproduction
target: the multi-states series' normalized RMS tracking error is well
below the one-state series' on every figure.
"""

import pytest

from repro.experiments.figures4_9 import (
    FIGURE_LAYOUT,
    render_figure,
    run_figure,
    tracking_error,
)

from .conftest import run_once


@pytest.mark.parametrize("figure_number", sorted(FIGURE_LAYOUT))
def test_bench_figure(benchmark, config, figure_number):
    figure = run_once(benchmark, run_figure, figure_number, config)

    print()
    print(render_figure(figure, max_rows=12))
    series = figure.series()
    err_multi = tracking_error(series["observed"], series["multi_states"])
    err_one = tracking_error(series["observed"], series["one_state"])
    print(
        f"normalized RMS tracking error: multi-states {err_multi:.3f} "
        f"vs one-state {err_one:.3f}"
    )

    assert len(figure.points) == config.test_count
    assert err_multi < err_one, (
        f"figure {figure_number}: multi-states does not track better "
        f"({err_multi:.3f} vs {err_one:.3f})"
    )
    # The one-state compromise curve misses badly; multi-states stays tight.
    assert err_multi < 0.75
