"""Table 4: the derived multi-states cost models (G1/G2/G3 x DB2/Oracle).

Paper: prints the per-state cost-estimation formulas with the
qualitative variable.  Reproduction target: a general-form model per
(profile, class) whose per-state intercepts and result-size slopes grow
with the contention state, echoing the paper's printed coefficients.
"""

import numpy as np

from repro.experiments.table4 import render_table4, run_table4

from .conftest import run_once


def test_bench_table4(benchmark, config):
    rows = run_once(benchmark, run_table4, config)

    print()
    print("Table 4: multi-state cost models")
    print(render_table4(rows))

    assert len(rows) == 6  # 2 profiles x 3 classes
    for row in rows:
        model = row.model
        assert model.num_states >= 2, f"{row.profile}/{model.class_label}"
        assert model.form.value == "general"
        assert model.is_significant(alpha=0.01)

        # The contention states must matter: a representative query (the
        # training-mean variable values) must cost strictly more in the
        # most loaded state than in the idle state, echoing the growing
        # per-state coefficients of the paper's printed equations.
        means = model.metadata["variable_means"]
        costs = np.array(
            [model.predict_in_state(means, s) for s in range(model.num_states)]
        )
        assert costs[-1] > 2 * costs[0] > 0, (
            f"{row.profile}/{model.class_label}: per-state costs not "
            f"growing: {costs}"
        )
