"""Ablation: the four qualitative regression forms of Table 2.

§3.2's argument: contention scales both the intercept (initialization
cost) and the slopes (per-tuple I/O + CPU costs), so the *general* form
should dominate, with the one-sided forms (parallel: intercept only;
concurrent: slopes only) in between and the coincident (static) form
worst.  This is a design-choice ablation DESIGN.md calls out.
"""

from repro.core.qualitative import ModelForm
from repro.experiments.model_forms import render_model_forms, run_model_forms

from .conftest import run_once


def test_bench_model_forms(benchmark, config):
    result = run_once(benchmark, run_model_forms, config)

    print()
    print(render_model_forms(result))

    general = result.result_for(ModelForm.GENERAL)
    parallel = result.result_for(ModelForm.PARALLEL)
    concurrent = result.result_for(ModelForm.CONCURRENT)
    coincident = result.result_for(ModelForm.COINCIDENT)

    # The paper's ordering argument.
    assert general.r_squared >= concurrent.r_squared
    assert general.r_squared >= parallel.r_squared
    assert parallel.r_squared > coincident.r_squared
    assert concurrent.r_squared > coincident.r_squared
    assert general.standard_error < coincident.standard_error

    # Parameter counts follow Table 2's structure.
    assert coincident.n_parameters < parallel.n_parameters
    assert parallel.n_parameters < concurrent.n_parameters
    assert concurrent.n_parameters < general.n_parameters
