"""Figure 1: query cost vs number of concurrent processes.

Paper: the same query's elapsed time climbs from 3.80 s to 124.02 s as
the process count sweeps ~50 -> ~130 (a ~33x, superlinear swing).
Reproduction target: monotone, superlinear growth with a swing of the
same order (absolute costs differ — simulated engine, scaled tables).
"""

from repro.experiments.figure1 import FIGURE1_SQL, run_figure1
from repro.experiments.report import format_series

from .conftest import run_once


def test_bench_figure1(benchmark, config):
    result = run_once(benchmark, run_figure1, config, num_points=9, repeats=3)

    print()
    print(f"query: {FIGURE1_SQL}")
    print(
        format_series(
            [float(p) for p in result.process_counts],
            {"cost_seconds": result.costs},
            x_label="concurrent_processes",
            title="Figure 1: effect of dynamic factor on query cost",
        )
    )
    print(f"swing: {result.swing:.1f}x (paper: ~33x)")

    # Monotone growth across the sweep.
    assert result.costs == sorted(result.costs)
    # Superlinear: the top half of the sweep gains more than the bottom half.
    mid = len(result.costs) // 2
    assert (result.costs[-1] - result.costs[mid]) > (
        result.costs[mid] - result.costs[0]
    )
    # Same order of swing as the paper's ~33x.
    assert 10.0 <= result.swing <= 100.0
