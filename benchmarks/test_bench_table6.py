"""Table 6: IUPMA vs ICMA in a clustered-contention environment.

Paper (for one G2-class example): IUPMA R^2 0.978 with 58% very good /
82% good estimates; ICMA R^2 0.991 with 82% / 95% — the clustering-based
partition wins when the contention level is clustered.  Reproduction
target: ICMA >= IUPMA on R^2 and on the good-estimate percentage.
"""

from repro.experiments.table6 import render_table6, run_table6

from .conftest import run_once


def test_bench_table6(benchmark, config):
    result = run_once(benchmark, run_table6, config)

    print()
    print(render_table6(result))

    iupma = result.row("IUPMA")
    icma = result.row("ICMA")
    assert icma.report.r_squared >= iupma.report.r_squared - 0.01
    assert icma.report.pct_good >= iupma.report.pct_good
    assert icma.report.pct_very_good >= iupma.report.pct_very_good - 5.0
    # Both algorithms still produce usable models.
    assert iupma.report.f_significant and icma.report.f_significant
    # A small number of states suffices (paper: 3).
    assert 2 <= icma.num_states <= 6
