"""Serving-throughput baseline: the first BENCH_*.json of the repo.

Runs the concurrency ladder of
:mod:`repro.experiments.serving_throughput` once under pytest-benchmark,
asserts the ISSUE acceptance criteria, and records QPS plus latency
percentiles to ``BENCH_serving_throughput.json`` at the repo root (the
CI ``serving-smoke`` job uploads it as an artifact; EXPERIMENTS.md
documents the schema).
"""

import json
import os
from pathlib import Path

from repro.experiments.serving_throughput import (
    render_serving_throughput,
    render_serving_timings,
    run_serving_throughput,
    serving_throughput_payload,
)

from .conftest import run_once

#: Override the payload destination (CI writes into the workspace root).
_OUT_ENV = "BENCH_SERVING_OUT"


def _payload_path() -> Path:
    override = os.environ.get(_OUT_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_serving_throughput.json"


def test_bench_serving_throughput(benchmark, config):
    result = run_once(benchmark, run_serving_throughput, config)

    # Nothing lost, nothing dropped: the ladder uses the block policy.
    for level_result in result.levels:
        assert level_result.completed == result.requests
        assert level_result.dropped == 0
        assert level_result.qps > 0.0
        assert level_result.latency_p50 <= level_result.latency_p95
        assert level_result.latency_p95 <= level_result.latency_p99

    # Acceptance: at concurrency 8 the plan cache serves > 90% of the
    # repeated-class workload and throughput beats the serial baseline.
    pool8 = result.level("pool-8")
    assert pool8.plan_cache_hit_rate > 0.9
    assert pool8.qps > result.baseline_qps

    # The pooled win is the work the cache removes: the serial level
    # probes per optimization, the pooled levels once per site.
    serial = result.level("serial")
    assert pool8.probes_executed < serial.probes_executed

    # Identical universes level to level: every level executed the same
    # join-site decisions (states pinned by the warm-up + probe TTL).
    assert pool8.join_sites == result.level("pool-1").join_sites

    payload = serving_throughput_payload(result)
    path = _payload_path()
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print(render_serving_throughput(result))
    print(render_serving_timings(result))
    print(f"payload -> {path}")
