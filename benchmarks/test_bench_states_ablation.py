"""State-count ablation (§5, observation 4).

Paper: R^2 for the G2/Oracle model with 1..6 states was
0.7788, 0.9636, 0.9674, 0.9899, 0.9922 — large early gains, tiny late
ones.  Reproduction target: a monotone (up to noise), saturating R^2
curve where the first split buys more than all later splits combined.
"""

from repro.experiments.states_ablation import (
    render_states_ablation,
    run_states_ablation,
)

from .conftest import run_once


def test_bench_states_ablation(benchmark, config):
    result = run_once(benchmark, run_states_ablation, config, max_states=6)

    print()
    print(render_states_ablation(result))
    print("paper (G2/Oracle): 0.7788 0.9636 0.9674 0.9899 0.9922")

    r2 = result.r_squared_series
    see = [p.standard_error for p in result.points]
    assert len(r2) == 6
    # Broad improvement from 1 state to 6.
    assert r2[-1] > r2[0] + 0.15
    assert see[-1] < see[0]
    # Saturation: the 1->2 jump dominates the 5->6 jump.
    assert (r2[1] - r2[0]) > 3 * max(0.0, r2[5] - r2[4])
    # Weak monotonicity (allow tiny numerical dips).
    for a, b in zip(r2, r2[1:]):
        assert b >= a - 0.02
