"""Trace-overhead bench: what request tracing costs the serving path.

Runs the interleaved off/sampled/full comparison of
:mod:`repro.experiments.trace_overhead` once under pytest-benchmark,
asserts the ISSUE acceptance guard (sampled tracing within 5% of the
untraced QPS), and records the per-mode numbers to
``BENCH_trace_overhead.json`` at the repo root (the CI ``trace-smoke``
job uploads it as an artifact; EXPERIMENTS.md documents the schema).
"""

import json
import os
from pathlib import Path

from repro.experiments.trace_overhead import (
    MAX_SAMPLED_OVERHEAD_PCT,
    render_trace_overhead,
    render_trace_overhead_timings,
    run_trace_overhead,
    trace_overhead_payload,
)

from .conftest import run_once

#: Override the payload destination (CI writes into the workspace root).
_OUT_ENV = "BENCH_TRACE_OVERHEAD_OUT"


def _payload_path() -> Path:
    override = os.environ.get(_OUT_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_trace_overhead.json"


def test_bench_trace_overhead(benchmark, config):
    # Five rounds instead of the CLI default three: the min-of-rounds
    # estimator only needs ONE calm round, and the pytest-benchmark
    # harness is noisier than a bare CLI run.
    result = run_once(benchmark, run_trace_overhead, config, rounds=5)

    # Every mode served the whole workload; the off mode recorded no
    # spans, the traced modes kept what their sampler decided.
    by_name = {mode.name: mode for mode in result.modes}
    assert set(by_name) == {"off", "sampled", "full"}
    for mode in result.modes:
        assert mode.completed == mode.requests == result.requests
        assert mode.qps > 0.0
    assert by_name["off"].spans == 0
    assert by_name["full"].traces_kept == result.requests
    assert by_name["full"].traces_dropped == 0
    assert by_name["full"].spans > by_name["sampled"].spans > 0
    # Head sampling is deterministic: the kept count is a function of
    # the seed and the minted trace ids, not of scheduling.
    sampled = by_name["sampled"]
    assert sampled.traces_kept + sampled.traces_dropped == result.requests
    assert 0 < sampled.traces_kept < result.requests

    # Acceptance guard: sampled tracing costs < 5% of untraced QPS.
    assert result.sampled_within_guard, (
        f"sampled overhead {result.overhead_pct('sampled'):+.2f}% exceeds "
        f"{MAX_SAMPLED_OVERHEAD_PCT:.0f}%"
    )

    payload = trace_overhead_payload(result)
    assert payload["guard"]["ok"]
    path = _payload_path()
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print(render_trace_overhead(result))
    print(render_trace_overhead_timings(result))
    print(f"payload -> {path}")
