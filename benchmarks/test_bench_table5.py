"""Table 5: statistics for the derived cost models.

Paper's headline numbers (averages over G1–G3 x DB2/Oracle):

* multi-states: R^2 ~0.99, 37–69% very good, 62–90% good estimates;
* one-state (Static Approach 2): 13–35% very good, 40–62% good;
* static (Static Approach 1): excellent R^2 on its own static data but
  only ~1–18% good estimates on dynamic test queries.

Reproduction target: the ordering and the gaps, checked by
``shape_violations`` (empty list = every qualitative claim holds).
"""

from repro.experiments.table5 import render_table5, run_table5, shape_violations

from .conftest import run_once


def test_bench_table5(benchmark, config):
    rows = run_once(benchmark, run_table5, config)

    print()
    print(render_table5(rows))

    assert len(rows) == 18  # 2 profiles x 3 classes x 3 model types
    violations = shape_violations(rows)
    assert not violations, "\n".join(violations)

    # Aggregate margins, as in the paper's §5 summary: multi-states
    # improves very-good and good percentages by ~27 and ~20 points.
    multi = [r for r in rows if r.model_type == "multi-states"]
    one = [r for r in rows if r.model_type == "one-state"]
    avg = lambda rs, attr: sum(getattr(r, attr) for r in rs) / len(rs)
    very_good_gain = avg(multi, "pct_very_good") - avg(one, "pct_very_good")
    good_gain = avg(multi, "pct_good") - avg(one, "pct_good")
    print(
        f"\naverage gain of multi-states over one-state: "
        f"+{very_good_gain:.1f} pts very good (paper: +27.0), "
        f"+{good_gain:.1f} pts good (paper: +20.2)"
    )
    assert very_good_gain > 15.0
    assert good_gain > 10.0
