"""End-to-end: better cost models => better global plans.

The paper's §1 motivation, closed as a loop: with two identically
configured sites whose loads move independently, the only way to pick
the right join site is to know each site's *current* contention state.
Multi-states models carry that signal (via the probing cost); one-state
models cannot.  Reproduction target: the multi-states optimizer picks
the truly cheaper plan more often and accumulates far less regret, and
its chosen plans land close to the per-round oracle.
"""

from repro.experiments.plan_quality import render_plan_quality, run_plan_quality

from .conftest import run_once


def test_bench_plan_quality(benchmark, config):
    result = run_once(benchmark, run_plan_quality, config, rounds=24)

    print()
    print(render_plan_quality(result))

    multi_regret = result.total_regret("multi-states")
    one_regret = result.total_regret("one-state")
    assert result.pct_optimal("multi-states") > result.pct_optimal("one-state")
    assert multi_regret < 0.5 * one_regret
    # Multi-states lands within 10% of the oracle's total.
    assert (
        result.total_chosen_seconds("multi-states")
        <= 1.10 * result.total_best_seconds
    )
    # Sanity: the experiment really had rounds where the sites disagreed.
    flips = {
        min(r.observed_by_site, key=r.observed_by_site.get) for r in result.rounds
    }
    assert flips == {"left", "right"}
