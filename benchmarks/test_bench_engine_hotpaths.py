"""Engine hot paths: the raw-speed microbenchmark baseline.

Runs the scalar-vs-vectorized ladder of
:mod:`repro.experiments.engine_hotpaths` once under pytest-benchmark,
asserts the ISSUE acceptance criteria (>= 2x on the scan and join
microbenchmarks, warm buffer reads collapse to zero), and records the
timings to ``BENCH_engine_hotpaths.json`` at the repo root (the CI
``engine-bench-smoke`` job uploads it as an artifact; EXPERIMENTS.md
documents the schema).
"""

import json
import os
from pathlib import Path

from repro.experiments.engine_hotpaths import (
    engine_hotpaths_payload,
    render_engine_hotpaths,
    render_engine_timings,
    run_engine_hotpaths,
)

from .conftest import run_once

#: Override the payload destination (CI writes into the workspace root).
_OUT_ENV = "BENCH_ENGINE_OUT"

#: The acceptance floor for the scan/join microbenchmarks.
MIN_SPEEDUP = 2.0


def _payload_path() -> Path:
    override = os.environ.get(_OUT_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_engine_hotpaths.json"


def test_bench_engine_hotpaths(benchmark, config):
    result = run_once(benchmark, run_engine_hotpaths, config)

    # Every case timed both paths over identical inputs (the runner
    # asserts output equality before recording any timing).
    for case in result.cases:
        assert case.scalar_seconds > 0.0 and case.vectorized_seconds > 0.0
        assert case.output_cardinality >= 0

    # Acceptance: >= 2x on the scan and join microbenchmarks.
    for name in ("seq_scan", "hash_join", "sort_merge_join"):
        case = result.case(name)
        assert case.speedup >= MIN_SPEEDUP, (
            f"{name}: {case.speedup:.2f}x < {MIN_SPEEDUP}x "
            f"(scalar {case.scalar_seconds:.4f}s, "
            f"vectorized {case.vectorized_seconds:.4f}s)"
        )

    # The warm buffer pass reads nothing from disk: both access paths
    # fit the pool, so every warm touch is a hit.
    for buffer_case in result.buffer_cases:
        assert buffer_case.cold_physical_reads > 0
        assert buffer_case.warm_physical_reads == 0
        assert buffer_case.warm_hit_rate == 1.0
        assert buffer_case.logical_reads == buffer_case.cold_physical_reads

    payload = engine_hotpaths_payload(result)
    path = _payload_path()
    path.write_text(json.dumps(payload, indent=2) + "\n")

    print(render_engine_hotpaths(result))
    print(render_engine_timings(result))
    print(f"payload -> {path}")
