"""Shared benchmark configuration.

Each benchmark regenerates one table or figure of the paper.  Experiments
are deterministic, seeded, and far heavier than micro-benchmarks, so
every bench runs exactly once (``rounds=1``) — pytest-benchmark then
reports the wall-clock cost of regenerating that artifact, and the bench
body asserts the paper's qualitative shape and prints the reproduced
rows/series.
"""

import os

import pytest

from repro.experiments.config import quick
from repro.experiments.harness import set_disk_cache


@pytest.fixture(scope="session")
def config():
    """The quick experiment preset shared by all benches."""
    return quick(seed=7)


@pytest.fixture(scope="session", autouse=True)
def _experiment_disk_cache():
    """Attach the on-disk result cache when REPRO_CACHE_DIR is set.

    Lets repeated bench sessions (and `python -m repro.experiments`
    runs against the same directory) share class-experiment results
    across processes; without the env var the benches keep their
    historical in-process-only behaviour.
    """
    path = os.environ.get("REPRO_CACHE_DIR")
    if not path:
        yield
        return
    from repro.experiments.cache import DiskCache

    previous = set_disk_cache(DiskCache(path))
    try:
        yield
    finally:
        set_disk_cache(previous)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
