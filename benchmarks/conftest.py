"""Shared benchmark configuration.

Each benchmark regenerates one table or figure of the paper.  Experiments
are deterministic, seeded, and far heavier than micro-benchmarks, so
every bench runs exactly once (``rounds=1``) — pytest-benchmark then
reports the wall-clock cost of regenerating that artifact, and the bench
body asserts the paper's qualitative shape and prints the reproduced
rows/series.
"""

import pytest

from repro.experiments.config import quick


@pytest.fixture(scope="session")
def config():
    """The quick experiment preset shared by all benches."""
    return quick(seed=7)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
