"""Ablation: Proposition 4.1's sample-size rule.

The paper samples 10 observations per parameter.  Reproduction target:
model quality (here %good on a fixed test set) climbs steeply while
undersampled and flattens out — by the time the sample is
Prop.-4.1-sized, nearly all the achievable accuracy is in hand.
"""

from repro.experiments.sample_size_ablation import (
    render_sample_size_ablation,
    run_sample_size_ablation,
)

from .conftest import run_once


def test_bench_sample_size(benchmark, config):
    result = run_once(benchmark, run_sample_size_ablation, config)

    print()
    print(render_sample_size_ablation(result))

    by_size = {p.sample_size: p for p in result.points}
    sizes = sorted(by_size)
    smallest = by_size[sizes[0]]
    largest = by_size[sizes[-1]]

    # Undersampling hurts: the smallest sample's model cannot support
    # many states and scores clearly below the largest.
    assert smallest.num_states <= largest.num_states
    assert largest.report.pct_good >= smallest.report.pct_good

    # Diminishing returns near the recommendation: the last doubling of
    # the sample buys little compared to the first.
    early_gain = by_size[sizes[2]].report.pct_good - smallest.report.pct_good
    late_gain = largest.report.pct_good - by_size[sizes[3]].report.pct_good
    assert early_gain >= late_gain - 5.0

    # A Prop.-4.1-sized sample achieves within 10 points of the largest.
    near = result.nearest_to_recommended()
    assert near.report.pct_good >= largest.report.pct_good - 10.0
