"""End-to-end: model-quality telemetry closes the maintenance loop.

The §2 maintenance policy watches the *catalog*; a contention-regime
shift changes nothing there, yet silently invalidates every model
derived under the old regime.  Reproduction target: the drift rules
(probing costs escaping the partitioned state ranges, the §5 good-band
share collapsing) catch a scripted shift within a few served queries,
the triggered re-derivation publishes a new registry version whose
provenance records the event, and the rebuilt models put the accuracy
back in the good band — while the stale-model counterfactual stays bad.
"""

from repro.experiments.drift_detection import (
    render_drift_detection,
    run_drift_detection,
)

from .conftest import run_once


def test_bench_drift_detection(benchmark, config):
    result = run_once(benchmark, run_drift_detection, config)

    print()
    print(render_drift_detection(result))

    assert result.events, "the scripted shift raised no drift event"
    assert result.detection_latency_rounds is not None
    assert result.detection_latency_rounds <= 6
    # The re-derivation published a new version with the event on record.
    assert result.published
    assert all(trigger for _, _, _, trigger in result.published)
    # Accuracy recovers on the rebuilt models; the counterfactual
    # (stale v1, detection disarmed, same load) stays degraded.
    assert result.recovered.pct_good >= 75.0
    assert result.stale.pct_good <= 25.0
    assert result.stale.bias < 0  # calm-regime model underestimates
