"""repro.obs CLI: render obs snapshots as a dashboard or exposition.

Usage::

    python -m repro.obs --snapshot obs-snapshot.json
    python -m repro.obs --snapshot obs-snapshot.json --format prom
    python -m repro.obs --snapshot obs-snapshot.json --watch 2
    python -m repro.obs trace merged-trace.jsonl --slowest 5
    python -m repro.obs trace merged-trace.jsonl --tree s000-q000003

Snapshot files are written by :func:`repro.obs.expose.write_snapshot` —
``python -m repro.experiments --snapshot-out PATH`` produces one at the
end of a run, and a long-running simulation can rewrite the file
periodically; ``--watch N`` then re-reads and re-renders it every N
seconds, turning the snapshot file into a live one-screen dashboard.

The ``trace`` subcommand reads a (possibly coordinator-merged) span
JSONL file and prints the per-stage critical-path breakdown, the
slowest-N trace table, and one expanded span tree.
"""

from __future__ import annotations

import argparse
import sys
import time

from .expose import read_snapshot, render_dashboard, render_text
from .trace_analysis import load_trace_file, render_trace_report

FORMATS = ("dashboard", "prom")


def trace_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs trace",
        description="Analyze a span JSONL trace file (single-run or "
        "coordinator-merged): stage breakdown, slowest traces, span tree.",
    )
    parser.add_argument("file", metavar="TRACE_JSONL", help="span JSONL file")
    parser.add_argument(
        "--slowest",
        type=int,
        metavar="N",
        default=5,
        help="rows in the slowest-traces table (default 5)",
    )
    parser.add_argument(
        "--tree",
        metavar="TRACE_ID",
        default=None,
        help="expand this trace's span tree (default: the slowest trace)",
    )
    args = parser.parse_args(argv)
    if args.slowest <= 0:
        parser.error("--slowest must be positive")
    try:
        spans = load_trace_file(args.file)
    except (OSError, ValueError) as exc:
        parser.error(f"{args.file}: {exc}")
    try:
        print(render_trace_report(spans, slowest=args.slowest, tree=args.tree))
    except BrokenPipeError:
        return 0
    return 0


def render(payload: dict, fmt: str) -> str:
    if fmt == "prom":
        return render_text(payload.get("metrics", {}))
    return render_dashboard(payload)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    parser.add_argument(
        "--snapshot",
        metavar="PATH",
        required=True,
        help="obs snapshot JSON (written by --snapshot-out / write_snapshot)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="dashboard",
        help="dashboard (one-screen text) or prom (Prometheus exposition)",
    )
    parser.add_argument(
        "--watch",
        type=float,
        metavar="SECONDS",
        default=None,
        help="re-read and re-render the snapshot every SECONDS until ^C",
    )
    args = parser.parse_args(argv)
    if args.watch is not None and args.watch <= 0:
        parser.error("--watch must be positive")

    try:
        payload = read_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        parser.error(f"--snapshot {args.snapshot}: {exc}")
    try:
        print(render(payload, args.format))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that's a clean exit.
        return 0

    if args.watch is None:
        return 0
    try:
        while True:
            time.sleep(args.watch)
            try:
                payload = read_snapshot(args.snapshot)
            except (OSError, ValueError) as exc:
                print(f"[watch] {args.snapshot}: {exc}", file=sys.stderr)
                continue
            # Clear-screen escape keeps the dashboard truly one-screen.
            print("\033[2J\033[H", end="")
            print(render(payload, args.format))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
