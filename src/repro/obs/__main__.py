"""repro.obs CLI: render obs snapshots as a dashboard or exposition.

Usage::

    python -m repro.obs --snapshot obs-snapshot.json
    python -m repro.obs --snapshot obs-snapshot.json --format prom
    python -m repro.obs --snapshot obs-snapshot.json --watch 2

Snapshot files are written by :func:`repro.obs.expose.write_snapshot` —
``python -m repro.experiments --snapshot-out PATH`` produces one at the
end of a run, and a long-running simulation can rewrite the file
periodically; ``--watch N`` then re-reads and re-renders it every N
seconds, turning the snapshot file into a live one-screen dashboard.
"""

from __future__ import annotations

import argparse
import sys
import time

from .expose import read_snapshot, render_dashboard, render_text

FORMATS = ("dashboard", "prom")


def render(payload: dict, fmt: str) -> str:
    if fmt == "prom":
        return render_text(payload.get("metrics", {}))
    return render_dashboard(payload)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    parser.add_argument(
        "--snapshot",
        metavar="PATH",
        required=True,
        help="obs snapshot JSON (written by --snapshot-out / write_snapshot)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="dashboard",
        help="dashboard (one-screen text) or prom (Prometheus exposition)",
    )
    parser.add_argument(
        "--watch",
        type=float,
        metavar="SECONDS",
        default=None,
        help="re-read and re-render the snapshot every SECONDS until ^C",
    )
    args = parser.parse_args(argv)
    if args.watch is not None and args.watch <= 0:
        parser.error("--watch must be positive")

    try:
        payload = read_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        parser.error(f"--snapshot {args.snapshot}: {exc}")
    try:
        print(render(payload, args.format))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that's a clean exit.
        return 0

    if args.watch is None:
        return 0
    try:
        while True:
            time.sleep(args.watch)
            try:
                payload = read_snapshot(args.snapshot)
            except (OSError, ValueError) as exc:
                print(f"[watch] {args.snapshot}: {exc}", file=sys.stderr)
                continue
            # Clear-screen escape keeps the dashboard truly one-screen.
            print("\033[2J\033[H", end="")
            print(render(payload, args.format))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
