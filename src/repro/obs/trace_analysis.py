"""Cross-process trace analytics over merged JSONL trace files.

The loadgen coordinator (and any single-process run) dumps spans as
JSON lines; this module answers the three questions a trace file
exists for:

* *what happened to one request?* — :func:`trace_tree_lines` renders a
  single trace's span tree with durations and provenance attributes;
* *which requests were slow?* — :func:`slowest_table` ranks traces by
  their root span's duration;
* *where does latency come from overall?* — :func:`stage_breakdown`
  attributes every request's time to pipeline stages (queue vs plan vs
  probe vs probe-wait vs execute vs other), splitting probe time out of
  the stage it ran under so a single-flight wait is visible as waiting,
  not planning.

Everything operates on plain span dicts (the :func:`~repro.obs.export.
span_to_dict` shape), so a file merged from many worker processes needs
no reconstruction beyond ``json.loads`` per line.  All renderings sort
deterministically (duration desc, then trace id) for golden tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

#: The stages latency is attributed to, in pipeline order.
STAGES = ("queue", "plan", "probe", "probe_wait", "execute", "other")

#: The span name a request's root carries (the frontend's ticket span).
ROOT_SPAN_NAME = "serving.request"


def load_trace_file(path: str | Path) -> list[dict[str, Any]]:
    """Span dicts from a JSONL trace file (blank lines skipped)."""
    spans = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans


def group_traces(
    spans: Iterable[dict[str, Any]],
) -> dict[str, list[dict[str, Any]]]:
    """Spans grouped by trace id (spans without one are left out)."""
    groups: dict[str, list[dict[str, Any]]] = {}
    for span in spans:
        trace_id = span.get("trace_id")
        if trace_id is not None:
            groups.setdefault(trace_id, []).append(span)
    return groups


def trace_root(spans: Sequence[dict[str, Any]]) -> dict[str, Any] | None:
    """The root span of one trace's spans.

    Prefers a span named :data:`ROOT_SPAN_NAME`; otherwise the earliest
    span whose parent is absent from the trace.
    """
    if not spans:
        return None
    ids = {span["span_id"] for span in spans}
    roots = [
        span
        for span in spans
        if span.get("parent_id") is None or span["parent_id"] not in ids
    ]
    if not roots:
        return None
    named = [span for span in roots if span["name"] == ROOT_SPAN_NAME]
    pool = named or roots
    return min(pool, key=lambda span: (span.get("start", 0.0), span["span_id"]))


def _duration(span: dict[str, Any]) -> float:
    duration = span.get("duration")
    if duration is not None:
        return float(duration)
    start, end = span.get("start", 0.0), span.get("end")
    return 0.0 if end is None else float(end) - float(start)


def _is_probe(name: str) -> bool:
    """Probe spans: the service-level acquisition (``mdbs.probe.service``,
    whose duration includes any single-flight wait) and the agent-level
    probe executions (``mdbs.probe``) nested inside it."""
    return name.startswith("mdbs.probe")


def _probe_context(
    span: dict[str, Any], by_id: dict[int, dict[str, Any]]
) -> tuple[str | None, bool]:
    """(enclosing serving stage, is-nested-in-another-probe) for a probe
    span — only the outermost probe span in a chain is attributed, and
    its time is subtracted from whichever stage it ran under."""
    stage: str | None = None
    nested = False
    seen: set[int] = set()
    parent_id = span.get("parent_id")
    while parent_id is not None and parent_id in by_id and parent_id not in seen:
        seen.add(parent_id)
        parent = by_id[parent_id]
        if _is_probe(parent["name"]):
            nested = True
        if stage is None and parent["name"] in ("serving.plan", "serving.execute"):
            stage = parent["name"]
        parent_id = parent.get("parent_id")
    return stage, nested


def trace_stage_seconds(spans: Sequence[dict[str, Any]]) -> dict[str, float]:
    """One trace's latency attributed to :data:`STAGES`.

    ``queue`` is the explicit queue-wait span; ``probe``/``probe_wait``
    are probe executions vs single-flight waits (``outcome`` attribute),
    subtracted from whichever of plan/execute they ran under; ``other``
    is the root's time not covered by any stage span.
    """
    by_id = {span["span_id"]: span for span in spans}
    root = trace_root(spans)
    totals = dict.fromkeys(STAGES, 0.0)
    raw_plan = raw_execute = 0.0
    for span in spans:
        name = span["name"]
        duration = _duration(span)
        if name == "serving.queue":
            totals["queue"] += duration
        elif name == "serving.plan":
            totals["plan"] += duration
            raw_plan += duration
        elif name == "serving.execute":
            totals["execute"] += duration
            raw_execute += duration
        elif _is_probe(name):
            enclosing, nested = _probe_context(span, by_id)
            if nested:
                continue  # only the outermost probe span is attributed
            attrs = span.get("attributes", {})
            stage = (
                "probe_wait"
                if attrs.get("outcome") == "coalesced"
                else "probe"
            )
            totals[stage] += duration
            if enclosing == "serving.plan":
                totals["plan"] -= duration
            elif enclosing == "serving.execute":
                totals["execute"] -= duration
    if root is not None:
        covered = totals["queue"] + raw_plan + raw_execute
        totals["other"] = max(0.0, _duration(root) - covered)
    return totals


def stage_breakdown(
    groups: dict[str, list[dict[str, Any]]],
) -> dict[str, float]:
    """Stage totals summed over every trace in *groups*."""
    totals = dict.fromkeys(STAGES, 0.0)
    for spans in groups.values():
        for stage, seconds in trace_stage_seconds(spans).items():
            totals[stage] += seconds
    return totals


def render_stage_breakdown(groups: dict[str, list[dict[str, Any]]]) -> str:
    """The critical-path table: seconds and share per stage."""
    totals = stage_breakdown(groups)
    grand = sum(totals.values())
    header = f"{'stage':<12}  {'seconds':>12}  {'share':>7}"
    lines = [header, "-" * len(header)]
    for stage in STAGES:
        seconds = totals[stage]
        share = (seconds / grand * 100.0) if grand > 0 else 0.0
        lines.append(f"{stage:<12}  {seconds:>12.6f}  {share:>6.1f}%")
    lines.append(
        f"{'total':<12}  {grand:>12.6f}  {'100.0%' if grand > 0 else '  0.0%':>7}"
    )
    return "\n".join(lines)


def slowest_traces(
    groups: dict[str, list[dict[str, Any]]], n: int = 5
) -> list[tuple[str, dict[str, Any]]]:
    """The *n* traces with the longest root spans, slowest first
    (ties break on trace id, so the ranking is deterministic)."""
    ranked = []
    for trace_id, spans in groups.items():
        root = trace_root(spans)
        if root is not None:
            ranked.append((trace_id, root))
    ranked.sort(key=lambda pair: (-_duration(pair[1]), pair[0]))
    return ranked[:n]


def render_slowest_table(
    groups: dict[str, list[dict[str, Any]]], n: int = 5
) -> str:
    """The slowest-N table: trace id, duration, span count, status."""
    rows = []
    for trace_id, root in slowest_traces(groups, n):
        attrs = root.get("attributes", {})
        rows.append(
            (
                trace_id,
                _duration(root),
                len(groups[trace_id]),
                str(attrs.get("status", "?")),
                str(attrs.get("query", "")),
            )
        )
    if not rows:
        return "(no traces)"
    id_width = max(len("trace"), *(len(r[0]) for r in rows))
    header = (
        f"{'trace':<{id_width}}  {'seconds':>12}  {'spans':>5}  "
        f"{'status':<9}  query"
    )
    lines = [header, "-" * len(header)]
    for trace_id, seconds, span_count, status, query in rows:
        lines.append(
            f"{trace_id:<{id_width}}  {seconds:>12.6f}  {span_count:>5}  "
            f"{status:<9}  {query}"
        )
    return "\n".join(lines)


def _attr_suffix(span: dict[str, Any]) -> str:
    attrs = span.get("attributes", {})
    if not attrs:
        return ""
    parts = [f"{key}={attrs[key]}" for key in sorted(attrs)]
    return "  [" + " ".join(parts) + "]"


def trace_tree_lines(spans: Sequence[dict[str, Any]]) -> list[str]:
    """One trace rendered as an indented tree with attributes."""
    ids = {span["span_id"] for span in spans}
    children: dict[int | None, list[dict[str, Any]]] = {}
    ordered = sorted(spans, key=lambda s: (s.get("start", 0.0), s["span_id"]))
    for span in ordered:
        children.setdefault(span.get("parent_id"), []).append(span)
    lines: list[str] = []

    def emit(span: dict[str, Any], depth: int) -> None:
        lines.append(
            f"{'  ' * depth}{span['name']}  "
            f"{_duration(span):.6f}s{_attr_suffix(span)}"
        )
        for child in children.get(span["span_id"], []):
            emit(child, depth + 1)

    for span in ordered:
        parent_id = span.get("parent_id")
        if parent_id is None or parent_id not in ids:
            emit(span, 0)
    return lines


def render_trace_tree(
    groups: dict[str, list[dict[str, Any]]], trace_id: str
) -> str:
    """The span tree of one trace, by id."""
    spans = groups.get(trace_id)
    if not spans:
        return f"(trace {trace_id!r} not found)"
    return "\n".join([f"trace {trace_id}"] + trace_tree_lines(spans))


def render_trace_report(
    spans: Iterable[dict[str, Any]],
    slowest: int = 5,
    tree: str | None = None,
) -> str:
    """The full CLI report: stage breakdown, slowest-N, one span tree.

    *tree* picks the trace to expand; default is the slowest trace.
    """
    groups = group_traces(spans)
    sections = [
        f"traces: {len(groups)}",
        "",
        "Per-stage latency attribution (critical path)",
        render_stage_breakdown(groups),
        "",
        f"Slowest {slowest} traces",
        render_slowest_table(groups, slowest),
    ]
    if tree is None:
        ranked = slowest_traces(groups, 1)
        tree = ranked[0][0] if ranked else None
    if tree is not None:
        sections += ["", render_trace_tree(groups, tree)]
    return "\n".join(sections)
