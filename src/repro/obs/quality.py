"""Model-quality telemetry: estimate-vs-actual accuracy and drift.

The paper validates derived cost models *offline* with R²/SEE and the
§5 error bands, but a deployed model rots silently as the local
environment drifts away from the regime it was sampled under (§1's 30x
cost swings).  This module closes the loop online:

* :class:`AccuracyTracker` — rolling windows of
  ``(predicted_seconds, actual_seconds)`` pairs keyed by
  ``(site, query_class, contention_state)``, maintaining the paper's §5
  bands (% of estimates with relative error ≤ 30%, % within a factor of
  2), mean relative error, and bias (signed mean relative error).
  Every recording also lands in the global metrics registry, so the
  numbers show up in snapshots and the exposition surface for free;
* :func:`accuracy_table` — a per-key renderer of those windows (the
  online counterpart of the Table-5 validation rows);
* :class:`DriftDetector` — configurable rules over the tracker
  (window fraction below the "good" band, sustained bias, probing-cost
  readings escaping the model's partitioned [Cmin, Cmax] range) that
  raise structured :class:`DriftEvent`\\ s, which the MDBS maintenance
  layer turns into targeted re-derivations.

Band thresholds intentionally mirror
:mod:`repro.core.validation` (the offline validator); the constants are
restated here so the observability substrate stays import-light, and a
test pins the two modules together.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, NamedTuple

from .metrics import get_registry

__all__ = [
    "AccuracySample",
    "AccuracyTracker",
    "AccuracyWindow",
    "DriftDetector",
    "DriftEvent",
    "DriftPolicy",
    "RecoveryScore",
    "WindowStats",
    "accuracy_table",
    "get_tracker",
    "merge_accuracy_snapshots",
    "merge_window_stats",
    "set_tracker",
]

#: "Very good" (§5): relative error within 30%.
VERY_GOOD_RELATIVE_ERROR = 0.30
#: "Good" (§5): within one time larger or smaller (a factor of 2).
GOOD_FACTOR = 2.0


def _relative_error(predicted: float, actual: float) -> float:
    if actual == 0.0:
        return float("inf") if predicted != 0.0 else 0.0
    return abs(predicted - actual) / abs(actual)


def _signed_relative_error(predicted: float, actual: float) -> float:
    if actual == 0.0:
        return 0.0 if predicted == 0.0 else float("inf")
    return (predicted - actual) / abs(actual)


def _within_factor(predicted: float, actual: float, factor: float) -> bool:
    if actual <= 0.0:
        return predicted == actual
    if predicted <= 0.0:
        return False
    return max(predicted / actual, actual / predicted) <= factor


#: A window's state key: the paper's contention-state ordinal, or a
#: ``(contention_state, buffer_hit_state)`` composite when the site also
#: tracks the qualitative buffer-hit variable.
StateKey = "int | tuple"


def _state_sort_key(state) -> tuple[int, int, str]:
    """Total order over plain, composite, and aggregate (None) states."""
    if state is None:
        return (2, 0, "")
    if isinstance(state, (tuple, list)):
        first = int(state[0]) if state else 0
        return (1, first, "/".join(str(part) for part in state[1:]))
    return (0, int(state), "")


def _state_label(state) -> str:
    """Render a state key for tables: ``s1``, ``s1/warm``, or ``*``."""
    if state is None:
        return "*"
    if isinstance(state, (tuple, list)):
        return "s" + "/".join(str(part) for part in state)
    return f"s{state}"


class AccuracySample(NamedTuple):
    """One estimate checked against reality.

    A NamedTuple rather than a dataclass: one is built per recorded
    plan step on the serving path, and tuple construction keeps that
    hot path inside the <5% overhead budget (tests/obs/test_overhead).
    """

    predicted: float
    actual: float
    at_time: float
    relative_error: float
    signed_error: float
    very_good: bool
    good: bool

    @classmethod
    def make(cls, predicted: float, actual: float, at_time: float) -> "AccuracySample":
        rel = _relative_error(predicted, actual)
        return cls(
            float(predicted),
            float(actual),
            float(at_time),
            rel,
            _signed_relative_error(predicted, actual),
            rel <= VERY_GOOD_RELATIVE_ERROR,
            _within_factor(predicted, actual, GOOD_FACTOR),
        )


@dataclass(frozen=True)
class WindowStats:
    """Aggregate view of one accuracy window (or a merge of several)."""

    count: int
    pct_very_good: float
    pct_good: float
    mean_relative_error: float
    bias: float
    mean_predicted: float
    mean_actual: float

    def to_dict(self) -> dict:
        return {
            "n": self.count,
            "very_good_pct": self.pct_very_good,
            "good_pct": self.pct_good,
            "mean_rel_err": self.mean_relative_error,
            "bias": self.bias,
            "mean_predicted": self.mean_predicted,
            "mean_actual": self.mean_actual,
        }


_EMPTY_STATS = WindowStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class AccuracyWindow:
    """A bounded rolling window of accuracy samples with O(1) stats.

    Band membership and error terms are classified once at insertion;
    running sums are adjusted on eviction, so the hot-path cost of a
    recording is constant regardless of the window size.
    """

    __slots__ = (
        "window_size", "_samples", "_n_very_good", "_n_good",
        "_sum_rel", "_sum_signed", "_sum_predicted", "_sum_actual",
    )

    def __init__(self, window_size: int = 128) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self._samples: deque[AccuracySample] = deque()
        self._n_very_good = 0
        self._n_good = 0
        self._sum_rel = 0.0
        self._sum_signed = 0.0
        self._sum_predicted = 0.0
        self._sum_actual = 0.0

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, predicted: float, actual: float, at_time: float = 0.0) -> AccuracySample:
        sample = AccuracySample.make(predicted, actual, at_time)
        self.push(sample)
        return sample

    def push(self, sample: AccuracySample) -> None:
        """Append an already-classified sample (shared across windows).

        The serving path calls this for every recorded plan step, so the
        eviction arithmetic is inlined rather than routed via
        :meth:`_apply` (tests/obs/test_overhead budgets this path).
        """
        self._samples.append(sample)
        self._n_very_good += sample.very_good
        self._n_good += sample.good
        self._sum_rel += sample.relative_error
        self._sum_signed += sample.signed_error
        self._sum_predicted += sample.predicted
        self._sum_actual += sample.actual
        if len(self._samples) > self.window_size:
            self._apply(self._samples.popleft(), -1)

    def _apply(self, sample: AccuracySample, sign: int) -> None:
        self._n_very_good += sign * sample.very_good
        self._n_good += sign * sample.good
        self._sum_rel += sign * sample.relative_error
        self._sum_signed += sign * sample.signed_error
        self._sum_predicted += sign * sample.predicted
        self._sum_actual += sign * sample.actual

    def stats(self) -> WindowStats:
        n = len(self._samples)
        if n == 0:
            return _EMPTY_STATS
        return WindowStats(
            count=n,
            pct_very_good=100.0 * self._n_very_good / n,
            pct_good=100.0 * self._n_good / n,
            mean_relative_error=self._sum_rel / n,
            bias=self._sum_signed / n,
            mean_predicted=self._sum_predicted / n,
            mean_actual=self._sum_actual / n,
        )

    def recent_stats(self, k: int) -> WindowStats:
        """Stats over the most recent *k* samples only (drift rules)."""
        if k <= 0:
            raise ValueError("k must be positive")
        recent = list(self._samples)[-k:]
        n = len(recent)
        if n == 0:
            return _EMPTY_STATS
        return WindowStats(
            count=n,
            pct_very_good=100.0 * sum(s.very_good for s in recent) / n,
            pct_good=100.0 * sum(s.good for s in recent) / n,
            mean_relative_error=sum(s.relative_error for s in recent) / n,
            bias=sum(s.signed_error for s in recent) / n,
            mean_predicted=sum(s.predicted for s in recent) / n,
            mean_actual=sum(s.actual for s in recent) / n,
        )


class AccuracyTracker:
    """Estimate-vs-actual accuracy keyed by (site, query class, state).

    Two window levels are maintained per recording:

    * a **state** window keyed ``(site, class_label, state)`` — the rows
      of :func:`accuracy_table`, the online Table-5;
    * a **class** window keyed ``(site, class_label)`` — the aggregate
      the drift rules (and the exported gauges) read, since rebuild
      decisions are per class, not per state.

    Probing-cost readings are tracked per site (fed by the
    :class:`~repro.mdbs.probing_service.ProbingService`), so drift rules
    can notice the probing distribution escaping a model's partitioned
    [Cmin, Cmax] range before the accuracy windows fill with misses.

    When recordings carry a *trace_id*, the tracker keeps two kinds of
    exemplar links back into the tracing layer: the **worst** few
    (relative error, trace id) pairs per (site, class), which drift
    events embed so a postmortem starts from a concrete span tree, and a
    bounded set of **flagged** trace ids — traces whose out-of-band
    sample won one of those worst-error slots, which the serving front
    end force-keeps through sampling.  A sample flags exactly when it
    wins a slot, so every exemplar's trace was kept by the sampler, and
    a healthy (or merely *consistently* bad) steady state flags almost
    nothing.

    ``metric_prefix`` names the gauges/histograms exported into the
    global metrics registry on every recording; pass ``export=False``
    to keep a tracker private (e.g. inside tests).
    """

    #: Worst (rel_error, trace_id) links retained per (site, class).
    EXEMPLAR_SLOTS = 4
    #: Bound on the flagged-trace set (oldest flags age out first).
    FLAGGED_CAPACITY = 256

    def __init__(
        self,
        window_size: int = 128,
        probe_window_size: int = 64,
        metric_prefix: str = "mdbs.accuracy",
        export: bool = True,
    ) -> None:
        self.window_size = window_size
        self.probe_window_size = probe_window_size
        self.metric_prefix = metric_prefix
        self.export = export
        self._lock = threading.Lock()
        #: Third key element is a plain or composite state (see record()).
        self._state_windows: dict[tuple, AccuracyWindow] = {}
        self._class_windows: dict[tuple[str, str], AccuracyWindow] = {}
        self._probes: dict[str, deque[tuple[float, float]]] = {}
        #: Trace ids of recent exemplar-slot winners (insertion-ordered).
        self._flagged: OrderedDict[str, None] = OrderedDict()
        #: Worst (relative_error, trace_id) links per (site, class).
        self._exemplars: dict[tuple[str, str], list[tuple[float, str]]] = {}
        #: Structured drift events raised against this tracker's windows
        #: (appended by the maintenance layer), newest last.
        self.drift_events: list[DriftEvent] = []

    # -- recording (the serving hot path) --------------------------------

    def record(
        self,
        site: str,
        class_label: str,
        state,
        predicted: float,
        actual: float,
        at_time: float = 0.0,
        trace_id: str | None = None,
    ) -> AccuracySample:
        """Check one cost estimate against its observed outcome.

        *state* is the contention-state ordinal, or a composite
        ``(contention_state, buffer_hit_state)`` tuple at sites that
        track the buffer-hit qualitative variable — any hashable key
        works; rendering and sorting handle both shapes.

        *trace_id* links the sample back to its request trace: the
        worst per-class out-of-band errors retain their trace ids as
        exemplars and flag the trace so sampling keeps it.
        """
        # Classify once; both windows share the frozen sample.
        sample = AccuracySample.make(predicted, actual, at_time)
        with self._lock:
            state_window = self._state_windows.get((site, class_label, state))
            if state_window is None:
                state_window = AccuracyWindow(self.window_size)
                self._state_windows[(site, class_label, state)] = state_window
            class_window = self._class_windows.get((site, class_label))
            if class_window is None:
                class_window = AccuracyWindow(self.window_size)
                self._class_windows[(site, class_label)] = class_window
            state_window.push(sample)
            class_window.push(sample)
            if trace_id is not None and not sample.good:
                # Out-of-band samples compete for the worst-error
                # exemplar slots; only samples that *win a slot* flag
                # their trace.  In the steady state — even a chronically
                # misestimated workload — the slots converge and almost
                # nothing flags, so force-keeps stay rare instead of
                # flooding the sampler with stub traces; and because
                # every exemplar's trace was flagged at the moment it
                # won its slot, exemplar links always resolve to
                # retained spans.
                links = self._exemplars.setdefault((site, class_label), [])
                # Fast path for the serving flood: a full exemplar list
                # whose smallest retained error already beats this
                # sample needs no scan/sort (links stay sorted worst
                # first, so links[-1] is the cutoff; a trace already
                # holding a slot has err >= cutoff, so a sample at or
                # under the cutoff could never raise it).
                if (
                    len(links) < self.EXEMPLAR_SLOTS
                    or sample.relative_error > links[-1][0]
                ):
                    for i, (err, tid) in enumerate(links):
                        if tid == trace_id:
                            # One slot per trace; keep its worst step.
                            if sample.relative_error > err:
                                links[i] = (sample.relative_error, trace_id)
                            break
                    else:
                        links.append((sample.relative_error, trace_id))
                    # Keep the worst errors; ties keep the smaller id.
                    links.sort(key=lambda pair: (-pair[0], pair[1]))
                    del links[self.EXEMPLAR_SLOTS:]
                    if trace_id not in self._flagged:
                        # Eviction is insertion-ordered (oldest first).
                        self._flagged[trace_id] = None
                        while len(self._flagged) > self.FLAGGED_CAPACITY:
                            self._flagged.popitem(last=False)
            if self.export:
                stats = class_window.stats()
        if self.export:
            registry = get_registry()
            registry.inc(f"{self.metric_prefix}.samples")
            registry.observe(f"{self.metric_prefix}.rel_error", sample.relative_error)
            prefix = f"{self.metric_prefix}.{site}.{class_label}"
            registry.set_gauge(f"{prefix}.good_pct", stats.pct_good)
            registry.set_gauge(f"{prefix}.very_good_pct", stats.pct_very_good)
            registry.set_gauge(f"{prefix}.bias", stats.bias)
        return sample

    def record_probe(self, site: str, cost: float, at_time: float = 0.0) -> None:
        """Note one probing-cost reading for *site* (drift rule input)."""
        with self._lock:
            window = self._probes.get(site)
            if window is None:
                window = deque(maxlen=self.probe_window_size)
                self._probes[site] = window
            window.append((float(cost), float(at_time)))

    def record_drift_event(self, event: "DriftEvent") -> None:
        with self._lock:
            self.drift_events.append(event)

    # -- inspection -------------------------------------------------------

    def keys(self) -> list[tuple]:
        with self._lock:
            return sorted(
                self._state_windows,
                key=lambda k: (k[0], k[1], _state_sort_key(k[2])),
            )

    def class_keys(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(self._class_windows)

    def stats(self, site: str, class_label: str, state=None) -> WindowStats:
        """Window stats for one key; ``state=None`` = the class aggregate."""
        with self._lock:
            if state is None:
                window = self._class_windows.get((site, class_label))
            else:
                window = self._state_windows.get((site, class_label, state))
        return window.stats() if window is not None else _EMPTY_STATS

    def recent_stats(self, site: str, class_label: str, k: int) -> WindowStats:
        with self._lock:
            window = self._class_windows.get((site, class_label))
        return window.recent_stats(k) if window is not None else _EMPTY_STATS

    def probe_readings(self, site: str) -> list[tuple[float, float]]:
        """Recent (cost, at_time) probing readings for *site*."""
        with self._lock:
            return list(self._probes.get(site, ()))

    def is_flagged(self, trace_id: str | None) -> bool:
        """Did any recent out-of-band sample come from *trace_id*?

        Lock-free on purpose: dict membership is atomic under the GIL,
        the serving front end asks once per finished request, and a
        request's own flags are set earlier on the same thread — a
        racing *other* thread's flag arriving a beat late only changes
        which already-borderline trace gets force-kept.
        """
        if trace_id is None:
            return False
        return trace_id in self._flagged

    def exemplar_trace_ids(self, site: str, class_label: str) -> list[str]:
        """Worst-error trace ids for one (site, class), worst first."""
        with self._lock:
            links = self._exemplars.get((site, class_label), ())
            return [trace_id for _, trace_id in links]

    def sample_count(self) -> int:
        with self._lock:
            return sum(len(w) for w in self._class_windows.values())

    def reset(self, site: str | None = None, class_label: str | None = None) -> None:
        """Drop windows (all, one site's, or one (site, class)'s).

        The maintenance layer calls this after a drift-triggered rebuild
        so post-rebuild accuracy is measured fresh, not diluted by the
        stale model's misses; the site's probe window resets too, since
        the new model's state ranges re-anchor what "in range" means.
        """
        with self._lock:
            def keep(key_site: str, key_label: str) -> bool:
                if site is not None and key_site != site:
                    return True
                if class_label is not None and key_label != class_label:
                    return True
                return False

            self._state_windows = {
                k: w for k, w in self._state_windows.items() if keep(k[0], k[1])
            }
            self._class_windows = {
                k: w for k, w in self._class_windows.items() if keep(k[0], k[1])
            }
            self._exemplars = {
                k: links
                for k, links in self._exemplars.items()
                if keep(k[0], k[1])
            }
            if site is None:
                self._probes.clear()
            else:
                self._probes.pop(site, None)

    def snapshot(self) -> dict:
        """A JSON-serializable dump of every window's current stats."""
        with self._lock:
            state_items = sorted(
                self._state_windows.items(),
                key=lambda item: (item[0][0], item[0][1], _state_sort_key(item[0][2])),
            )
            class_items = sorted(self._class_windows.items())
            probe_items = sorted(self._probes.items())
            events = list(self.drift_events)
            exemplar_items = sorted(
                (key, list(links)) for key, links in self._exemplars.items()
            )
        rows = []
        for (site, label, state), window in state_items:
            rows.append(
                {"site": site, "class": label, "state": state}
                | window.stats().to_dict()
            )
        for (site, label), window in class_items:
            rows.append(
                {"site": site, "class": label, "state": None}
                | window.stats().to_dict()
            )
        probes = {
            site: {
                "n": len(readings),
                "last": readings[-1][0] if readings else None,
                "min": min(c for c, _ in readings) if readings else None,
                "max": max(c for c, _ in readings) if readings else None,
            }
            for site, readings in probe_items
        }
        payload = {
            "rows": rows,
            "probes": probes,
            "drift_events": [event.to_dict() for event in events],
        }
        if exemplar_items:
            # Only present when tracing linked samples to traces, so
            # trace-free snapshots keep their pre-tracing shape.
            payload["exemplars"] = {
                f"{site}/{label}": [
                    {"rel_err": err, "trace_id": trace_id}
                    for err, trace_id in links
                ]
                for (site, label), links in exemplar_items
            }
        return payload


def accuracy_table(source: AccuracyTracker | dict) -> str:
    """Render accuracy windows as an aligned table (online Table 5).

    Accepts a live :class:`AccuracyTracker` or a
    :meth:`AccuracyTracker.snapshot` payload (as the CLI reads back
    from disk).  Rows sort by (site, class, state); the per-class
    aggregate renders as state ``*`` after its per-state rows.
    """
    snapshot = source.snapshot() if isinstance(source, AccuracyTracker) else source
    rows = snapshot.get("rows", [])
    if not rows:
        return "(no accuracy samples recorded)"
    headers = (
        "site/class/state", "n", "very_good%", "good%",
        "mean_rel_err", "bias", "pred_s", "obs_s",
    )
    rendered = []
    ordered = sorted(
        rows,
        key=lambda r: (r["site"], r["class"], _state_sort_key(r["state"])),
    )
    for row in ordered:
        state = _state_label(row["state"])
        rendered.append(
            (
                f"{row['site']}/{row['class']}/{state}",
                str(row["n"]),
                f"{row['very_good_pct']:.1f}",
                f"{row['good_pct']:.1f}",
                f"{row['mean_rel_err']:.3f}",
                f"{row['bias']:+.3f}",
                f"{row['mean_predicted']:.4f}",
                f"{row['mean_actual']:.4f}",
            )
        )
    widths = [
        max(len(h), *(len(r[i]) for r in rendered))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(
            h.ljust(w) if i == 0 else h.rjust(w)
            for i, (h, w) in enumerate(zip(headers, widths))
        )
    ]
    lines.append("-" * len(lines[0]))
    for row in rendered:
        lines.append(
            "  ".join(
                c.ljust(w) if i == 0 else c.rjust(w)
                for i, (c, w) in enumerate(zip(row, widths))
            )
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Drift detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DriftPolicy:
    """Configurable drift rules over a tracker's windows.

    Any rule can be disabled by setting its threshold to ``None``.
    ``recent_window`` bounds how far back the accuracy rules look, so a
    long healthy history cannot mask a fresh regression.
    """

    #: Accuracy rules read the most recent this-many class samples.
    recent_window: int = 32
    #: Minimum recent samples before accuracy rules may fire.
    min_samples: int = 12
    #: Fire when the recent fraction within the "good" (2x) band drops
    #: below this percentage.
    good_band_floor_pct: float | None = 50.0
    #: Fire when |mean signed relative error| exceeds this (sustained
    #: over/under-estimation even if some estimates still land in band).
    bias_limit: float | None = 0.75
    #: Fire when this fraction of recent probe readings falls outside
    #: the model's partitioned [Cmin, Cmax] contention range.
    probe_escape_fraction: float | None = 0.5
    #: Minimum probe readings before the escape rule may fire.
    probe_min_readings: int = 4
    #: Relative margin around [Cmin, Cmax] before a probe counts as
    #: escaped (clamping just past an edge is normal, §3.3).
    probe_margin: float = 0.10
    #: Minimum simulated seconds between events for the same
    #: (site, class) — a rebuild needs time to take effect.
    cooldown_seconds: float = 0.0


@dataclass(frozen=True)
class DriftEvent:
    """One detected model-quality regression."""

    site: str
    class_label: str
    rule: str  # "good_band" | "bias" | "probe_escape"
    at_time: float
    detail: str
    stats: dict = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"drift[{self.rule}] {self.site}/{self.class_label} "
            f"@t={self.at_time:.0f}: {self.detail}"
        )

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "class": self.class_label,
            "rule": self.rule,
            "at_time": self.at_time,
            "detail": self.detail,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DriftEvent":
        return cls(
            site=payload["site"],
            class_label=payload["class"],
            rule=payload["rule"],
            at_time=float(payload["at_time"]),
            detail=payload.get("detail", ""),
            stats=dict(payload.get("stats", {})),
        )


@dataclass(frozen=True)
class RecoveryScore:
    """How one model form weathered a regime shift (the race verdict).

    Produced by :meth:`DriftDetector.score_recovery` from a per-round
    accuracy timeline; ``queries_to_recover`` is the number of served
    queries from the shift until the trailing good-band percentage
    climbed back over the referee's floor (None = never recovered).
    """

    calm_good_pct: float
    shift_round: int | None
    degraded_round: int | None
    recovered_round: int | None
    queries_to_recover: int | None
    floor_pct: float

    @property
    def recovered(self) -> bool:
        return self.recovered_round is not None

    def to_dict(self) -> dict:
        return {
            "calm_good_pct": self.calm_good_pct,
            "shift_round": self.shift_round,
            "degraded_round": self.degraded_round,
            "recovered_round": self.recovered_round,
            "queries_to_recover": self.queries_to_recover,
            "floor_pct": self.floor_pct,
            "recovered": self.recovered,
        }


class DriftDetector:
    """Evaluates a :class:`DriftPolicy` against tracker windows.

    Rules run in escalation order — probe-range escape (the earliest
    signal: the environment left the regime the model was sampled in),
    then the good-band floor, then sustained bias — and at most one
    event fires per (site, class) per check, since the remedy (a
    targeted re-derivation) is the same for all three.

    The detector doubles as the *referee* of model-form races
    (:meth:`score_recovery`): the same good-band floor that triggers a
    re-derivation scores how many served queries each form needed to get
    back over it after a regime shift.
    """

    def __init__(self, policy: DriftPolicy | None = None) -> None:
        self.policy = policy or DriftPolicy()
        self._last_fired: dict[tuple[str, str], float] = {}

    def check(
        self,
        tracker: AccuracyTracker,
        site: str,
        states_by_class: Mapping[str, object],
        now: float,
    ) -> list[DriftEvent]:
        """Drift events for *site*, one per degraded class at most.

        *states_by_class* maps each class label under watch to the
        active model's :class:`~repro.core.partition.ContentionStates`
        (anything with ``cmin``/``cmax`` works); classes absent from the
        mapping only get the accuracy rules.
        """
        policy = self.policy
        events: list[DriftEvent] = []
        probes = tracker.probe_readings(site)
        for label in sorted(states_by_class):
            key = (site, label)
            last = self._last_fired.get(key)
            if last is not None and now - last < policy.cooldown_seconds:
                continue
            event = self._check_class(
                tracker, site, label, states_by_class.get(label), probes, now
            )
            if event is not None:
                # Link the worst recent traces so the postmortem starts
                # from a concrete span tree, not just window stats.
                exemplars = tracker.exemplar_trace_ids(site, label)
                if exemplars:
                    event.stats["exemplar_traces"] = exemplars
                self._last_fired[key] = now
                events.append(event)
        return events

    def _check_class(
        self,
        tracker: AccuracyTracker,
        site: str,
        label: str,
        states: object | None,
        probes: list[tuple[float, float]],
        now: float,
    ) -> DriftEvent | None:
        policy = self.policy

        if (
            policy.probe_escape_fraction is not None
            and states is not None
            and len(probes) >= policy.probe_min_readings
        ):
            low = states.cmin * (1.0 - policy.probe_margin)
            high = states.cmax * (1.0 + policy.probe_margin)
            escaped = sum(1 for cost, _ in probes if not low <= cost <= high)
            fraction = escaped / len(probes)
            if fraction >= policy.probe_escape_fraction:
                return DriftEvent(
                    site=site,
                    class_label=label,
                    rule="probe_escape",
                    at_time=now,
                    detail=(
                        f"{escaped}/{len(probes)} recent probes outside "
                        f"[{states.cmin:.4g}, {states.cmax:.4g}] "
                        f"(±{policy.probe_margin:.0%})"
                    ),
                    stats={"escaped_fraction": fraction, "probes": len(probes)},
                )

        stats = tracker.recent_stats(site, label, policy.recent_window)
        if stats.count < policy.min_samples:
            return None
        if (
            policy.good_band_floor_pct is not None
            and stats.pct_good < policy.good_band_floor_pct
        ):
            return DriftEvent(
                site=site,
                class_label=label,
                rule="good_band",
                at_time=now,
                detail=(
                    f"good-band {stats.pct_good:.1f}% < "
                    f"{policy.good_band_floor_pct:.1f}% floor "
                    f"over last {stats.count} estimates"
                ),
                stats=stats.to_dict(),
            )
        if policy.bias_limit is not None and abs(stats.bias) > policy.bias_limit:
            return DriftEvent(
                site=site,
                class_label=label,
                rule="bias",
                at_time=now,
                detail=(
                    f"sustained bias {stats.bias:+.2f} beyond "
                    f"±{policy.bias_limit:.2f} over last {stats.count} estimates"
                ),
                stats=stats.to_dict(),
            )
        return None

    # -- race refereeing ---------------------------------------------------

    def score_recovery(
        self, timeline: Iterable[Mapping], floor_pct: float | None = None
    ) -> RecoveryScore:
        """Score one model form's shift recovery from a round timeline.

        *timeline* is a sequence of per-round mappings with keys
        ``phase`` ("calm" before the shift, anything else after),
        ``good_pct`` (trailing good-band percentage after the round),
        ``samples`` (samples behind that percentage) and ``queries``
        (queries served in the round).  The recovery bar is the policy's
        ``good_band_floor_pct`` unless *floor_pct* overrides it.

        A form that never dips under the floor after the shift recovers
        in 0 queries — staying in band through the shift is the best
        possible outcome, not a scoring gap.
        """
        floor = (
            floor_pct
            if floor_pct is not None
            else (self.policy.good_band_floor_pct or 50.0)
        )
        rounds = list(timeline)
        shift_round: int | None = None
        degraded_round: int | None = None
        recovered_round: int | None = None
        queries_to_recover: int | None = None
        calm_pcts: list[float] = []
        served_since_shift = 0
        for index, entry in enumerate(rounds):
            phase = entry.get("phase", "calm")
            good_pct = float(entry.get("good_pct", 0.0))
            samples = int(entry.get("samples", 0))
            queries = int(entry.get("queries", 0))
            if phase == "calm":
                if samples > 0:
                    calm_pcts.append(good_pct)
                continue
            if shift_round is None:
                shift_round = index
            if recovered_round is not None:
                continue
            served_since_shift += queries
            if samples <= 0:
                continue
            if good_pct < floor:
                if degraded_round is None:
                    degraded_round = index
                continue
            if degraded_round is not None:
                # Back over the floor with real samples, post-dip.
                recovered_round = index
                queries_to_recover = served_since_shift
        if (
            shift_round is not None
            and degraded_round is None
            and any(
                int(e.get("samples", 0)) > 0 for e in rounds[shift_round:]
            )
        ):
            # Never dipped under the floor after the shift: staying in
            # band through it is recovery in zero served queries.
            recovered_round = shift_round
            queries_to_recover = 0
        calm_good_pct = (
            sum(calm_pcts) / len(calm_pcts) if calm_pcts else 0.0
        )
        return RecoveryScore(
            calm_good_pct=calm_good_pct,
            shift_round=shift_round,
            degraded_round=degraded_round,
            recovered_round=recovered_round,
            queries_to_recover=queries_to_recover,
            floor_pct=floor,
        )


# ---------------------------------------------------------------------------
# The global tracker (mirrors the global metrics registry)
# ---------------------------------------------------------------------------

_active_tracker = AccuracyTracker()


def get_tracker() -> AccuracyTracker:
    return _active_tracker


def set_tracker(tracker: AccuracyTracker) -> AccuracyTracker:
    """Install *tracker* globally; returns the previous one."""
    global _active_tracker
    previous = _active_tracker
    _active_tracker = tracker
    return previous


def _merge_stats(stats: Iterable[WindowStats]) -> WindowStats:
    """Sample-weighted merge of several windows (tooling helper)."""
    items = [s for s in stats if s.count]
    n = sum(s.count for s in items)
    if n == 0:
        return _EMPTY_STATS
    return WindowStats(
        count=n,
        pct_very_good=sum(s.pct_very_good * s.count for s in items) / n,
        pct_good=sum(s.pct_good * s.count for s in items) / n,
        mean_relative_error=sum(s.mean_relative_error * s.count for s in items) / n,
        bias=sum(s.bias * s.count for s in items) / n,
        mean_predicted=sum(s.mean_predicted * s.count for s in items) / n,
        mean_actual=sum(s.mean_actual * s.count for s in items) / n,
    )


def merge_window_stats(stats: Iterable[WindowStats]) -> WindowStats:
    """Sample-weighted merge of several :class:`WindowStats`.

    Exact for every mean-based field; the band percentages are exact too
    because each window's percentage is re-weighted by its own sample
    count.  (Windows are *rolling*, so merging two windows that both
    evicted samples approximates the union — the same caveat any
    cross-process aggregation of bounded windows carries.)
    """
    return _merge_stats(stats)


def _stats_from_row(row: Mapping) -> WindowStats:
    """Rebuild a :class:`WindowStats` from a snapshot row's stat fields."""
    return WindowStats(
        count=int(row["n"]),
        pct_very_good=float(row["very_good_pct"]),
        pct_good=float(row["good_pct"]),
        mean_relative_error=float(row["mean_rel_err"]),
        bias=float(row["bias"]),
        mean_predicted=float(row["mean_predicted"]),
        mean_actual=float(row["mean_actual"]),
    )


def _row_state_key(state) -> tuple:
    """A hashable, order-stable grouping key for a snapshot row's state.

    Snapshot payloads that crossed a JSON boundary render composite
    states as lists; live snapshots keep tuples — both must group
    together.
    """
    if isinstance(state, (tuple, list)):
        return (1,) + tuple(str(part) for part in state)
    if state is None:
        return (2,)
    return (0, str(state))


def merge_accuracy_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge several :meth:`AccuracyTracker.snapshot` payloads into one.

    The coordinator/worker load harness runs one tracker per worker
    process; this combines their dumps into a single fleet-wide view
    with the same shape as a single tracker's snapshot:

    * **rows** — sample-weighted :func:`merge_window_stats` per
      (site, class, state), sorted like a live snapshot;
    * **probes** — reading counts summed, min/max widened; ``last`` is
      dropped (``None``) because "last" is not well defined across
      processes;
    * **drift_events** — concatenated in input order (each worker's
      events are already oldest-first).
    """
    grouped: dict[tuple, list] = {}
    meta: dict[tuple, tuple] = {}
    probes: dict[str, dict] = {}
    events: list[dict] = []
    exemplars: dict[str, dict[str, float]] = {}
    for snapshot in snapshots:
        for key, links in snapshot.get("exemplars", {}).items():
            best = exemplars.setdefault(key, {})
            for link in links:
                err = float(link["rel_err"])
                trace_id = link["trace_id"]
                if trace_id not in best or err > best[trace_id]:
                    best[trace_id] = err
        for row in snapshot.get("rows", ()):
            state = row["state"]
            if isinstance(state, list):
                state = tuple(state)
            key = (row["site"], row["class"], _row_state_key(state))
            grouped.setdefault(key, []).append(_stats_from_row(row))
            meta[key] = (row["site"], row["class"], state)
        for site, reading in snapshot.get("probes", {}).items():
            merged = probes.setdefault(
                site, {"n": 0, "last": None, "min": None, "max": None}
            )
            merged["n"] += int(reading.get("n", 0))
            for field_name, pick in (("min", min), ("max", max)):
                value = reading.get(field_name)
                if value is None:
                    continue
                current = merged[field_name]
                merged[field_name] = (
                    value if current is None else pick(current, value)
                )
        events.extend(snapshot.get("drift_events", ()))
    rows = []
    for key in sorted(
        grouped, key=lambda k: (k[0], k[1], _state_sort_key(meta[k][2]))
    ):
        site, label, state = meta[key]
        rows.append(
            {"site": site, "class": label, "state": state}
            | merge_window_stats(grouped[key]).to_dict()
        )
    merged = {
        "rows": rows,
        "probes": {site: probes[site] for site in sorted(probes)},
        "drift_events": events,
    }
    if exemplars:
        # Same worst-first, capacity-bounded shape as a live snapshot.
        merged["exemplars"] = {
            key: [
                {"rel_err": err, "trace_id": trace_id}
                for err, trace_id in sorted(
                    ((err, tid) for tid, err in exemplars[key].items()),
                    key=lambda pair: (-pair[0], pair[1]),
                )[: AccuracyTracker.EXEMPLAR_SLOTS]
            ]
            for key in sorted(exemplars)
        }
    return merged
