"""repro.obs — tracing + metrics observability for the whole stack.

The substrate every performance question lands on: *where did the time
and the work actually go?*  Three pieces:

* :mod:`repro.obs.metrics` — a global, always-live
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  streaming histograms, cheap enough to record from per-query hot
  paths;
* :mod:`repro.obs.tracing` — nested, context-managed spans recorded by
  a thread-safe :class:`~repro.obs.tracing.Tracer`.  The global default
  is a no-op tracer, so the instrumentation baked into the engine,
  builder, and MDBS layers costs ~nothing until :func:`enable` (or the
  scoped :func:`recording`) installs a real one;
* :mod:`repro.obs.export` — JSONL trace dumps and per-span-name /
  per-metric summary tables.

Typical use::

    from repro import obs

    tracer = obs.enable()
    server.execute(global_query)          # instrumented internally
    print(obs.summary_table(tracer))      # where did the time go?
    obs.write_jsonl(tracer, "trace.jsonl")
    print(obs.metrics_table(obs.get_registry()))
    obs.disable()

Instrumented call sites use the module-level helpers (:func:`span`,
:func:`inc`, :func:`observe`, :func:`set_gauge`) so they always hit the
currently installed tracer/registry.
"""

from __future__ import annotations

from .export import (
    metrics_table,
    span_to_dict,
    summary_table,
    to_jsonl,
    tree_lines,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .tracing import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    disable,
    enable,
    enabled,
    get_tracer,
    recording,
    set_tracer,
    span,
)

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "span",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "enabled",
    "recording",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "inc",
    "observe",
    "set_gauge",
    # export
    "span_to_dict",
    "to_jsonl",
    "write_jsonl",
    "summary_table",
    "metrics_table",
    "tree_lines",
]


def inc(name: str, amount: float = 1.0) -> None:
    """Increment a counter in the global registry."""
    get_registry().inc(name, amount)


def observe(name: str, value: float) -> None:
    """Record a value into a histogram in the global registry."""
    get_registry().observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge in the global registry."""
    get_registry().set_gauge(name, value)
