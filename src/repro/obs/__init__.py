"""repro.obs — tracing + metrics observability for the whole stack.

The substrate every performance question lands on: *where did the time
and the work actually go?*  Three pieces:

* :mod:`repro.obs.metrics` — a global, always-live
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  streaming histograms, cheap enough to record from per-query hot
  paths;
* :mod:`repro.obs.tracing` — nested, context-managed spans recorded by
  a thread-safe :class:`~repro.obs.tracing.Tracer`.  The global default
  is a no-op tracer, so the instrumentation baked into the engine,
  builder, and MDBS layers costs ~nothing until :func:`enable` (or the
  scoped :func:`recording`) installs a real one;
* :mod:`repro.obs.export` — JSONL trace dumps and per-span-name /
  per-metric summary tables;
* :mod:`repro.obs.quality` — model-quality telemetry: rolling
  estimate-vs-actual accuracy windows (the paper's §5 bands, online)
  and rule-based drift detection over them;
* :mod:`repro.obs.expose` — Prometheus-style text exposition, combined
  obs snapshots, the one-screen dashboard behind ``python -m repro.obs``,
  and DriftEvent JSONL export.

Typical use::

    from repro import obs

    tracer = obs.enable()
    server.execute(global_query)          # instrumented internally
    print(obs.summary_table(tracer))      # where did the time go?
    obs.write_jsonl(tracer, "trace.jsonl")
    print(obs.metrics_table(obs.get_registry()))
    obs.disable()

Instrumented call sites use the module-level helpers (:func:`span`,
:func:`inc`, :func:`observe`, :func:`set_gauge`) so they always hit the
currently installed tracer/registry.
"""

from __future__ import annotations

from .export import (
    metrics_table,
    read_jsonl,
    span_from_dict,
    span_to_dict,
    summary_table,
    to_jsonl,
    tree_lines,
    write_jsonl,
)
from .expose import (
    drift_events_to_jsonl,
    read_snapshot,
    render_dashboard,
    render_text,
    snapshot_payload,
    write_drift_jsonl,
    write_snapshot,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .quality import (
    AccuracySample,
    AccuracyTracker,
    AccuracyWindow,
    DriftDetector,
    DriftEvent,
    DriftPolicy,
    WindowStats,
    accuracy_table,
    get_tracker,
    merge_accuracy_snapshots,
    merge_window_stats,
    set_tracker,
)
from .trace_analysis import (
    group_traces,
    load_trace_file,
    render_slowest_table,
    render_stage_breakdown,
    render_trace_report,
    render_trace_tree,
    slowest_traces,
    stage_breakdown,
    trace_stage_seconds,
    trace_tree_lines,
)
from .tracing import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    TraceContext,
    Tracer,
    TraceSampler,
    current_trace_id,
    disable,
    enable,
    enabled,
    get_tracer,
    recording,
    set_tracer,
    span,
)

__all__ = [
    # tracing
    "Span",
    "TraceContext",
    "Tracer",
    "TraceSampler",
    "NoopTracer",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "span",
    "current_trace_id",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "enabled",
    "recording",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "inc",
    "observe",
    "set_gauge",
    # quality
    "AccuracySample",
    "AccuracyTracker",
    "AccuracyWindow",
    "DriftDetector",
    "DriftEvent",
    "DriftPolicy",
    "WindowStats",
    "accuracy_table",
    "get_tracker",
    "merge_accuracy_snapshots",
    "merge_window_stats",
    "set_tracker",
    # export
    "span_to_dict",
    "span_from_dict",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "summary_table",
    "metrics_table",
    "tree_lines",
    # trace analysis
    "group_traces",
    "load_trace_file",
    "render_slowest_table",
    "render_stage_breakdown",
    "render_trace_report",
    "render_trace_tree",
    "slowest_traces",
    "stage_breakdown",
    "trace_stage_seconds",
    "trace_tree_lines",
    # expose
    "drift_events_to_jsonl",
    "read_snapshot",
    "render_dashboard",
    "render_text",
    "snapshot_payload",
    "write_drift_jsonl",
    "write_snapshot",
]


def inc(name: str, amount: float = 1.0) -> None:
    """Increment a counter in the global registry."""
    get_registry().inc(name, amount)


def observe(name: str, value: float, exemplar: str | None = None) -> None:
    """Record a value into a histogram in the global registry.

    *exemplar* (a trace id) links the observation to its trace; the
    histogram keeps the links for its largest-valued observations.
    """
    get_registry().observe(name, value, exemplar=exemplar)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge in the global registry."""
    get_registry().set_gauge(name, value)
