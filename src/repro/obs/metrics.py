"""Metrics: counters, gauges, and streaming histograms.

A :class:`MetricsRegistry` owns named metrics, created lazily on first
use so call sites never need registration boilerplate:

* :class:`Counter` — a monotonically increasing total (queries run,
  cache hits, pages read);
* :class:`Gauge` — a last-written value (latest estimated cost,
  current contention level);
* :class:`Histogram` — streaming distribution summary: exact count /
  sum / min / max plus quantiles over a bounded reservoir sample, so
  memory stays constant no matter how many values are recorded.

All metrics are individually lock-protected, safe for concurrent
recording.  Lookup of an *existing* metric is lock-free (a plain dict
read, atomic under the GIL; metrics are never replaced once created),
so the hot path is one unlocked ``dict.get`` plus one locked add —
cheap enough for per-query serving paths with many worker threads, and
it keeps always-useful totals such as cache hit rates available without
opting in.  The concurrency stress test in ``tests/obs`` pins the
no-lost-increments guarantee.
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from typing import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "quantile",
]


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """The *q*-quantile of pre-sorted values (linear interpolation,
    matching ``numpy.quantile``'s default method)."""
    if not sorted_values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    n = len(sorted_values)
    if n == 1:
        return float(sorted_values[0])
    position = q * (n - 1)
    lower = math.floor(position)
    fraction = position - lower
    if fraction == 0.0:
        return float(sorted_values[lower])
    return float(
        sorted_values[lower]
        + (sorted_values[lower + 1] - sorted_values[lower]) * fraction
    )


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value = (self._value or 0.0) + delta

    @property
    def value(self) -> float | None:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Streaming distribution summary with bounded memory.

    Count, sum, min, and max are exact; quantiles come from a uniform
    reservoir sample of at most ``reservoir_size`` values (exact while
    fewer values than that have been recorded).  The reservoir RNG is a
    per-instance ``random.Random`` seeded from a stable digest of the
    metric name (``hash()`` is salted per process, which would make
    quantiles differ between ``--jobs N`` workers and their parent), so
    identically named histograms fed identical values sample
    identically in every process.
    """

    __slots__ = ("name", "reservoir_size", "_count", "_sum", "_min", "_max",
                 "_reservoir", "_rng", "_lock", "_exemplars")

    #: How many (value, exemplar) links a histogram retains — the
    #: worst-valued observations keep their trace ids for drill-down.
    EXEMPLAR_SLOTS = 4

    def __init__(self, name: str, reservoir_size: int = 4096) -> None:
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.name = name
        self.reservoir_size = reservoir_size
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir: list[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()
        self._exemplars: list[tuple[float, str]] = []

    def record(self, value: float, exemplar: str | None = None) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._reservoir) < self.reservoir_size:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.reservoir_size:
                    self._reservoir[slot] = value
            if exemplar is not None:
                exemplars = self._exemplars
                # Fast path: once full, the list is sorted largest
                # first, so a value at or under the smallest retained
                # one could never survive the sort-and-truncate (ties
                # keep the earliest link) — skip the append entirely.
                if (
                    len(exemplars) < self.EXEMPLAR_SLOTS
                    or value > exemplars[-1][0]
                ):
                    exemplars.append((value, exemplar))
                    if len(exemplars) > self.EXEMPLAR_SLOTS:
                        # Keep the largest values; ties keep the earliest.
                        exemplars.sort(key=lambda pair: -pair[0])
                        del exemplars[self.EXEMPLAR_SLOTS:]

    def exemplars(self) -> list[tuple[float, str]]:
        """The retained (value, trace id) links, largest value first."""
        with self._lock:
            return sorted(self._exemplars, key=lambda pair: -pair[0])

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def minimum(self) -> float | None:
        return None if self._count == 0 else self._min

    @property
    def maximum(self) -> float | None:
        return None if self._count == 0 else self._max

    @property
    def mean(self) -> float | None:
        return None if self._count == 0 else self._sum / self._count

    def quantile(self, q: float) -> float:
        with self._lock:
            values = sorted(self._reservoir)
        return quantile(values, q)

    def quantiles(self, qs: Iterable[float]) -> list[float]:
        with self._lock:
            values = sorted(self._reservoir)
        return [quantile(values, q) for q in qs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self._count})"


class MetricsRegistry:
    """Named metrics, created lazily on first use.

    Asking for an existing name returns the same object; asking for it
    as a different metric kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, *args):
        # Lock-free fast path: once a metric exists it is never replaced,
        # and ``dict.get`` is atomic under the GIL, so the common case
        # (every recording after the first) skips the registry lock
        # entirely.  Per-metric locks still guarantee no lost updates —
        # the concurrency stress test in tests/obs pins both properties.
        metric = self._metrics.get(name)
        if type(metric) is kind:
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, reservoir_size: int = 4096) -> Histogram:
        return self._get_or_create(name, Histogram, reservoir_size)

    # -- recording shortcuts (the hot-path API) -----------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float, exemplar: str | None = None
    ) -> None:
        self.histogram(name).record(value, exemplar=exemplar)

    # -- inspection -------------------------------------------------------

    def counter_value(self, name: str, default: float = 0.0) -> float:
        """A counter's total without creating it as a side effect."""
        with self._lock:
            metric = self._metrics.get(name)
        return metric.value if isinstance(metric, Counter) else default

    def gauge_value(self, name: str, default: float | None = None) -> float | None:
        """A gauge's last-written value without creating it as a side effect."""
        with self._lock:
            metric = self._metrics.get(name)
        if isinstance(metric, Gauge) and metric.value is not None:
            return metric.value
        return default

    def counters(self) -> dict[str, float]:
        """Every counter's current total, by name."""
        with self._lock:
            metrics = dict(self._metrics)
        return {
            name: metric.value
            for name, metric in sorted(metrics.items())
            if isinstance(metric, Counter)
        }

    def merge_counters(self, totals: dict[str, float]) -> None:
        """Add *totals* into this registry's counters (by name).

        The aggregation primitive for pooled workers: each worker ships
        its counter deltas back and the parent folds them in, so process
        boundaries don't lose cache hit rates or per-layer work counts.
        """
        for name, value in totals.items():
            if value:
                self.inc(name, value)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """A JSON-serializable dump of every metric's current state."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, dict] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"kind": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"kind": "gauge", "value": metric.value}
            else:
                entry: dict = {
                    "kind": "histogram",
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.minimum,
                    "max": metric.maximum,
                    "mean": metric.mean,
                }
                if metric.count:
                    entry["p50"], entry["p95"] = metric.quantiles((0.5, 0.95))
                links = metric.exemplars()
                if links:
                    entry["exemplars"] = [
                        {"value": value, "trace_id": trace_id}
                        for value, trace_id in links
                    ]
                out[name] = entry
        return out

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


# ---------------------------------------------------------------------------
# The global registry
# ---------------------------------------------------------------------------

_active_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _active_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* globally; returns the previous one."""
    global _active_registry
    previous = _active_registry
    _active_registry = registry
    return previous
