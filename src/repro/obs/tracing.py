"""Span tracing: nested, context-managed spans with attributes.

A :class:`Tracer` records :class:`Span` trees — one span per unit of
work, nested via a per-thread stack so a span started while another is
open becomes its child.  The module-level default tracer is a
:class:`NoopTracer` whose :meth:`~NoopTracer.span` returns a shared
do-nothing singleton, so instrumentation left in hot paths costs a
single function call and an empty ``with`` block when tracing is
disabled.  Enable recording globally with :func:`enable` (or scoped with
:func:`recording`), then export the finished spans with
:mod:`repro.obs.export`.

Request-scoped tracing builds on three additions:

* every span can carry a ``trace_id`` grouping it into one request's
  tree.  A child opened on the same thread inherits the innermost open
  span's trace id automatically;
* :meth:`Tracer.span` accepts an explicit ``parent`` (a :class:`Span`
  or :class:`TraceContext`), so a span opened on a worker-pool thread
  can adopt a parent created on the submitting thread instead of being
  orphaned by the per-thread stack;
* :class:`TraceSampler` makes the keep/drop decision per trace id with
  a deterministic hash (same seed + trace id ⇒ same verdict in every
  process), with a ``force`` escape hatch so failed/timed-out queries
  and drift exemplars are always kept.

Span start/end times come from ``time.perf_counter`` by default — they
measure *real* wall-clock work, not the simulated clock of
:mod:`repro.env`.  Simulated durations (e.g. a plan step's modeled
elapsed seconds) are attached as span attributes by the instrumented
code.
"""

from __future__ import annotations

import itertools
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, NamedTuple

_span_ids = itertools.count(1)


class TraceContext(NamedTuple):
    """A portable parent reference: pass it across threads or processes
    to re-anchor child spans under a span opened elsewhere."""

    trace_id: str | None
    span_id: int


@dataclass
class Span:
    """One traced unit of work.

    Spans are context managers: entering records the start time and the
    parent (the innermost open span on the same thread, unless an
    explicit parent was given at creation), exiting records the end
    time and hands the span to the tracer's finished list.
    """

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    span_id: int = field(default_factory=lambda: next(_span_ids))
    parent_id: int | None = None
    trace_id: str | None = None
    start: float = 0.0
    end: float | None = None
    thread: str = ""
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)
    #: True when the span was created as an explicit trace root (or with
    #: an explicit parent): the per-thread stack must not re-parent it.
    _anchored: bool = field(default=False, repr=False, compare=False)
    #: Detached spans never join a thread stack: they can be entered on
    #: one thread and exited on another (e.g. a request span opened at
    #: submission and closed by whichever pool worker finishes it).
    _detached: bool = field(default=False, repr=False, compare=False)

    #: Distinguishes a live span from the no-op singleton without an
    #: isinstance check in hot paths.
    recording = True

    @property
    def duration(self) -> float:
        """Elapsed real seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def context(self) -> TraceContext:
        """A handle other threads can parent to (cheap, immutable)."""
        return TraceContext(self.trace_id, self.span_id)

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._start(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._finish(self)
        return False


class _NoopSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()
    recording = False
    trace_id = None
    context = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, name: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The disabled tracer: every span is the shared no-op singleton."""

    enabled = False

    def span(
        self,
        name: str,
        parent: "Span | TraceContext | None" = None,
        trace_id: str | None = None,
        detached: bool = False,
        **attributes: Any,
    ) -> _NoopSpan:
        return NOOP_SPAN

    def current(self) -> None:
        return None

    def active_trace_id(self) -> None:
        return None

    @contextmanager
    def suppress(self, trace_id: str | None = None) -> Iterator[None]:
        yield

    def suppress_begin(self, trace_id: str | None = None) -> tuple:
        return (False, None)

    def suppress_end(self, token: tuple) -> None:
        pass

    def finished(self) -> list[Span]:
        return []

    def trace(self, trace_id: str) -> list[Span]:
        return []

    def drop_trace(self, trace_id: str) -> int:
        return 0

    def span_count(self, trace_id: str) -> int:
        return 0

    def reset(self) -> None:
        pass


NOOP_TRACER = NoopTracer()


class Tracer:
    """A recording tracer with per-thread span stacks.

    Thread-safe: each thread nests spans on its own stack (so parentage
    never crosses threads unless an explicit ``parent`` is handed
    over), and the finished list is lock-protected.

    With ``local_ids=True`` the tracer numbers spans from its own
    counter instead of the process-global one, so identically-driven
    tracers produce identical span ids — the property loadgen shards
    rely on for byte-identical merged traces at any worker count.
    """

    enabled = True

    #: Dropped-trace ids accumulate lazily; past this many the finished
    #: list is compacted in one pass (amortized O(1) per drop).
    DROP_COMPACT_THRESHOLD = 64

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        local_ids: bool = False,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []
        self._dropped: set[str] = set()
        self._trace_counts: dict[str, int] = {}
        self._ids = itertools.count(1) if local_ids else None

    # -- span lifecycle --------------------------------------------------

    def span(
        self,
        name: str,
        parent: Span | TraceContext | None = None,
        trace_id: str | None = None,
        detached: bool = False,
        **attributes: Any,
    ) -> "Span | _NoopSpan":
        """Create a span; enter it (``with``) to start the clock.

        *parent* (a :class:`Span` or :class:`TraceContext`) anchors the
        span under a specific parent regardless of which thread enters
        it; the trace id is inherited from the parent unless *trace_id*
        overrides it.  *trace_id* alone starts a new trace root (the
        per-thread stack will not re-parent it).  With neither, the
        innermost open span on the entering thread becomes the parent,
        exactly as before.

        *detached* spans stay off the thread stacks entirely, so they
        may be entered on one thread and exited on another — the shape
        of a request-scoped root span that outlives a queue hop.
        """
        if getattr(self._local, "suppressing", False):
            return NOOP_SPAN
        if self._ids is not None:
            # itertools.count.__next__ is atomic under the GIL.
            span = Span(
                name=name,
                attributes=attributes,
                span_id=next(self._ids),
                _tracer=self,
            )
        else:
            span = Span(name=name, attributes=attributes, _tracer=self)
        if parent is not None:
            span.parent_id = parent.span_id
            span.trace_id = trace_id if trace_id is not None else parent.trace_id
            span._anchored = True
        elif trace_id is not None:
            span.trace_id = trace_id
            span._anchored = True
        if detached:
            span._detached = True
        return span

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _start(self, span: Span) -> None:
        span.thread = threading.current_thread().name
        if span._detached:
            span.start = self._clock()
            return
        stack = self._stack()
        if stack and not span._anchored:
            top = stack[-1]
            span.parent_id = top.span_id
            span.trace_id = top.trace_id
        stack.append(span)
        span.start = self._clock()

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        if not span._detached:
            stack = self._stack()
            # Normally a strict LIFO pop; tolerate out-of-order exits.
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:
                stack.remove(span)
        with self._lock:
            self._finished.append(span)
            if span.trace_id is not None:
                self._trace_counts[span.trace_id] = (
                    self._trace_counts.get(span.trace_id, 0) + 1
                )

    # -- per-request suppression ------------------------------------------

    def suppress_begin(self, trace_id: str | None = None) -> tuple:
        """Enter per-thread suppression without a context manager.

        The serving hot path calls this once per unsampled request;
        generator-based ``with`` machinery would cost more than the
        suppressed spans themselves.  Returns the token to hand back to
        :meth:`suppress_end` (in a ``finally``).
        """
        local = self._local
        token = (
            getattr(local, "suppressing", False),
            getattr(local, "suppress_id", None),
        )
        local.suppressing = True
        local.suppress_id = trace_id
        return token

    def suppress_end(self, token: tuple) -> None:
        """Restore the suppression state captured by :meth:`suppress_begin`."""
        local = self._local
        local.suppressing, local.suppress_id = token

    @contextmanager
    def suppress(self, trace_id: str | None = None) -> Iterator[None]:
        """Silence span creation on this thread for the block's duration.

        The head-sampling fast path: a request whose trace id hashed
        out of the sample runs its pipeline with every ``span()`` call
        returning the no-op singleton, so it pays (almost) the
        tracing-off price.  *trace_id* keeps
        :func:`current_trace_id` answering inside the block, so
        accuracy/exemplar links — the signals that can still force-keep
        the request's stub trace — survive suppression.
        """
        token = self.suppress_begin(trace_id)
        try:
            yield
        finally:
            self.suppress_end(token)

    # -- inspection -------------------------------------------------------

    def current(self) -> Span | None:
        """The innermost open span on the calling thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    def active_trace_id(self) -> str | None:
        """The calling thread's trace id: the innermost open span's, or
        the id a :meth:`suppress` block carries for an unsampled
        request."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].trace_id
        if getattr(self._local, "suppressing", False):
            return getattr(self._local, "suppress_id", None)
        return None

    def finished(self) -> list[Span]:
        """A snapshot of all completed, undropped spans (finish order)."""
        with self._lock:
            if not self._dropped:
                return list(self._finished)
            dropped = self._dropped
            return [s for s in self._finished if s.trace_id not in dropped]

    def trace(self, trace_id: str) -> list[Span]:
        """All finished spans belonging to *trace_id* (finish order)."""
        with self._lock:
            if trace_id in self._dropped:
                return []
            return [s for s in self._finished if s.trace_id == trace_id]

    def span_count(self, trace_id: str) -> int:
        """Finished-span count for one trace — O(1), for the sampler's
        spans-per-trace histogram (a full scan per resolved request
        would make tail resolution quadratic over a serving run)."""
        with self._lock:
            if trace_id in self._dropped:
                return 0
            return self._trace_counts.get(trace_id, 0)

    def drop_trace(self, trace_id: str) -> int:
        """Discard every finished span of *trace_id* (the tail half of a
        sampled-out decision).  O(1): the id goes into a dropped set and
        the finished list compacts only every
        :data:`DROP_COMPACT_THRESHOLD` drops.  Returns 1 if the id was
        newly dropped, else 0.
        """
        if trace_id is None:
            return 0
        with self._lock:
            if trace_id in self._dropped:
                return 0
            self._dropped.add(trace_id)
            self._trace_counts.pop(trace_id, None)
            if len(self._dropped) >= self.DROP_COMPACT_THRESHOLD:
                dropped = self._dropped
                self._finished = [
                    s for s in self._finished if s.trace_id not in dropped
                ]
                self._dropped = set()
        return 1

    def reset(self) -> None:
        """Drop all recorded spans (open spans keep recording)."""
        with self._lock:
            self._finished.clear()
            self._dropped.clear()
            self._trace_counts.clear()


class TraceSampler:
    """Deterministic head sampling by trace-id hash, resolved at tail.

    The keep/drop verdict for a trace id is a pure function of
    ``(seed, trace_id)`` — the same in every process at any worker
    count.  The serving front end consults :meth:`keep` at submission:
    sampled requests record their full span tree, unsampled requests
    run with every span suppressed (:meth:`Tracer.suppress`) and record
    nothing, so sampling saves recording cost up front rather than
    discarding spans already paid for.  :meth:`resolve` is called once
    at request completion and either keeps what was recorded (counting
    it sampled) or drops it.  ``force=True`` keeps the trace regardless
    of the hash — the always-keep path for failed/timed-out/rejected
    queries and worst-band accuracy exemplars; a forced-but-unsampled
    request materializes a 1-span root stub at finish, so a postmortem
    at least sees the request and its final status.
    """

    def __init__(self, rate: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate!r}")
        self.rate = float(rate)
        self.seed = int(seed)
        self.sampled = 0
        self.dropped = 0
        self.forced = 0
        # Metric handles cached per registry: resolve() runs once per
        # request, and name-keyed registry lookups there are measurable
        # against the <5% sampled-overhead budget.
        self._registry = None
        self._sampled_counter = None
        self._dropped_counter = None
        self._spans_histogram = None

    def keep(self, trace_id: str) -> bool:
        """The head decision: pure, deterministic, process-independent."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        digest = zlib.crc32(f"{self.seed}:{trace_id}".encode("utf-8"))
        return digest / 2**32 < self.rate

    def _bind_metrics(self) -> None:
        from .metrics import get_registry

        registry = get_registry()
        if registry is not self._registry:
            self._registry = registry
            self._sampled_counter = registry.counter("obs.trace.sampled")
            self._dropped_counter = registry.counter("obs.trace.dropped")
            self._spans_histogram = registry.histogram("obs.trace.spans")

    def resolve(
        self, tracer: Tracer | NoopTracer, trace_id: str, force: bool = False
    ) -> bool:
        """Tail resolution: keep (and count) or drop the trace's spans."""
        self._bind_metrics()
        hash_keep = self.keep(trace_id)
        kept = force or hash_keep
        if kept:
            self.sampled += 1
            if not hash_keep:
                self.forced += 1
            self._sampled_counter.add(1.0)
            count = tracer.span_count(trace_id)
            if count:
                self._spans_histogram.record(float(count))
        else:
            self.dropped += 1
            tracer.drop_trace(trace_id)
            self._dropped_counter.add(1.0)
        return kept


# ---------------------------------------------------------------------------
# The global tracer
# ---------------------------------------------------------------------------

_active_tracer: Tracer | NoopTracer = NOOP_TRACER


def get_tracer() -> Tracer | NoopTracer:
    return _active_tracer


def set_tracer(tracer: Tracer | NoopTracer) -> Tracer | NoopTracer:
    """Install *tracer* globally; returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    return previous


def enable(clock: Callable[[], float] = time.perf_counter) -> Tracer:
    """Install (and return) a fresh recording tracer."""
    tracer = Tracer(clock)
    set_tracer(tracer)
    return tracer


def disable() -> None:
    """Restore the no-op default."""
    set_tracer(NOOP_TRACER)


def enabled() -> bool:
    return _active_tracer.enabled


def span(
    name: str,
    parent: Span | TraceContext | None = None,
    trace_id: str | None = None,
    detached: bool = False,
    **attributes: Any,
) -> Span | _NoopSpan:
    """A span from the global tracer (the one instrumentation calls)."""
    return _active_tracer.span(
        name, parent=parent, trace_id=trace_id, detached=detached, **attributes
    )


def current_trace_id() -> str | None:
    """The trace id of this thread's active trace, if any.

    Instrumented code that only wants to *link* to the active trace
    (accuracy exemplars, histogram exemplars) calls this instead of
    threading a context object through every signature.  It answers for
    the innermost open span — and inside a :meth:`Tracer.suppress`
    block, for the unsampled request the block carries — so force-keep
    signals work whether or not the request records spans.
    """
    return _active_tracer.active_trace_id()


@contextmanager
def recording(
    clock: Callable[[], float] = time.perf_counter, local_ids: bool = False
) -> Iterator[Tracer]:
    """Scoped tracing: record within the block, then restore the
    previously installed tracer.  *local_ids* as in :class:`Tracer` —
    loadgen shards pass True (with a simulated clock) so their exported
    spans are a pure function of the shard task."""
    tracer = Tracer(clock, local_ids=local_ids)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
