"""Span tracing: nested, context-managed spans with attributes.

A :class:`Tracer` records :class:`Span` trees — one span per unit of
work, nested via a per-thread stack so a span started while another is
open becomes its child.  The module-level default tracer is a
:class:`NoopTracer` whose :meth:`~NoopTracer.span` returns a shared
do-nothing singleton, so instrumentation left in hot paths costs a
single function call and an empty ``with`` block when tracing is
disabled.  Enable recording globally with :func:`enable` (or scoped with
:func:`recording`), then export the finished spans with
:mod:`repro.obs.export`.

Span start/end times come from ``time.perf_counter`` by default — they
measure *real* wall-clock work, not the simulated clock of
:mod:`repro.env`.  Simulated durations (e.g. a plan step's modeled
elapsed seconds) are attached as span attributes by the instrumented
code.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

_span_ids = itertools.count(1)


@dataclass
class Span:
    """One traced unit of work.

    Spans are context managers: entering records the start time and the
    parent (the innermost open span on the same thread), exiting records
    the end time and hands the span to the tracer's finished list.
    """

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    span_id: int = field(default_factory=lambda: next(_span_ids))
    parent_id: int | None = None
    start: float = 0.0
    end: float | None = None
    thread: str = ""
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    #: Distinguishes a live span from the no-op singleton without an
    #: isinstance check in hot paths.
    recording = True

    @property
    def duration(self) -> float:
        """Elapsed real seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._start(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._finish(self)
        return False


class _NoopSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()
    recording = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, name: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The disabled tracer: every span is the shared no-op singleton."""

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        return NOOP_SPAN

    def current(self) -> None:
        return None

    def finished(self) -> list[Span]:
        return []

    def reset(self) -> None:
        pass


NOOP_TRACER = NoopTracer()


class Tracer:
    """A recording tracer with per-thread span stacks.

    Thread-safe: each thread nests spans on its own stack (so parentage
    never crosses threads), and the finished list is lock-protected.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []

    # -- span lifecycle --------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span:
        """Create a span; enter it (``with``) to start the clock."""
        return Span(name=name, attributes=attributes, _tracer=self)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _start(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            span.parent_id = stack[-1].span_id
        span.thread = threading.current_thread().name
        stack.append(span)
        span.start = self._clock()

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        # Normally a strict LIFO pop; tolerate out-of-order exits.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        with self._lock:
            self._finished.append(span)

    # -- inspection -------------------------------------------------------

    def current(self) -> Span | None:
        """The innermost open span on the calling thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> list[Span]:
        """A snapshot of all completed spans (finish order)."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        """Drop all recorded spans (open spans keep recording)."""
        with self._lock:
            self._finished.clear()


# ---------------------------------------------------------------------------
# The global tracer
# ---------------------------------------------------------------------------

_active_tracer: Tracer | NoopTracer = NOOP_TRACER


def get_tracer() -> Tracer | NoopTracer:
    return _active_tracer


def set_tracer(tracer: Tracer | NoopTracer) -> Tracer | NoopTracer:
    """Install *tracer* globally; returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    return previous


def enable(clock: Callable[[], float] = time.perf_counter) -> Tracer:
    """Install (and return) a fresh recording tracer."""
    tracer = Tracer(clock)
    set_tracer(tracer)
    return tracer


def disable() -> None:
    """Restore the no-op default."""
    set_tracer(NOOP_TRACER)


def enabled() -> bool:
    return _active_tracer.enabled


def span(name: str, **attributes: Any) -> Span | _NoopSpan:
    """A span from the global tracer (the one instrumentation calls)."""
    return _active_tracer.span(name, **attributes)


@contextmanager
def recording(clock: Callable[[], float] = time.perf_counter) -> Iterator[Tracer]:
    """Scoped tracing: record within the block, then restore the
    previously installed tracer."""
    tracer = Tracer(clock)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
