"""Exposition surface: Prometheus-style text, snapshots, dashboards.

Three consumers:

* a scrape-shaped reader — :func:`render_text` turns a metrics registry
  (or a saved snapshot of one) into the Prometheus text exposition
  format, with histograms rendered as summaries (``_count`` / ``_sum``
  plus ``quantile`` labels);
* offline tooling — :func:`write_snapshot` persists metrics + accuracy
  windows + model-registry state as one JSON document that
  ``python -m repro.obs`` renders back (``--watch`` re-reads it live);
* humans — :func:`render_dashboard` lays the same payload out as a
  one-screen text dashboard: serving totals, the accuracy table, model
  versions, and recent drift events.

Drift events additionally export as JSONL (:func:`write_drift_jsonl`),
one event per line, alongside the span export from :mod:`.export`.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable

from .metrics import MetricsRegistry, get_registry
from .quality import AccuracyTracker, DriftEvent, accuracy_table, get_tracker

__all__ = [
    "drift_events_to_jsonl",
    "read_snapshot",
    "render_dashboard",
    "render_text",
    "snapshot_payload",
    "write_drift_jsonl",
    "write_snapshot",
]

#: Version stamp of the snapshot payload this module writes.
SNAPSHOT_VERSION = 1

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str = "repro_") -> str:
    """A metric name sanitized to the Prometheus grammar."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _prom_value(value: float | None) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def render_text(source: MetricsRegistry | dict | None = None) -> str:
    """The registry as Prometheus text exposition format.

    Accepts a live :class:`MetricsRegistry`, a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict (as stored
    in a snapshot file), or ``None`` for the global registry.  Counters
    and gauges map directly; histograms render as summaries with exact
    ``_count``/``_sum`` and reservoir-sampled quantiles.
    """
    if source is None:
        source = get_registry()
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["kind"]
        prom = _prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_prom_value(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(entry['value'])}")
        else:
            lines.append(f"# TYPE {prom} summary")
            for q_key, q_label in (("p50", "0.5"), ("p95", "0.95")):
                if q_key in entry:
                    lines.append(
                        f'{prom}{{quantile="{q_label}"}} '
                        f"{_prom_value(entry[q_key])}"
                    )
            lines.append(f"{prom}_count {int(entry['count'])}")
            lines.append(f"{prom}_sum {_prom_value(entry['sum'])}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Snapshots: one JSON document carrying the whole obs state
# ---------------------------------------------------------------------------


def _model_rows(model_registry) -> list[dict]:
    """Per-(site, class) active-version summaries for the dashboard."""
    rows = []
    for site, label in model_registry.keys():
        entry = model_registry.active_version(site, label)
        rows.append(
            {
                "site": site,
                "class": label,
                "active": entry.version,
                "versions": len(model_registry.history(site, label)),
                "algorithm": entry.provenance.algorithm,
                "r_squared": entry.provenance.r_squared,
                "trigger": entry.provenance.trigger,
            }
        )
    return rows


def snapshot_payload(
    registry: MetricsRegistry | None = None,
    accuracy: AccuracyTracker | None = None,
    model_registry=None,
) -> dict:
    """The combined obs state as a JSON-serializable document.

    ``None`` arguments default to the process-global registry/tracker;
    *model_registry* (a :class:`~repro.mdbs.registry.CostModelRegistry`)
    is optional — experiments that never build an MDBS have none.
    """
    registry = registry if registry is not None else get_registry()
    accuracy = accuracy if accuracy is not None else get_tracker()
    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "metrics": registry.snapshot(),
        "accuracy": accuracy.snapshot(),
        "models": _model_rows(model_registry) if model_registry is not None else [],
    }


def write_snapshot(
    path: str | Path,
    registry: MetricsRegistry | None = None,
    accuracy: AccuracyTracker | None = None,
    model_registry=None,
) -> dict:
    """Persist :func:`snapshot_payload` as JSON; returns the payload."""
    payload = snapshot_payload(registry, accuracy, model_registry)
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return payload


def read_snapshot(path: str | Path) -> dict:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported obs snapshot version {version!r} "
            f"(this build reads {SNAPSHOT_VERSION})"
        )
    return payload


# ---------------------------------------------------------------------------
# The one-screen dashboard
# ---------------------------------------------------------------------------

_DASH_COUNTERS = (
    ("mdbs.global_queries", "global queries"),
    ("serving.completed", "served requests"),
    ("serving.rejected", "rejected"),
    ("serving.plan_cache.hits", "plan-cache hits"),
    ("mdbs.probing.coalesced", "probes coalesced"),
    ("mdbs.accuracy.samples", "accuracy samples"),
    ("mdbs.maintenance_runs", "maintenance runs"),
    ("maintenance.rebuilds", "model rebuilds"),
    ("mdbs.drift.events", "drift events"),
    ("mdbs.registry.published", "versions published"),
    ("obs.trace.sampled", "traces sampled"),
    ("obs.trace.dropped", "traces dropped"),
)


def _rule(title: str, width: int = 72) -> str:
    return f"--- {title} " + "-" * max(0, width - len(title) - 5)


def render_dashboard(payload: dict) -> str:
    """Lay a snapshot payload out as a one-screen text dashboard."""
    metrics = payload.get("metrics", {})
    lines: list[str] = ["repro.obs dashboard"]

    totals = []
    for name, label in _DASH_COUNTERS:
        entry = metrics.get(name)
        if entry is not None and entry.get("value"):
            totals.append(f"{label}={int(entry['value'])}")
    lines.append("  ".join(totals) if totals else "(no serving activity recorded)")

    spans_entry = metrics.get("obs.trace.spans")
    if spans_entry and spans_entry.get("count"):
        mean = spans_entry.get("mean") or 0.0
        p95 = spans_entry.get("p95")
        p95_text = f"  p95={p95:.0f}" if p95 is not None else ""
        lines.append(
            f"spans/trace: mean={mean:.1f}{p95_text}  "
            f"(over {int(spans_entry['count'])} sampled traces)"
        )

    lines.append("")
    lines.append(_rule("estimate accuracy (rolling windows)"))
    lines.append(accuracy_table(payload.get("accuracy", {})))

    models = payload.get("models", [])
    lines.append("")
    lines.append(_rule("active model versions"))
    if models:
        for row in models:
            trigger = f"  trigger: {row['trigger']}" if row.get("trigger") else ""
            lines.append(
                f"{row['site']}/{row['class']:<4} v{row['active']} "
                f"of {row['versions']}  {row['algorithm']:<8} "
                f"R²={row['r_squared']:.4f}{trigger}"
            )
    else:
        lines.append("(no model registry in snapshot)")

    events = payload.get("accuracy", {}).get("drift_events", [])
    lines.append("")
    lines.append(_rule(f"drift events ({len(events)})"))
    if events:
        for event in events[-8:]:
            lines.append(DriftEvent.from_dict(event).describe())
    else:
        lines.append("(none)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Drift-event JSONL export (alongside the span export)
# ---------------------------------------------------------------------------


def drift_events_to_jsonl(events: Iterable[DriftEvent]) -> str:
    """Drift events as JSON-lines text (one event per line)."""
    return "".join(json.dumps(event.to_dict()) + "\n" for event in events)


def write_drift_jsonl(
    events: Iterable[DriftEvent] | AccuracyTracker, path: str | Path
) -> int:
    """Dump drift events to *path*; returns the number written."""
    if isinstance(events, AccuracyTracker):
        events = events.drift_events
    events = list(events)
    Path(path).write_text(drift_events_to_jsonl(events), encoding="utf-8")
    return len(events)
