"""Exporters: JSONL trace dumps and human-readable summary tables.

Two consumers, two formats:

* :func:`write_jsonl` — one JSON object per span, for offline analysis
  (the dicts round-trip through ``json.loads`` and reference each other
  via ``span_id``/``parent_id``, so a trace tree is reconstructable);
* :func:`summary_table` — a per-span-name aggregate (count, total,
  mean, p50, p95 of real durations) for a quick "where did the time
  go?" read at the end of a run.

:func:`metrics_table` renders a registry snapshot the same way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from .metrics import MetricsRegistry, quantile
from .tracing import Span, Tracer


def _spans_of(source: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(source, Tracer):
        return source.finished()
    return list(source)


def span_to_dict(span: Span) -> dict[str, Any]:
    """A JSON-serializable view of one span."""
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "trace_id": span.trace_id,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "thread": span.thread,
        "attributes": dict(span.attributes),
    }


def span_from_dict(data: dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` from its :func:`span_to_dict` form."""
    return Span(
        name=data["name"],
        attributes=dict(data.get("attributes", {})),
        span_id=data["span_id"],
        parent_id=data.get("parent_id"),
        trace_id=data.get("trace_id"),
        start=data.get("start", 0.0),
        end=data.get("end"),
        thread=data.get("thread", ""),
    )


def read_jsonl(path: str | Path) -> list[Span]:
    """Load a JSONL trace dump back into spans (inverse of
    :func:`write_jsonl`)."""
    spans = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            spans.append(span_from_dict(json.loads(line)))
    return spans


def to_jsonl(source: Tracer | Iterable[Span]) -> str:
    """The whole trace as JSON-lines text (one span per line)."""
    return "".join(
        json.dumps(span_to_dict(span), default=str) + "\n"
        for span in _spans_of(source)
    )


def write_jsonl(source: Tracer | Iterable[Span], path: str | Path) -> int:
    """Dump the trace to *path*; returns the number of spans written."""
    spans = _spans_of(source)
    Path(path).write_text(to_jsonl(spans), encoding="utf-8")
    return len(spans)


def summary_table(
    source: Tracer | Iterable[Span], sort_by: str = "name"
) -> str:
    """Aggregate spans by name into a fixed-width table.

    *sort_by* is one of ``"name"`` (the default — stable ordering for
    golden-test output), ``"count"``, or ``"total"``.
    """
    groups: dict[str, list[float]] = {}
    for span in _spans_of(source):
        groups.setdefault(span.name, []).append(span.duration)
    if not groups:
        return "(no spans recorded)"

    rows = []
    for name, durations in groups.items():
        durations.sort()
        rows.append(
            (
                name,
                len(durations),
                sum(durations),
                sum(durations) / len(durations),
                quantile(durations, 0.5),
                quantile(durations, 0.95),
            )
        )
    if sort_by == "name":
        rows.sort(key=lambda r: r[0])
    elif sort_by == "count":
        rows.sort(key=lambda r: r[1], reverse=True)
    elif sort_by == "total":
        rows.sort(key=lambda r: r[2], reverse=True)
    else:
        raise ValueError(f"unknown sort_by {sort_by!r}")

    width = max(len("span"), *(len(r[0]) for r in rows))
    header = (
        f"{'span':<{width}}  {'count':>7}  {'total_s':>10}  "
        f"{'mean_s':>10}  {'p50_s':>10}  {'p95_s':>10}"
    )
    lines = [header, "-" * len(header)]
    for name, count, total, mean, p50, p95 in rows:
        lines.append(
            f"{name:<{width}}  {count:>7}  {total:>10.4f}  "
            f"{mean:>10.6f}  {p50:>10.6f}  {p95:>10.6f}"
        )
    return "\n".join(lines)


def metrics_table(registry: MetricsRegistry) -> str:
    """Render a registry snapshot as aligned ``name  kind  value`` rows.

    Rows sort by metric name and the value column is right-aligned, so
    the rendering is stable enough for golden tests and scans like a
    numeric column should.
    """
    snapshot = registry.snapshot()
    if not snapshot:
        return "(no metrics recorded)"
    rows = []
    for name, entry in snapshot.items():  # snapshot() is already name-sorted
        kind = entry["kind"]
        if kind == "histogram":
            value = (
                f"n={entry['count']} mean={_fmt(entry.get('mean'))} "
                f"p50={_fmt(entry.get('p50'))} p95={_fmt(entry.get('p95'))} "
                f"max={_fmt(entry.get('max'))}"
            )
        else:
            value = _fmt(entry["value"])
        rows.append((name, kind, value))
    name_width = max(len("metric"), *(len(r[0]) for r in rows))
    value_width = max(len("value"), *(len(r[2]) for r in rows))
    lines = [f"{'metric':<{name_width}}  {'kind':<9}  {'value':>{value_width}}"]
    lines.append("-" * len(lines[0]))
    for name, kind, value in rows:
        lines.append(f"{name:<{name_width}}  {kind:<9}  {value:>{value_width}}")
    return "\n".join(lines)


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def tree_lines(spans: Sequence[Span]) -> list[str]:
    """Render a finished span list as an indented call tree (debug aid)."""
    spans = list(spans)
    children: dict[int | None, list[Span]] = {}
    for span in sorted(spans, key=lambda s: s.start):
        children.setdefault(span.parent_id, []).append(span)
    ids = {span.span_id for span in spans}
    lines: list[str] = []

    def walk(parent: int | None, depth: int) -> None:
        for span in children.get(parent, []):
            lines.append(f"{'  ' * depth}{span.name}  {span.duration:.6f}s")
            walk(span.span_id, depth + 1)

    # Roots: spans with no parent, or whose parent is not in this batch.
    for span in sorted(spans, key=lambda s: s.start):
        if span.parent_id is None or span.parent_id not in ids:
            lines.append(f"{span.name}  {span.duration:.6f}s")
            walk(span.span_id, 1)
    return lines
