"""repro — multi-states query sampling for dynamic multidatabase environments.

A full reproduction of Zhu, Sun & Motheramgari, *Developing Cost Models
with Qualitative Variables for Dynamic Multidatabase Environments*
(ICDE 2000): the multi-states query sampling method (IUPMA/ICMA state
determination, qualitative-variable regression, mixed variable
selection, probing-cost machinery) together with every substrate it runs
on — a relational engine with two DBMS profiles, a dynamic-contention
environment simulator, a regression library, and an MDBS layer whose
global optimizer consumes the derived models.

Quick start::

    from repro.workload import make_site
    from repro.core import CostModelBuilder, G1, validate_model

    site = make_site("oracle_site", environment_kind="uniform", scale=0.03)
    builder = CostModelBuilder(site.database)
    queries = site.generator.queries_for(G1, builder.sample_size(G1))
    outcome = builder.build(G1, queries, algorithm="iupma")
    print(outcome.model.equation_table())
"""

from . import core, engine, env, mdbs, mlr, obs, workload

__version__ = "1.0.0"

__all__ = ["core", "engine", "env", "mdbs", "mlr", "obs", "workload", "__version__"]
