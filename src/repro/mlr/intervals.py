"""Prediction intervals and outlier diagnostics for OLS fits.

Query optimizers don't only want a point estimate — a cost model that
can say "between 2 s and 9 s with 95% confidence" lets the optimizer
hedge between plans whose intervals overlap.  The standard OLS machinery
[11] gives this for free once the coefficient covariance is kept:

* prediction variance for a new row x:  s² · (1 + x'(X'X)⁻¹x)
* internally studentized residual:      e_i / (s · sqrt(1 − h_ii))

where h_ii is the leverage of training row i.  The studentized residuals
also drive outlier screening, which the static query sampling method's
validation step used when fitting cost models.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from .linalg import as_design_matrix
from .ols import OLSResult


def _covariance(result: OLSResult) -> np.ndarray:
    if result.coef_covariance is None:
        raise ValueError(
            "this OLS fit carries no coefficient covariance "
            "(degenerate degrees of freedom)"
        )
    return result.coef_covariance


def prediction_interval(
    result: OLSResult, rows: np.ndarray, confidence: float = 0.95
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(point, lower, upper) prediction intervals for new design rows.

    Parameters
    ----------
    result:
        A fitted model with positive error degrees of freedom.
    rows:
        New design-matrix rows (same columns as the training design).
    confidence:
        Two-sided coverage level in (0, 1).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    X = as_design_matrix(rows)
    cov = _covariance(result)
    if X.shape[1] != cov.shape[0]:
        raise ValueError(
            f"rows have {X.shape[1]} columns, model has {cov.shape[0]} parameters"
        )
    df = result.degrees_of_freedom
    if df <= 0:
        raise ValueError("no degrees of freedom for intervals")
    point = X @ result.coefficients
    s2 = result.standard_error**2
    # Var(new y - prediction) = s^2 + x' Cov(beta) x.
    var = s2 + np.einsum("ij,jk,ik->i", X, cov, X)
    margin = stats.t.ppf(0.5 + confidence / 2.0, df) * np.sqrt(np.maximum(var, 0.0))
    return point, point - margin, point + margin


def leverages(result: OLSResult, training_design: np.ndarray) -> np.ndarray:
    """Hat-matrix diagonal h_ii for the training rows."""
    X = as_design_matrix(training_design)
    cov = _covariance(result)
    s2 = result.standard_error**2
    if s2 <= 0:
        # Perfect fit: leverage via the pseudo-inverse of X'X directly.
        from .linalg import xtx_inverse

        xtx_inv = xtx_inverse(X)
    else:
        xtx_inv = cov / s2
    h = np.einsum("ij,jk,ik->i", X, xtx_inv, X)
    return np.clip(h, 0.0, 1.0)


def studentized_residuals(
    result: OLSResult, training_design: np.ndarray
) -> np.ndarray:
    """Internally studentized residuals of the training rows."""
    if result.standard_error <= 0:
        return np.zeros_like(result.residuals)
    h = leverages(result, training_design)
    denom = result.standard_error * np.sqrt(np.maximum(1.0 - h, 1e-12))
    return result.residuals / denom


def outlier_indices(
    result: OLSResult, training_design: np.ndarray, threshold: float = 3.0
) -> list[int]:
    """Training rows whose |studentized residual| exceeds *threshold*."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    r = studentized_residuals(result, training_design)
    return [int(i) for i in np.nonzero(np.abs(r) > threshold)[0]]
