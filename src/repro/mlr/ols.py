"""Ordinary least squares with the textbook inference the paper uses.

The paper validates cost models with the coefficient of (total/multiple)
determination R², the standard error of estimation (its eq. (3)), and
the overall F-test at significance level alpha = 0.01.  All three are
computed here, along with per-coefficient standard errors and t tests
(used by the merging adjustment's relative-error comparison and by
diagnostics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
from scipy import stats

from .linalg import (
    as_design_matrix,
    as_response_vector,
    least_squares,
    xtx_inverse,
)


@dataclass
class OLSResult:
    """A fitted least-squares model plus its goodness-of-fit statistics."""

    coefficients: np.ndarray
    term_names: tuple[str, ...]
    fitted: np.ndarray
    residuals: np.ndarray
    n_observations: int
    n_parameters: int
    #: Coefficient of total determination R².
    r_squared: float
    #: Adjusted R² (penalizes parameter count).
    adjusted_r_squared: float
    #: Standard error of estimation — paper eq. (3).
    standard_error: float
    #: Overall F statistic (None when degenerate, e.g. saturated fit).
    f_statistic: Optional[float]
    f_pvalue: Optional[float]
    #: Per-coefficient standard errors (NaN when df <= 0).
    coef_std_errors: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    t_statistics: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    t_pvalues: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    #: Coefficient covariance matrix s^2 (X'X)^-1 (None when df <= 0),
    #: used for prediction intervals and leverage diagnostics.
    coef_covariance: np.ndarray | None = field(repr=False, default=None)

    @property
    def degrees_of_freedom(self) -> int:
        return self.n_observations - self.n_parameters

    @property
    def sse(self) -> float:
        """Error sum of squares."""
        return float(np.sum(self.residuals**2))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict responses for new design-matrix rows."""
        X = as_design_matrix(X)
        if X.shape[1] != len(self.coefficients):
            raise ValueError(
                f"design matrix has {X.shape[1]} columns, model has "
                f"{len(self.coefficients)} coefficients"
            )
        return X @ self.coefficients

    def coefficient(self, name: str) -> float:
        """Coefficient value by term name."""
        try:
            return float(self.coefficients[self.term_names.index(name)])
        except ValueError:
            raise KeyError(f"no term named {name!r}") from None

    def is_significant(self, alpha: float = 0.01) -> bool:
        """Overall F-test at level *alpha* (paper §5 uses alpha = 0.01)."""
        if self.f_pvalue is None:
            return False
        return self.f_pvalue < alpha

    def summary(self) -> str:
        """Human-readable fit summary (for examples and reports)."""
        lines = [
            f"OLS: n={self.n_observations}, p={self.n_parameters}, "
            f"R^2={self.r_squared:.4f}, adj R^2={self.adjusted_r_squared:.4f}, "
            f"SEE={self.standard_error:.4g}",
        ]
        if self.f_statistic is not None:
            lines.append(
                f"F={self.f_statistic:.2f} (p={self.f_pvalue:.3g})"
            )
        width = max((len(n) for n in self.term_names), default=4)
        for i, name in enumerate(self.term_names):
            se = self.coef_std_errors[i]
            lines.append(
                f"  {name:<{width}}  coef={self.coefficients[i]: .6g}  se={se:.3g}"
            )
        return "\n".join(lines)


def fit_ols(
    X: np.ndarray,
    y: np.ndarray,
    term_names: Sequence[str] | None = None,
    has_intercept: bool = True,
) -> OLSResult:
    """Fit y ~ X by least squares.

    Parameters
    ----------
    X:
        Design matrix *including* any intercept column — callers build
        their own designs (the qualitative forms need full control).
    y:
        Response vector.
    term_names:
        Optional names for the columns of X.
    has_intercept:
        Whether the column span includes the constant vector; determines
        whether R² is computed around the mean (centered) or around zero.
    """
    X = as_design_matrix(X)
    n, p = X.shape
    y = as_response_vector(y, n)
    if n < p:
        raise ValueError(f"need at least as many observations ({n}) as parameters ({p})")
    if term_names is None:
        term_names = tuple(f"x{i}" for i in range(p))
    else:
        term_names = tuple(term_names)
        if len(term_names) != p:
            raise ValueError("term_names length must match design-matrix columns")

    beta = least_squares(X, y)
    fitted = X @ beta
    residuals = y - fitted
    sse = float(np.sum(residuals**2))
    if has_intercept:
        sst = float(np.sum((y - y.mean()) ** 2))
    else:
        sst = float(np.sum(y**2))

    if sst <= 0.0:
        r_squared = 1.0 if sse <= 1e-12 else 0.0
    else:
        r_squared = max(0.0, min(1.0, 1.0 - sse / sst))

    df_error = n - p
    df_model = p - 1 if has_intercept else p
    if df_error > 0:
        see = float(np.sqrt(sse / df_error))
        mse = sse / df_error
    else:
        see = 0.0
        mse = 0.0
    if n - 1 > 0 and df_error > 0 and sst > 0:
        adjusted = 1.0 - (sse / df_error) / (sst / (n - 1))
    else:
        adjusted = r_squared

    f_statistic: Optional[float] = None
    f_pvalue: Optional[float] = None
    if df_model > 0 and df_error > 0 and mse > 0:
        ssr = sst - sse
        f_statistic = max(0.0, (ssr / df_model) / mse)
        f_pvalue = float(stats.f.sf(f_statistic, df_model, df_error))

    # Coefficient inference.
    cov = None
    if df_error > 0 and mse > 0:
        cov = mse * xtx_inverse(X)
        variances = np.clip(np.diag(cov), 0.0, None)
        std_errors = np.sqrt(variances)
        with np.errstate(divide="ignore", invalid="ignore"):
            t_stats = np.where(std_errors > 0, beta / std_errors, np.inf * np.sign(beta))
        t_pvals = 2.0 * stats.t.sf(np.abs(t_stats), df_error)
    else:
        std_errors = np.full(p, np.nan)
        t_stats = np.full(p, np.nan)
        t_pvals = np.full(p, np.nan)

    return OLSResult(
        coefficients=beta,
        term_names=term_names,
        fitted=fitted,
        residuals=residuals,
        n_observations=n,
        n_parameters=p,
        r_squared=r_squared,
        adjusted_r_squared=adjusted,
        standard_error=see,
        f_statistic=f_statistic,
        f_pvalue=f_pvalue,
        coef_std_errors=std_errors,
        t_statistics=t_stats,
        t_pvalues=t_pvals,
        coef_covariance=cov,
    )
