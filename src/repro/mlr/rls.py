"""Online least-squares estimators: RLS and normalized SGD (LMS).

Two incremental alternatives to the batch OLS solve in :mod:`repro.mlr.ols`:

* :class:`RecursiveLeastSquares` — the exact recursive form of least
  squares.  With forgetting factor ``1.0`` and inverse-covariance
  initialisation ``delta * I`` it computes the ridge solution
  ``(X'X + I/delta)^-1 X'y`` after seeing the rows one at a time, which
  converges to the batch OLS coefficients as ``delta`` grows.  A
  forgetting factor below one exponentially down-weights old samples so
  the estimate tracks regime shifts.
* :class:`NormalizedSGD` — stochastic gradient descent with the
  normalized-LMS step ``theta += mu * err * x / (eps + ||x||^2)``.  The
  normalisation makes the step size scale-free, which matters here
  because the paper's cost-model designs mix columns spanning many
  orders of magnitude (tuple counts vs. result lengths).

Both expose the same surface: ``predict(x)``, ``update(x, y)`` (returns
the *a priori* residual), ``coefficients``, ``updates`` and dict
round-tripping, so the strategy layer in :mod:`repro.core.strategy` can
treat them interchangeably.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NormalizedSGD",
    "RecursiveLeastSquares",
    "rls_fit",
    "sgd_fit",
]

DEFAULT_DELTA = 1e8
DEFAULT_FORGETTING = 1.0
DEFAULT_LEARNING_RATE = 0.5
DEFAULT_SGD_EPOCHS = 40


class RecursiveLeastSquares:
    """Recursive least squares with an exponential forgetting factor."""

    def __init__(
        self,
        n_parameters: int,
        *,
        forgetting: float = DEFAULT_FORGETTING,
        delta: float = DEFAULT_DELTA,
        theta: np.ndarray | None = None,
        covariance: np.ndarray | None = None,
    ) -> None:
        if n_parameters < 1:
            raise ValueError("n_parameters must be positive")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting factor must be in (0, 1]")
        if delta <= 0.0:
            raise ValueError("delta must be positive")
        self.n_parameters = int(n_parameters)
        self.forgetting = float(forgetting)
        self.delta = float(delta)
        if theta is None:
            self.theta = np.zeros(self.n_parameters, dtype=float)
        else:
            self.theta = np.asarray(theta, dtype=float).copy()
            if self.theta.shape != (self.n_parameters,):
                raise ValueError("theta shape does not match n_parameters")
        if covariance is None:
            self.covariance = self.delta * np.eye(self.n_parameters)
        else:
            self.covariance = np.asarray(covariance, dtype=float).copy()
            if self.covariance.shape != (self.n_parameters, self.n_parameters):
                raise ValueError("covariance shape does not match n_parameters")
        self.updates = 0

    @property
    def coefficients(self) -> np.ndarray:
        return self.theta

    def predict(self, x) -> float:
        return float(np.asarray(x, dtype=float) @ self.theta)

    def update(self, x, y: float) -> float:
        """Fold one ``(x, y)`` sample in; returns the a-priori residual."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_parameters,):
            raise ValueError("sample shape does not match n_parameters")
        px = self.covariance @ x
        denom = self.forgetting + float(x @ px)
        gain = px / denom
        error = float(y) - float(x @ self.theta)
        self.theta = self.theta + gain * error
        cov = (self.covariance - np.outer(gain, px)) / self.forgetting
        # Symmetrise: the update is symmetric in exact arithmetic, and
        # drifting off the symmetric manifold destabilises long runs.
        self.covariance = (cov + cov.T) / 2.0
        self.updates += 1
        return error

    def to_dict(self) -> dict:
        return {
            "n_parameters": self.n_parameters,
            "forgetting": self.forgetting,
            "delta": self.delta,
            "theta": self.theta.tolist(),
            "covariance": self.covariance.tolist(),
            "updates": self.updates,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> RecursiveLeastSquares:
        estimator = cls(
            payload["n_parameters"],
            forgetting=payload.get("forgetting", DEFAULT_FORGETTING),
            delta=payload.get("delta", DEFAULT_DELTA),
            theta=np.asarray(payload["theta"], dtype=float),
            covariance=np.asarray(payload["covariance"], dtype=float),
        )
        estimator.updates = int(payload.get("updates", 0))
        return estimator


class NormalizedSGD:
    """Normalized-LMS stochastic gradient descent on squared error."""

    def __init__(
        self,
        n_parameters: int,
        *,
        learning_rate: float = DEFAULT_LEARNING_RATE,
        epsilon: float = 1e-12,
        theta: np.ndarray | None = None,
    ) -> None:
        if n_parameters < 1:
            raise ValueError("n_parameters must be positive")
        if not 0.0 < learning_rate <= 2.0:
            raise ValueError("learning_rate must be in (0, 2] for NLMS stability")
        self.n_parameters = int(n_parameters)
        self.learning_rate = float(learning_rate)
        self.epsilon = float(epsilon)
        if theta is None:
            self.theta = np.zeros(self.n_parameters, dtype=float)
        else:
            self.theta = np.asarray(theta, dtype=float).copy()
            if self.theta.shape != (self.n_parameters,):
                raise ValueError("theta shape does not match n_parameters")
        self.updates = 0

    @property
    def coefficients(self) -> np.ndarray:
        return self.theta

    def predict(self, x) -> float:
        return float(np.asarray(x, dtype=float) @ self.theta)

    def update(self, x, y: float) -> float:
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_parameters,):
            raise ValueError("sample shape does not match n_parameters")
        error = float(y) - float(x @ self.theta)
        step = self.learning_rate * error / (self.epsilon + float(x @ x))
        self.theta = self.theta + step * x
        self.updates += 1
        return error

    def to_dict(self) -> dict:
        return {
            "n_parameters": self.n_parameters,
            "learning_rate": self.learning_rate,
            "epsilon": self.epsilon,
            "theta": self.theta.tolist(),
            "updates": self.updates,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> NormalizedSGD:
        estimator = cls(
            payload["n_parameters"],
            learning_rate=payload.get("learning_rate", DEFAULT_LEARNING_RATE),
            epsilon=payload.get("epsilon", 1e-12),
            theta=np.asarray(payload["theta"], dtype=float),
        )
        estimator.updates = int(payload.get("updates", 0))
        return estimator


def rls_fit(
    X,
    y,
    *,
    forgetting: float = DEFAULT_FORGETTING,
    delta: float = DEFAULT_DELTA,
) -> np.ndarray:
    """Batch-fit by streaming the rows through RLS one at a time."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    estimator = RecursiveLeastSquares(
        X.shape[1], forgetting=forgetting, delta=delta
    )
    for row, target in zip(X, y):
        estimator.update(row, float(target))
    return estimator.coefficients


def sgd_fit(
    X,
    y,
    *,
    learning_rate: float = DEFAULT_LEARNING_RATE,
    epochs: int = DEFAULT_SGD_EPOCHS,
    theta: np.ndarray | None = None,
) -> np.ndarray:
    """Batch-fit by repeated in-order NLMS passes over the rows.

    The step size anneals as ``learning_rate / (1 + epoch)`` so the late
    passes take vanishing steps and the estimate settles instead of
    jittering around the least-squares optimum (a constant rate is an
    online *tracking* choice, wrong for a batch fit).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    estimator = NormalizedSGD(
        X.shape[1], learning_rate=learning_rate, theta=theta
    )
    for epoch in range(max(1, int(epochs))):
        estimator.learning_rate = learning_rate / (1.0 + epoch)
        for row, target in zip(X, y):
            estimator.update(row, float(target))
    return estimator.coefficients
