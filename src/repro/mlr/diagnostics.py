"""Regression diagnostics: multicollinearity (VIF) and related checks.

Paper §4.3: "The presence of multicollinearity is detected by means of
the variance inflation factor.  [...]  In a dynamic environment with
multiple contention states, let VIF_{j,i} be the variance inflation
factor of explanatory variable x_j in state i.  If max_i VIF_{j,i} is
large, x_j is not included in a cost model to avoid multicollinearity."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .linalg import add_intercept, as_design_matrix
from .ols import fit_ols

#: Conventional VIF threshold (Neter et al. recommend ~10).
DEFAULT_VIF_LIMIT = 10.0


def variance_inflation_factor(X: np.ndarray, column: int) -> float:
    """VIF of one column of X against the remaining columns.

    X must NOT contain an intercept column; the auxiliary regression adds
    its own.  Returns ``inf`` when the column is an exact linear
    combination of the others, and 1.0 when there is nothing to regress on.
    """
    X = as_design_matrix(X)
    n, p = X.shape
    if not 0 <= column < p:
        raise IndexError(f"column {column} out of range for {p}-column matrix")
    if p == 1 or n < 3:
        return 1.0
    target = X[:, column]
    others = np.delete(X, column, axis=1)
    if np.allclose(target, target[0]):
        # A constant column is degenerate with the intercept.
        return float("inf")
    result = fit_ols(add_intercept(others), target, has_intercept=True)
    r2 = result.r_squared
    if r2 >= 1.0 - 1e-12:
        return float("inf")
    return 1.0 / (1.0 - r2)


def variance_inflation_factors(X: np.ndarray) -> list[float]:
    """VIF of every column of X (no intercept column in X)."""
    X = as_design_matrix(X)
    return [variance_inflation_factor(X, j) for j in range(X.shape[1])]


def max_state_vif(
    X: np.ndarray, states: Sequence[int], num_states: int, column: int
) -> float:
    """max over states of the within-state VIF of one variable.

    This is the paper's screen: a variable collinear with the others *in
    any state* is excluded.  States with too few observations to fit the
    auxiliary regression contribute 1.0 (no evidence of collinearity).
    """
    X = as_design_matrix(X)
    states_arr = np.asarray(states)
    if states_arr.shape[0] != X.shape[0]:
        raise ValueError("states must have one entry per observation")
    worst = 1.0
    for s in range(num_states):
        mask = states_arr == s
        sub = X[mask]
        if sub.shape[0] <= sub.shape[1] + 1:
            continue
        worst = max(worst, variance_inflation_factor(sub, column))
    return worst


def collinear_columns(
    X: np.ndarray,
    states: Sequence[int],
    num_states: int,
    limit: float = DEFAULT_VIF_LIMIT,
) -> list[int]:
    """Indices of columns whose max-over-states VIF exceeds *limit*."""
    X = as_design_matrix(X)
    return [
        j
        for j in range(X.shape[1])
        if max_state_vif(X, states, num_states, j) > limit
    ]
