"""Partial (extra-sum-of-squares) F tests for nested models.

The paper's variable selection uses standard-error-of-estimation
thresholds (§4.2); the classical alternative from its statistics
references [11, 12] is the partial F test: does adding the extra terms
of the *full* model reduce the error sum of squares more than chance
would?  Exposed for users who want significance-based selection or to
audit a selection decision after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats

from .ols import OLSResult


@dataclass(frozen=True)
class PartialFTest:
    """Result of comparing a reduced model against a full model."""

    f_statistic: float
    p_value: float
    df_numerator: int
    df_denominator: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the full model's extra terms earn their keep."""
        return self.p_value < alpha


def partial_f_test(full: OLSResult, reduced: OLSResult) -> PartialFTest:
    """Extra-sum-of-squares F test of *reduced* nested in *full*.

    Both fits must be over the same observations (same n, same response);
    the reduced model must have strictly fewer parameters.  A small
    p-value means the dropped terms explained real variation.
    """
    if full.n_observations != reduced.n_observations:
        raise ValueError("models were fitted to different numbers of observations")
    if reduced.n_parameters >= full.n_parameters:
        raise ValueError(
            "the reduced model must have fewer parameters than the full model"
        )
    df_num = full.n_parameters - reduced.n_parameters
    df_den = full.degrees_of_freedom
    if df_den <= 0:
        raise ValueError("the full model has no error degrees of freedom")
    sse_full = full.sse
    sse_reduced = reduced.sse
    if sse_reduced < sse_full - 1e-9 * max(1.0, sse_full):
        raise ValueError(
            "reduced model fits better than the full model — the models "
            "are not nested (or were fitted to different data)"
        )
    mse_full = sse_full / df_den
    if mse_full <= 0:
        # Saturated full model: any improvement is infinitely significant.
        f_stat = float("inf") if sse_reduced > sse_full else 0.0
        p_value = 0.0 if f_stat > 0 else 1.0
        return PartialFTest(f_stat, p_value, df_num, df_den)
    f_stat = max(0.0, (sse_reduced - sse_full) / df_num) / mse_full
    p_value = float(stats.f.sf(f_stat, df_num, df_den))
    return PartialFTest(f_stat, p_value, df_num, df_den)
