"""Simple correlation coefficients, per the paper's variable selection.

Section 4.2 defines the *simple correlation coefficient* between an
explanatory variable and the response **within one contention state**,
then selects variables by the maximum / average of those per-state
coefficients.  The helpers here compute single-pair correlations with the
degenerate cases (zero variance, fewer than two points) pinned to 0.0 —
a constant variable explains nothing, which is exactly how the selection
procedure should treat it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def simple_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation of two samples; 0.0 for degenerate inputs."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same length")
    if x.size < 2:
        return 0.0
    xc = x - x.mean()
    yc = y - y.mean()
    sx = float(np.sqrt(np.sum(xc * xc)))
    sy = float(np.sqrt(np.sum(yc * yc)))
    if sx == 0.0 or sy == 0.0:
        return 0.0
    r = float(np.sum(xc * yc) / (sx * sy))
    # Guard against floating-point drift outside [-1, 1].
    return max(-1.0, min(1.0, r))


def per_state_correlations(
    x: Sequence[float], y: Sequence[float], states: Sequence[int], num_states: int
) -> list[float]:
    """Correlation of (x, y) computed separately within each state.

    Parameters
    ----------
    x, y:
        Full samples.
    states:
        State index of each observation (0-based).
    num_states:
        Total number of states; states with no observations report 0.0.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    states_arr = np.asarray(states)
    if not (x.shape == y.shape == states_arr.shape):
        raise ValueError("x, y, and states must have the same length")
    out = []
    for s in range(num_states):
        mask = states_arr == s
        out.append(simple_correlation(x[mask], y[mask]))
    return out


def max_abs_state_correlation(
    x: Sequence[float], y: Sequence[float], states: Sequence[int], num_states: int
) -> float:
    """max_i |r_i| over states — the paper's screen for useless variables."""
    rs = per_state_correlations(x, y, states, num_states)
    return max(abs(r) for r in rs)


def average_abs_state_correlation(
    x: Sequence[float], y: Sequence[float], states: Sequence[int], num_states: int
) -> float:
    """mean_i |r_i| over states — the paper's backward/forward ranking key."""
    rs = per_state_correlations(x, y, states, num_states)
    return sum(abs(r) for r in rs) / len(rs)
