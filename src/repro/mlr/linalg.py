"""Numerical kernels for the regression substrate.

Thin wrappers over numpy's linear algebra, with the defensive choices a
statistics library needs: rank-deficient design matrices solve via the
pseudo-inverse (minimum-norm solution) instead of raising, and the
(X'X)^-1 needed for coefficient inference falls back to the
pseudo-inverse too.
"""

from __future__ import annotations

import numpy as np


def as_design_matrix(X: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a design matrix to 2-D float64."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"design matrix must be 2-D, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError("design matrix contains non-finite values")
    return X


def as_response_vector(y: np.ndarray, n_rows: int) -> np.ndarray:
    """Validate and canonicalize a response vector to 1-D float64."""
    y = np.asarray(y, dtype=float).reshape(-1)
    if y.shape[0] != n_rows:
        raise ValueError(
            f"response has {y.shape[0]} rows, design matrix has {n_rows}"
        )
    if not np.all(np.isfinite(y)):
        raise ValueError("response contains non-finite values")
    return y


def least_squares(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Minimum-norm least-squares solution of X b = y."""
    coefficients, _, _, _ = np.linalg.lstsq(X, y, rcond=None)
    return coefficients


def xtx_inverse(X: np.ndarray) -> np.ndarray:
    """(X'X)^-1, via pseudo-inverse when X'X is singular."""
    xtx = X.T @ X
    try:
        return np.linalg.inv(xtx)
    except np.linalg.LinAlgError:
        return np.linalg.pinv(xtx)


def add_intercept(X: np.ndarray) -> np.ndarray:
    """Prepend a column of ones."""
    X = as_design_matrix(X)
    return np.hstack([np.ones((X.shape[0], 1)), X])
