"""Multiple linear regression substrate (from scratch, numpy + scipy.stats).

Implements exactly the statistical machinery the paper leans on: OLS with
R², standard error of estimation, F-test, coefficient inference, simple
(per-state) correlation coefficients, and variance inflation factors.
"""

from .correlation import (
    average_abs_state_correlation,
    max_abs_state_correlation,
    per_state_correlations,
    simple_correlation,
)
from .diagnostics import (
    DEFAULT_VIF_LIMIT,
    collinear_columns,
    max_state_vif,
    variance_inflation_factor,
    variance_inflation_factors,
)
from .ftest import PartialFTest, partial_f_test
from .intervals import (
    leverages,
    outlier_indices,
    prediction_interval,
    studentized_residuals,
)
from .linalg import add_intercept, as_design_matrix, as_response_vector, least_squares
from .ols import OLSResult, fit_ols
from .rls import NormalizedSGD, RecursiveLeastSquares, rls_fit, sgd_fit

__all__ = [
    "DEFAULT_VIF_LIMIT",
    "NormalizedSGD",
    "OLSResult",
    "PartialFTest",
    "RecursiveLeastSquares",
    "add_intercept",
    "as_design_matrix",
    "as_response_vector",
    "average_abs_state_correlation",
    "collinear_columns",
    "fit_ols",
    "least_squares",
    "leverages",
    "max_abs_state_correlation",
    "max_state_vif",
    "outlier_indices",
    "partial_f_test",
    "per_state_correlations",
    "prediction_interval",
    "rls_fit",
    "sgd_fit",
    "simple_correlation",
    "studentized_residuals",
    "variance_inflation_factor",
    "variance_inflation_factors",
]
