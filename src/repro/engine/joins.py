"""Join methods: block nested-loop, index nested-loop, sort-merge, hash.

Every method produces the identical (bag-equivalent) result; they differ
in the physical work they report, which is what drives the simulated
elapsed times the cost models are trained on.  To keep large joins fast
in pure Python, the actual matching always uses a hash table internally —
the *metrics* are what model each algorithm, and correctness tests verify
all methods agree with a naive reference join.

Per the paper's Table 3, each operand's *intermediate table* is the
operand reduced by its local selection; join variables include both
intermediate cardinalities and the size of their Cartesian product.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from itertools import compress
from operator import itemgetter

import numpy as np

from . import vectorize
from .buffer import (
    BufferPool,
    charge_random_pages,
    charge_sequential_pages,
    data_page_of,
)
from .errors import ExecutionError
from .index import Index, IndexKind
from .metrics import AccessInfo, ExecutionMetrics, sort_comparisons_for
from .predicate import TRUE
from .query import JoinQuery
from .table import ResultTable, Table

#: Buffer pages available to a block nested-loop join.
NLJ_BUFFER_PAGES = 64


@dataclass
class JoinExecution:
    """Outcome of one join method."""

    result: ResultTable
    metrics: ExecutionMetrics
    left_info: AccessInfo
    right_info: AccessInfo
    method: str


_sort_comparisons = sort_comparisons_for


def _reduce_operand(
    table: Table,
    predicate,
    metrics: ExecutionMetrics,
    pool: BufferPool | None = None,
) -> list:
    """Apply a local selection by scanning the operand, charging the work."""
    charge_sequential_pages(metrics, pool, table.name, table.num_pages)
    metrics.tuples_read += table.cardinality
    metrics.tuples_evaluated += table.cardinality
    if predicate is TRUE:
        # No local selection: the intermediate IS the operand.  Return
        # the table's own row list so downstream projection can detect
        # the identity and gather straight from cached column arrays.
        reduced = table.rows()
        metrics.intermediate_tuples += len(reduced)
        return reduced
    if vectorize.enabled():
        mask = predicate.evaluate_batch(table)
        if mask is not None:
            reduced = list(compress(table.rows(), mask.tolist()))
            metrics.intermediate_tuples += len(reduced)
            return reduced
    reduced = [row for row in table if predicate.evaluate(row, table.schema)]
    metrics.intermediate_tuples += len(reduced)
    return reduced


def _match_pairs_scalar(left_rows, right_rows, lpos: int, rpos: int):
    """Reference pair matching: hash buckets over the right rows."""
    buckets: dict = defaultdict(list)
    for row in right_rows:
        buckets[row[rpos]].append(row)
    pairs = []
    for lrow in left_rows:
        for rrow in buckets.get(lrow[lpos], ()):
            pairs.append((lrow, rrow))
    return pairs


class _MatchedPairs:
    """Join matches kept as parallel index lists (the columnar fast path).

    Quacks like the scalar matcher's list of ``(left_row, right_row)``
    pairs — same length, order, iteration, and equality — while letting
    :func:`_project_join` gather output columns by numpy fancy index
    (or C-level ``map``) instead of one generator-driven ``tuple()``
    call per pair.  Index arrays stay numpy; the Python-list mirrors
    materialize lazily for iteration.
    """

    __slots__ = (
        "left_rows",
        "right_rows",
        "left_idx_array",
        "right_idx_array",
        "_left_idx",
        "_right_idx",
    )

    def __init__(self, left_rows, right_rows, left_idx_array, right_idx_array):
        self.left_rows = left_rows
        self.right_rows = right_rows
        self.left_idx_array = left_idx_array
        self.right_idx_array = right_idx_array
        self._left_idx = None
        self._right_idx = None

    @property
    def left_idx(self) -> list:
        if self._left_idx is None:
            self._left_idx = self.left_idx_array.tolist()
        return self._left_idx

    @property
    def right_idx(self) -> list:
        if self._right_idx is None:
            self._right_idx = self.right_idx_array.tolist()
        return self._right_idx

    def __len__(self) -> int:
        return len(self.left_idx_array)

    def __iter__(self):
        lrows, rrows = self.left_rows, self.right_rows
        return (
            (lrows[i], rrows[j]) for i, j in zip(self.left_idx, self.right_idx)
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, _MatchedPairs)):
            return list(self) == list(other)
        return NotImplemented


def _match_pairs_vectorized(left_rows, right_rows, lpos: int, rpos: int):
    """numpy pair matching, or None when the key dtypes don't allow it.

    A stable argsort of the right keys plus two ``searchsorted`` calls
    yields, for every left row, the right matches in right-scan order —
    the exact pair order the scalar hash path produces (left-row major,
    right-scan order within a key).
    """
    try:
        lkeys = np.array([r[lpos] for r in left_rows])
        rkeys = np.array([r[rpos] for r in right_rows])
    except (OverflowError, ValueError):
        # e.g. integers beyond int64 — scalar hashing handles those.
        return None
    numeric = ("i", "u", "f")
    if lkeys.dtype.kind in numeric and rkeys.dtype.kind in numeric:
        pass
    elif lkeys.dtype.kind == "U" and rkeys.dtype.kind == "U":
        pass
    else:
        return None
    order = np.argsort(rkeys, kind="stable")
    rsorted = rkeys[order]
    starts = np.searchsorted(rsorted, lkeys, side="left")
    ends = np.searchsorted(rsorted, lkeys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.intp)
        return _MatchedPairs(left_rows, right_rows, empty, empty)
    left_idx = np.repeat(np.arange(len(left_rows)), counts)
    # Concatenated ranges starts[i]..ends[i]: position within each
    # segment plus the segment's start.
    segment_firsts = np.cumsum(counts) - counts
    offsets = np.arange(total) - np.repeat(segment_firsts, counts)
    right_idx = order[np.repeat(starts, counts) + offsets]
    return _MatchedPairs(left_rows, right_rows, left_idx, right_idx)


def _match_pairs(left_rows, right_rows, lpos: int, rpos: int):
    """All (left, right) pairs with equal join keys.

    Dispatches to the vectorized matcher when enabled and the key dtypes
    are comparable under numpy with Python-identical semantics; the two
    paths produce pairs in the same order.
    """
    if vectorize.enabled() and left_rows and right_rows:
        pairs = _match_pairs_vectorized(left_rows, right_rows, lpos, rpos)
        if pairs is not None:
            return pairs
    return _match_pairs_scalar(left_rows, right_rows, lpos, rpos)


def _project_join(
    left: Table, right: Table, query: JoinQuery, pairs
) -> ResultTable:
    """Project matched row pairs onto the query's qualified output columns."""
    out_cols = query.output_columns(left.schema, right.schema)
    extractors = []
    tuple_length = 0
    for qualified in out_cols:
        tname, _, cname = qualified.partition(".")
        if tname == query.left:
            pos = left.schema.position(cname)
            extractors.append(("l", pos, cname))
            tuple_length += left.schema.column(cname).width
        else:
            pos = right.schema.position(cname)
            extractors.append(("r", pos, cname))
            tuple_length += right.schema.column(cname).width
    if isinstance(pairs, _MatchedPairs) and len(pairs):
        # Columnar projection: build one output column at a time and let
        # zip assemble the row tuples.  When a side's matched rows ARE
        # the table's own rows (no local selection reduced them), gather
        # the column by numpy fancy index straight from the table's
        # cached column array; otherwise fall back to a fused C-level
        # map over the index list.  Both produce the identical Python
        # values (int64/float64/unicode round-trip exactly).
        columns = []
        for side, pos, cname in extractors:
            table_, rows_, idx_array = (
                (left, pairs.left_rows, pairs.left_idx_array)
                if side == "l"
                else (right, pairs.right_rows, pairs.right_idx_array)
            )
            if rows_ is table_.rows():
                array = table_.column_array(cname)
                if array.dtype.kind in "iufU":
                    columns.append(array[idx_array].tolist())
                    continue
            idx = pairs.left_idx if side == "l" else pairs.right_idx
            columns.append(
                list(map(itemgetter(pos), map(rows_.__getitem__, idx)))
            )
        rows = list(zip(*columns))
    else:
        rows = [
            tuple(lrow[p] if side == "l" else rrow[p] for side, p, _ in extractors)
            for lrow, rrow in pairs
        ]
    return ResultTable(out_cols, tuple_length, rows)


def _operand_info(
    table: Table, intermediate: int, method: str
) -> AccessInfo:
    return AccessInfo(
        method=method,
        operand_cardinality=table.cardinality,
        intermediate_cardinality=intermediate,
        operand_tuple_length=table.tuple_length,
    )


def nested_loop_join(
    left: Table,
    right: Table,
    query: JoinQuery,
    pool: BufferPool | None = None,
) -> JoinExecution:
    """Block nested-loop join over the reduced operands.

    The smaller intermediate is the outer; the inner is rescanned once per
    outer block of :data:`NLJ_BUFFER_PAGES` pages.  Every pair of
    intermediate tuples is charged a predicate evaluation.  With a buffer
    pool, the inner rescans replay the inner table's pages through the
    cache, so an inner relation that fits in the pool is read from disk
    only once.
    """
    query.validate(left.schema, right.schema)
    metrics = ExecutionMetrics()
    li = _reduce_operand(left, query.left_predicate, metrics, pool)
    ri = _reduce_operand(right, query.right_predicate, metrics, pool)

    # Work accounting: rescan the inner once per outer block.
    outer_rows, inner_table = (li, right) if len(li) <= len(ri) else (ri, left)
    outer_table = left if inner_table is right else right
    outer_pages = outer_table.layout.pages_for(len(outer_rows), outer_table.tuple_length)
    blocks = max(1, math.ceil(outer_pages / NLJ_BUFFER_PAGES))
    for _ in range(blocks - 1):
        charge_sequential_pages(metrics, pool, inner_table.name, inner_table.num_pages)
    metrics.tuples_read += (blocks - 1) * inner_table.cardinality
    metrics.tuples_evaluated += len(li) * len(ri)

    lpos = left.schema.position(query.left_column)
    rpos = right.schema.position(query.right_column)
    pairs = _match_pairs(li, ri, lpos, rpos)
    result = _project_join(left, right, query, pairs)
    metrics.tuples_output = result.cardinality
    return JoinExecution(
        result,
        metrics,
        _operand_info(left, len(li), "nested_loop_join"),
        _operand_info(right, len(ri), "nested_loop_join"),
        "nested_loop_join",
    )


def index_nested_loop_join(
    left: Table,
    right: Table,
    query: JoinQuery,
    inner_index: Index,
    pool: BufferPool | None = None,
) -> JoinExecution:
    """Index nested-loop join probing *inner_index* on the right operand.

    The right operand is never pre-scanned: each outer tuple traverses the
    index (height random reads) and fetches its matches, with the right
    local selection applied as a residual.  With a buffer pool the upper
    index levels stay resident across probes, so repeated traversals cost
    little — the classic INLJ win the amortized formulas only approximate.
    """
    query.validate(left.schema, right.schema)
    if inner_index.table is not right:
        raise ExecutionError("inner_index must index the right operand")
    if inner_index.column_name != query.right_column:
        raise ExecutionError(
            f"inner_index is on {inner_index.column_name!r}, join needs "
            f"{query.right_column!r}"
        )
    metrics = ExecutionMetrics()
    li = _reduce_operand(left, query.left_predicate, metrics, pool)

    lpos = left.schema.position(query.left_column)
    ratio = inner_index.clustering_ratio()
    rows_per_page = right.layout.rows_per_page(right.tuple_length)
    kind_is_clustered = inner_index.kind is IndexKind.CLUSTERED

    pairs = []
    matched_inner_ids: set[int] = set()
    for lrow in li:
        key = lrow[lpos]
        row_ids = inner_index.lookup(key)
        k = len(row_ids)
        if pool is None:
            charge_random_pages(metrics, None, count=inner_index.height)
            if kind_is_clustered:
                metrics.sequential_page_reads += (
                    math.ceil(k / rows_per_page) if k else 0
                )
                metrics.logical_page_reads += math.ceil(k / rows_per_page) if k else 0
            else:
                fetch = math.ceil(k * (1.0 - ratio) + k * ratio / rows_per_page)
                charge_random_pages(metrics, None, count=fetch)
        else:
            charge_random_pages(
                metrics, pool, keys=inner_index.traversal_page_keys(key)
            )
            charge_random_pages(
                metrics,
                pool,
                keys=(
                    ("T", right.name, data_page_of(rid, rows_per_page))
                    for rid in row_ids
                ),
            )
        metrics.tuples_read += k
        for rid in row_ids:
            rrow = right.row(rid)
            metrics.tuples_evaluated += 1
            if query.right_predicate.evaluate(rrow, right.schema):
                pairs.append((lrow, rrow))
                matched_inner_ids.add(rid)
    metrics.intermediate_tuples += len(matched_inner_ids)

    result = _project_join(left, right, query, pairs)
    metrics.tuples_output = result.cardinality
    return JoinExecution(
        result,
        metrics,
        _operand_info(left, len(li), "index_nested_loop_join"),
        _operand_info(right, len(matched_inner_ids), "index_nested_loop_join"),
        "index_nested_loop_join",
    )


def sort_merge_join(
    left: Table,
    right: Table,
    query: JoinQuery,
    pool: BufferPool | None = None,
) -> JoinExecution:
    """Sort-merge join: sort both intermediates on the join key, then merge."""
    query.validate(left.schema, right.schema)
    metrics = ExecutionMetrics()
    li = _reduce_operand(left, query.left_predicate, metrics, pool)
    ri = _reduce_operand(right, query.right_predicate, metrics, pool)

    metrics.sort_comparisons += _sort_comparisons(len(li)) + _sort_comparisons(len(ri))
    # Merge pass touches each intermediate tuple once (plus duplicate-key
    # rescans, charged through the pair evaluations below).
    lpos = left.schema.position(query.left_column)
    rpos = right.schema.position(query.right_column)
    pairs = _match_pairs(li, ri, lpos, rpos)
    metrics.tuples_evaluated += len(li) + len(ri) + len(pairs)

    result = _project_join(left, right, query, pairs)
    metrics.tuples_output = result.cardinality
    return JoinExecution(
        result,
        metrics,
        _operand_info(left, len(li), "sort_merge_join"),
        _operand_info(right, len(ri), "sort_merge_join"),
        "sort_merge_join",
    )


def hash_join(
    left: Table,
    right: Table,
    query: JoinQuery,
    pool: BufferPool | None = None,
) -> JoinExecution:
    """Classic hash join: build on the smaller intermediate, probe the other."""
    query.validate(left.schema, right.schema)
    metrics = ExecutionMetrics()
    li = _reduce_operand(left, query.left_predicate, metrics, pool)
    ri = _reduce_operand(right, query.right_predicate, metrics, pool)

    build, probe = (li, ri) if len(li) <= len(ri) else (ri, li)
    metrics.hash_operations += len(build) + len(probe)

    lpos = left.schema.position(query.left_column)
    rpos = right.schema.position(query.right_column)
    pairs = _match_pairs(li, ri, lpos, rpos)
    metrics.tuples_evaluated += len(pairs)

    result = _project_join(left, right, query, pairs)
    metrics.tuples_output = result.cardinality
    return JoinExecution(
        result,
        metrics,
        _operand_info(left, len(li), "hash_join"),
        _operand_info(right, len(ri), "hash_join"),
        "hash_join",
    )


def naive_join(
    left: Table,
    right: Table,
    query: JoinQuery,
    pool: BufferPool | None = None,
) -> JoinExecution:
    """Reference tuple-at-a-time nested-loops join.

    Scans the left operand once and rescans the right operand for every
    qualifying left tuple — the textbook worst case.  It reports through
    the same :class:`ExecutionMetrics` page accounting as the other join
    methods (and replays its rescans through the buffer pool when one is
    supplied), so tests can pin all five methods to identical result
    sets *and* comparable physical-work ledgers.
    """
    query.validate(left.schema, right.schema)
    lpos = left.schema.position(query.left_column)
    rpos = right.schema.position(query.right_column)
    metrics = ExecutionMetrics()
    charge_sequential_pages(metrics, pool, left.name, left.num_pages)
    metrics.tuples_read += left.cardinality

    pairs = []
    left_qualifying = 0
    right_qualifying = 0
    first_rescan = True
    for lrow in left:
        metrics.tuples_evaluated += 1
        if not query.left_predicate.evaluate(lrow, left.schema):
            continue
        left_qualifying += 1
        charge_sequential_pages(metrics, pool, right.name, right.num_pages)
        metrics.tuples_read += right.cardinality
        for rrow in right:
            metrics.tuples_evaluated += 1
            if not query.right_predicate.evaluate(rrow, right.schema):
                continue
            if first_rescan:
                right_qualifying += 1
            if lrow[lpos] == rrow[rpos]:
                pairs.append((lrow, rrow))
        first_rescan = False
    metrics.intermediate_tuples += left_qualifying + right_qualifying

    result = _project_join(left, right, query, pairs)
    metrics.tuples_output = result.cardinality
    return JoinExecution(
        result,
        metrics,
        _operand_info(left, left_qualifying, "naive_join"),
        _operand_info(right, right_qualifying, "naive_join"),
        "naive_join",
    )
