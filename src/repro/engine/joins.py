"""Join methods: block nested-loop, index nested-loop, sort-merge, hash.

Every method produces the identical (bag-equivalent) result; they differ
in the physical work they report, which is what drives the simulated
elapsed times the cost models are trained on.  To keep large joins fast
in pure Python, the actual matching always uses a hash table internally —
the *metrics* are what model each algorithm, and correctness tests verify
all methods agree with a naive reference join.

Per the paper's Table 3, each operand's *intermediate table* is the
operand reduced by its local selection; join variables include both
intermediate cardinalities and the size of their Cartesian product.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from .errors import ExecutionError
from .index import Index, IndexKind
from .metrics import AccessInfo, ExecutionMetrics, sort_comparisons_for
from .query import JoinQuery
from .table import ResultTable, Table

#: Buffer pages available to a block nested-loop join.
NLJ_BUFFER_PAGES = 64


@dataclass
class JoinExecution:
    """Outcome of one join method."""

    result: ResultTable
    metrics: ExecutionMetrics
    left_info: AccessInfo
    right_info: AccessInfo
    method: str


_sort_comparisons = sort_comparisons_for


def _reduce_operand(table: Table, predicate, metrics: ExecutionMetrics) -> list:
    """Apply a local selection by scanning the operand, charging the work."""
    metrics.sequential_page_reads += table.num_pages
    metrics.tuples_read += table.cardinality
    metrics.tuples_evaluated += table.cardinality
    reduced = [row for row in table if predicate.evaluate(row, table.schema)]
    metrics.intermediate_tuples += len(reduced)
    return reduced


def _match_pairs(left_rows, right_rows, lpos: int, rpos: int):
    """All (left, right) pairs with equal join keys (hash-based)."""
    buckets: dict = defaultdict(list)
    for row in right_rows:
        buckets[row[rpos]].append(row)
    pairs = []
    for lrow in left_rows:
        for rrow in buckets.get(lrow[lpos], ()):
            pairs.append((lrow, rrow))
    return pairs


def _project_join(
    left: Table, right: Table, query: JoinQuery, pairs
) -> ResultTable:
    """Project matched row pairs onto the query's qualified output columns."""
    out_cols = query.output_columns(left.schema, right.schema)
    extractors = []
    tuple_length = 0
    for qualified in out_cols:
        tname, _, cname = qualified.partition(".")
        if tname == query.left:
            pos = left.schema.position(cname)
            extractors.append(("l", pos))
            tuple_length += left.schema.column(cname).width
        else:
            pos = right.schema.position(cname)
            extractors.append(("r", pos))
            tuple_length += right.schema.column(cname).width
    rows = [
        tuple(lrow[p] if side == "l" else rrow[p] for side, p in extractors)
        for lrow, rrow in pairs
    ]
    return ResultTable(out_cols, tuple_length, rows)


def _operand_info(
    table: Table, intermediate: int, method: str
) -> AccessInfo:
    return AccessInfo(
        method=method,
        operand_cardinality=table.cardinality,
        intermediate_cardinality=intermediate,
        operand_tuple_length=table.tuple_length,
    )


def nested_loop_join(left: Table, right: Table, query: JoinQuery) -> JoinExecution:
    """Block nested-loop join over the reduced operands.

    The smaller intermediate is the outer; the inner is rescanned once per
    outer block of :data:`NLJ_BUFFER_PAGES` pages.  Every pair of
    intermediate tuples is charged a predicate evaluation.
    """
    query.validate(left.schema, right.schema)
    metrics = ExecutionMetrics()
    li = _reduce_operand(left, query.left_predicate, metrics)
    ri = _reduce_operand(right, query.right_predicate, metrics)

    # Work accounting: rescan the inner once per outer block.
    outer_rows, inner_table = (li, right) if len(li) <= len(ri) else (ri, left)
    outer_table = left if inner_table is right else right
    outer_pages = outer_table.layout.pages_for(len(outer_rows), outer_table.tuple_length)
    blocks = max(1, math.ceil(outer_pages / NLJ_BUFFER_PAGES))
    metrics.sequential_page_reads += (blocks - 1) * inner_table.num_pages
    metrics.tuples_read += (blocks - 1) * inner_table.cardinality
    metrics.tuples_evaluated += len(li) * len(ri)

    lpos = left.schema.position(query.left_column)
    rpos = right.schema.position(query.right_column)
    pairs = _match_pairs(li, ri, lpos, rpos)
    result = _project_join(left, right, query, pairs)
    metrics.tuples_output = result.cardinality
    return JoinExecution(
        result,
        metrics,
        _operand_info(left, len(li), "nested_loop_join"),
        _operand_info(right, len(ri), "nested_loop_join"),
        "nested_loop_join",
    )


def index_nested_loop_join(
    left: Table, right: Table, query: JoinQuery, inner_index: Index
) -> JoinExecution:
    """Index nested-loop join probing *inner_index* on the right operand.

    The right operand is never pre-scanned: each outer tuple traverses the
    index (height random reads) and fetches its matches, with the right
    local selection applied as a residual.
    """
    query.validate(left.schema, right.schema)
    if inner_index.table is not right:
        raise ExecutionError("inner_index must index the right operand")
    if inner_index.column_name != query.right_column:
        raise ExecutionError(
            f"inner_index is on {inner_index.column_name!r}, join needs "
            f"{query.right_column!r}"
        )
    metrics = ExecutionMetrics()
    li = _reduce_operand(left, query.left_predicate, metrics)

    lpos = left.schema.position(query.left_column)
    ratio = inner_index.clustering_ratio()
    rows_per_page = right.layout.rows_per_page(right.tuple_length)
    kind_is_clustered = inner_index.kind is IndexKind.CLUSTERED

    pairs = []
    matched_inner_ids: set[int] = set()
    for lrow in li:
        row_ids = inner_index.lookup(lrow[lpos])
        metrics.random_page_reads += inner_index.height
        k = len(row_ids)
        if kind_is_clustered:
            metrics.sequential_page_reads += math.ceil(k / rows_per_page) if k else 0
        else:
            metrics.random_page_reads += math.ceil(
                k * (1.0 - ratio) + k * ratio / rows_per_page
            )
        metrics.tuples_read += k
        for rid in row_ids:
            rrow = right.row(rid)
            metrics.tuples_evaluated += 1
            if query.right_predicate.evaluate(rrow, right.schema):
                pairs.append((lrow, rrow))
                matched_inner_ids.add(rid)
    metrics.intermediate_tuples += len(matched_inner_ids)

    result = _project_join(left, right, query, pairs)
    metrics.tuples_output = result.cardinality
    return JoinExecution(
        result,
        metrics,
        _operand_info(left, len(li), "index_nested_loop_join"),
        _operand_info(right, len(matched_inner_ids), "index_nested_loop_join"),
        "index_nested_loop_join",
    )


def sort_merge_join(left: Table, right: Table, query: JoinQuery) -> JoinExecution:
    """Sort-merge join: sort both intermediates on the join key, then merge."""
    query.validate(left.schema, right.schema)
    metrics = ExecutionMetrics()
    li = _reduce_operand(left, query.left_predicate, metrics)
    ri = _reduce_operand(right, query.right_predicate, metrics)

    metrics.sort_comparisons += _sort_comparisons(len(li)) + _sort_comparisons(len(ri))
    # Merge pass touches each intermediate tuple once (plus duplicate-key
    # rescans, charged through the pair evaluations below).
    lpos = left.schema.position(query.left_column)
    rpos = right.schema.position(query.right_column)
    pairs = _match_pairs(li, ri, lpos, rpos)
    metrics.tuples_evaluated += len(li) + len(ri) + len(pairs)

    result = _project_join(left, right, query, pairs)
    metrics.tuples_output = result.cardinality
    return JoinExecution(
        result,
        metrics,
        _operand_info(left, len(li), "sort_merge_join"),
        _operand_info(right, len(ri), "sort_merge_join"),
        "sort_merge_join",
    )


def hash_join(left: Table, right: Table, query: JoinQuery) -> JoinExecution:
    """Classic hash join: build on the smaller intermediate, probe the other."""
    query.validate(left.schema, right.schema)
    metrics = ExecutionMetrics()
    li = _reduce_operand(left, query.left_predicate, metrics)
    ri = _reduce_operand(right, query.right_predicate, metrics)

    build, probe = (li, ri) if len(li) <= len(ri) else (ri, li)
    metrics.hash_operations += len(build) + len(probe)

    lpos = left.schema.position(query.left_column)
    rpos = right.schema.position(query.right_column)
    pairs = _match_pairs(li, ri, lpos, rpos)
    metrics.tuples_evaluated += len(pairs)

    result = _project_join(left, right, query, pairs)
    metrics.tuples_output = result.cardinality
    return JoinExecution(
        result,
        metrics,
        _operand_info(left, len(li), "hash_join"),
        _operand_info(right, len(ri), "hash_join"),
        "hash_join",
    )


def naive_join(left: Table, right: Table, query: JoinQuery) -> ResultTable:
    """Reference nested-loops join used by correctness tests (no metrics)."""
    query.validate(left.schema, right.schema)
    lpos = left.schema.position(query.left_column)
    rpos = right.schema.position(query.right_column)
    pairs = []
    for lrow in left:
        if not query.left_predicate.evaluate(lrow, left.schema):
            continue
        for rrow in right:
            if not query.right_predicate.evaluate(rrow, right.schema):
                continue
            if lrow[lpos] == rrow[rpos]:
                pairs.append((lrow, rrow))
    return _project_join(left, right, query, pairs)
