"""A B+-tree keyed on scalar values, mapping keys to lists of row ids.

This backs both clustered and non-clustered indexes.  Duplicate keys are
supported (each leaf entry carries a list of row ids).  The tree exposes
its height so index access methods can charge one random page read per
level traversed, as real DBMS cost models do.

The implementation favours clarity over raw speed — node splits keep all
invariants explicit — but remains O(log n) per operation, which is plenty
for tables of a few hundred thousand rows.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional


class _Node:
    """Base node: a sorted list of keys.

    ``node_id`` is assigned by the owning tree in creation order, so it
    is deterministic across runs and processes given the same insertion
    sequence — the buffer pool uses it as the node's page identity.
    """

    __slots__ = ("keys", "node_id")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.node_id: int = -1

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError


class _Leaf(_Node):
    """Leaf node: keys[i] maps to values[i] (a list of row ids)."""

    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__()
        self.values: list[list[int]] = []
        self.next: Optional["_Leaf"] = None

    @property
    def is_leaf(self) -> bool:
        return True


class _Internal(_Node):
    """Internal node: children[i] holds keys < keys[i] <= children[i+1]."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return False


class BPlusTree:
    """B+-tree from keys to lists of row ids.

    Parameters
    ----------
    order:
        Maximum number of keys per node.  Splits occur when a node would
        exceed this.  Must be at least 3.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 3:
            raise ValueError("order must be at least 3")
        self.order = order
        self._next_node_id = 0
        self._root: _Node = self._register(_Leaf())
        self._height = 1
        self._num_keys = 0
        self._num_entries = 0

    def _register(self, node: _Node) -> _Node:
        """Assign the next deterministic node id (creation order)."""
        node.node_id = self._next_node_id
        self._next_node_id += 1
        return node

    # -- properties --------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of levels from root to leaf (leaf-only tree has height 1)."""
        return self._height

    @property
    def num_keys(self) -> int:
        """Number of distinct keys."""
        return self._num_keys

    def __len__(self) -> int:
        """Total number of (key, row id) entries including duplicates."""
        return self._num_entries

    # -- mutation -----------------------------------------------------------

    def insert(self, key: Any, row_id: int) -> None:
        """Insert one (key, row_id) entry; duplicate keys are appended."""
        split = self._insert(self._root, key, row_id)
        if split is not None:
            sep_key, right = split
            new_root = self._register(_Internal())
            new_root.keys = [sep_key]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert(self, node: _Node, key: Any, row_id: int):
        """Recursive insert; returns (separator, new right sibling) on split."""
        if node.is_leaf:
            leaf: _Leaf = node  # type: ignore[assignment]
            pos = bisect.bisect_left(leaf.keys, key)
            if pos < len(leaf.keys) and leaf.keys[pos] == key:
                leaf.values[pos].append(row_id)
                self._num_entries += 1
                return None
            leaf.keys.insert(pos, key)
            leaf.values.insert(pos, [row_id])
            self._num_keys += 1
            self._num_entries += 1
            if len(leaf.keys) > self.order:
                return self._split_leaf(leaf)
            return None

        internal: _Internal = node  # type: ignore[assignment]
        pos = bisect.bisect_right(internal.keys, key)
        split = self._insert(internal.children[pos], key, row_id)
        if split is None:
            return None
        sep_key, right = split
        internal.keys.insert(pos, sep_key)
        internal.children.insert(pos + 1, right)
        if len(internal.keys) > self.order:
            return self._split_internal(internal)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = self._register(_Leaf())
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = self._register(_Internal())
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_key, right

    # -- search ---------------------------------------------------------------

    def search(self, key: Any) -> list[int]:
        """Row ids for *key* (empty list when absent)."""
        leaf, pos = self._find_leaf(key)
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            return list(leaf.values[pos])
        return []

    def range_search(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row ids with keys in the interval [low, high] (bounds optional)."""
        return [rid for _, rid in self.range_items(low, high, low_inclusive, high_inclusive)]

    def range_items(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Any, int]]:
        """Iterate (key, row_id) pairs with keys in the interval, in key order."""
        if low is None:
            leaf = self._leftmost_leaf()
            pos = 0
        else:
            leaf, pos = self._find_leaf(low)
            if not low_inclusive:
                while leaf is not None:
                    if pos < len(leaf.keys) and leaf.keys[pos] == low:
                        pos += 1
                    break
        while leaf is not None:
            while pos < len(leaf.keys):
                key = leaf.keys[pos]
                if high is not None:
                    if key > high or (key == high and not high_inclusive):
                        return
                for rid in leaf.values[pos]:
                    yield key, rid
                pos += 1
            leaf = leaf.next
            pos = 0

    def items(self) -> Iterator[tuple[Any, int]]:
        """Iterate all (key, row_id) pairs in key order."""
        return self.range_items()

    def _find_leaf(self, key: Any) -> tuple[_Leaf, int]:
        """Locate the leaf and in-leaf position where *key* lives or would go."""
        node = self._root
        while not node.is_leaf:
            internal: _Internal = node  # type: ignore[assignment]
            pos = bisect.bisect_right(internal.keys, key)
            node = internal.children[pos]
        leaf: _Leaf = node  # type: ignore[assignment]
        return leaf, bisect.bisect_left(leaf.keys, key)

    def traversal_path(self, key: Any = None) -> list[int]:
        """Node ids visited root → leaf when descending toward *key*.

        ``key=None`` descends to the leftmost leaf (the entry point of a
        full-range scan).  The path length always equals :attr:`height`;
        the buffer pool charges one page per node on it.
        """
        path: list[int] = []
        node = self._root
        while not node.is_leaf:
            path.append(node.node_id)
            internal: _Internal = node  # type: ignore[assignment]
            pos = 0 if key is None else bisect.bisect_right(internal.keys, key)
            node = internal.children[pos]
        path.append(node.node_id)
        return path

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[union-attr]
        return node  # type: ignore[return-value]

    # -- invariant checking (used by property tests) ----------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any B+-tree invariant is violated."""
        depths: set[int] = set()
        self._check_node(self._root, None, None, 1, depths, is_root=True)
        assert len(depths) == 1, "leaves at different depths"
        assert depths == {self._height}, "tracked height disagrees with structure"
        keys = [k for k, _ in self.items()]
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(set(keys)) == len(keys) or True  # duplicates live in one entry
        distinct = len(dict.fromkeys(keys))
        assert distinct == self._num_keys, "key count mismatch"

    def _check_node(self, node, low, high, depth, depths, is_root=False) -> None:
        assert node.keys == sorted(node.keys), "node keys out of order"
        assert len(node.keys) <= self.order, "node overflow"
        for k in node.keys:
            if low is not None:
                assert k >= low, "key below subtree lower bound"
            if high is not None:
                assert k < high, "key above subtree upper bound"
        if node.is_leaf:
            depths.add(depth)
            assert len(node.keys) == len(node.values)
            return
        assert len(node.children) == len(node.keys) + 1, "fanout mismatch"
        if not is_root:
            assert len(node.keys) >= 1
        bounds = [low, *node.keys, high]
        for child, (lo, hi) in zip(node.children, zip(bounds[:-1], bounds[1:])):
            self._check_node(child, lo, hi, depth + 1, depths)
