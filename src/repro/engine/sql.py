"""A small SQL front end for the query shapes the engine supports.

Grammar (case-insensitive keywords)::

    query      := SELECT select_list FROM name [JOIN name ON colref = colref]
                  [WHERE disjunction]
    select_list := '*' | colref (',' colref)*
    colref      := name | name '.' name
    disjunction := conjunction (OR conjunction)*
    conjunction := negation (AND negation)*
    negation    := NOT negation | primary
    primary     := '(' disjunction ')' | colref op literal
    op          := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    literal     := integer | float | 'string'

For join queries, WHERE terms are attributed to operands: every
comparison (and every OR subtree) must reference columns of exactly one
table, since the engine models per-operand local selections.  Unqualified
column names are resolved against the supplied schemas and must be
unambiguous.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Optional

from .errors import SQLSyntaxError
from .predicate import And, Comparison, Not, Or, Predicate, TRUE
from .query import JoinQuery, Query, SelectQuery
from .schema import TableSchema

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
      (?P<float>\d+\.\d+)
    | (?P<int>\d+)
    | (?P<string>'(?:[^']|'')*')
    | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    | (?P<op><=|>=|!=|<>|=|<|>)
    | (?P<punct>[(),.*-])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "from",
    "where",
    "join",
    "on",
    "and",
    "or",
    "not",
    "order",
    "by",
    "asc",
    "desc",
    "limit",
}


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


def tokenize(sql: str) -> list[_Token]:
    """Tokenize *sql*, raising :class:`SQLSyntaxError` on junk."""
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            if sql[pos:].strip() == "":
                break
            raise SQLSyntaxError(f"unexpected character {sql[pos]!r}", pos)
        kind = match.lastgroup
        assert kind is not None
        value = match.group(kind)
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", value.lower(), match.start(kind)))
        else:
            tokens.append(_Token(kind, value, match.start(kind)))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str, schemas: Optional[Mapping[str, TableSchema]]) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.schemas = schemas or {}

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of query", len(self.sql))
        self.pos += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.value != word:
            raise SQLSyntaxError(f"expected {word.upper()}, got {token.value!r}", token.position)

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.value != char:
            raise SQLSyntaxError(f"expected {char!r}, got {token.value!r}", token.position)

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value == word:
            self.pos += 1
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.value == char:
            self.pos += 1
            return True
        return False

    def _expect_name(self) -> str:
        token = self._next()
        if token.kind != "name":
            raise SQLSyntaxError(f"expected a name, got {token.value!r}", token.position)
        return token.value

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Query:
        self._expect_keyword("select")
        star, columns = self._select_list()
        self._expect_keyword("from")
        left = self._expect_name()
        right = None
        join_left = join_right = None
        if self._accept_keyword("join"):
            right = self._expect_name()
            self._expect_keyword("on")
            join_left = self._colref()
            token = self._next()
            if token.kind != "op" or token.value != "=":
                raise SQLSyntaxError("join condition must be an equality", token.position)
            join_right = self._colref()
        where: Predicate = TRUE
        if self._accept_keyword("where"):
            where = self._disjunction()
        order_by = self._order_by_clause(left)
        limit = self._limit_clause()
        trailing = self._peek()
        if trailing is not None:
            raise SQLSyntaxError(f"trailing input: {trailing.value!r}", trailing.position)

        if right is None:
            cols = () if star else tuple(c[1] if c[0] is None else c[1] for c in columns)
            self._check_unary_qualifiers(left, columns)
            return SelectQuery(left, cols, where, order_by=order_by, limit=limit)
        if order_by or limit is not None:
            raise SQLSyntaxError("ORDER BY / LIMIT are not supported on join queries")
        return self._build_join(left, right, star, columns, join_left, join_right, where)

    def _order_by_clause(self, table: str) -> tuple[tuple[str, bool], ...]:
        if not self._accept_keyword("order"):
            return ()
        self._expect_keyword("by")
        terms = []
        while True:
            qualifier, column = self._colref()
            if qualifier is not None and qualifier != table:
                raise SQLSyntaxError(
                    f"ORDER BY qualifier {qualifier!r} does not match FROM table"
                )
            ascending = True
            if self._accept_keyword("desc"):
                ascending = False
            else:
                self._accept_keyword("asc")
            terms.append((column, ascending))
            if not self._accept_punct(","):
                break
        return tuple(terms)

    def _limit_clause(self) -> Optional[int]:
        if not self._accept_keyword("limit"):
            return None
        token = self._next()
        if token.kind != "int":
            raise SQLSyntaxError(
                f"LIMIT needs an integer, got {token.value!r}", token.position
            )
        return int(token.value)

    def _select_list(self):
        if self._accept_punct("*"):
            return True, []
        columns = [self._colref()]
        while self._accept_punct(","):
            columns.append(self._colref())
        return False, columns

    def _colref(self) -> tuple[Optional[str], str]:
        """Parse ``name`` or ``table.name`` → (qualifier | None, column)."""
        first = self._expect_name()
        if self._accept_punct("."):
            return first, self._expect_name()
        return None, first

    def _disjunction(self) -> Predicate:
        node = self._conjunction()
        while self._accept_keyword("or"):
            node = Or(node, self._conjunction())
        return node

    def _conjunction(self) -> Predicate:
        node = self._negation()
        while self._accept_keyword("and"):
            node = And(node, self._negation())
        return node

    def _negation(self) -> Predicate:
        if self._accept_keyword("not"):
            return Not(self._negation())
        return self._primary()

    def _primary(self) -> Predicate:
        if self._accept_punct("("):
            node = self._disjunction()
            self._expect_punct(")")
            return node
        qualifier, column = self._colref()
        token = self._next()
        if token.kind != "op":
            raise SQLSyntaxError(
                f"expected comparison operator, got {token.value!r}", token.position
            )
        op = "!=" if token.value == "<>" else token.value
        value = self._literal()
        name = f"{qualifier}.{column}" if qualifier else column
        return Comparison(name, op, value)

    def _literal(self):
        sign = 1
        if self._accept_punct("-"):
            sign = -1
        token = self._next()
        if token.kind == "int":
            return sign * int(token.value)
        if token.kind == "float":
            return sign * float(token.value)
        if token.kind == "string":
            if sign < 0:
                raise SQLSyntaxError("cannot negate a string literal", token.position)
            return token.value[1:-1].replace("''", "'")
        raise SQLSyntaxError(f"expected a literal, got {token.value!r}", token.position)

    # -- name resolution ----------------------------------------------------------

    def _check_unary_qualifiers(self, table, columns) -> None:
        for qualifier, _ in columns:
            if qualifier is not None and qualifier != table:
                raise SQLSyntaxError(f"qualifier {qualifier!r} does not match FROM table")

    def _build_join(self, left, right, star, columns, join_left, join_right, where) -> JoinQuery:
        resolve = _Resolver(left, right, self.schemas).resolve
        left_col = resolve(join_left, "join condition")
        right_col = resolve(join_right, "join condition")
        if left_col[0] == right_col[0]:
            raise SQLSyntaxError("join condition must relate the two tables")
        if left_col[0] == right:
            left_col, right_col = right_col, left_col
        out_cols: tuple[str, ...] = ()
        if not star:
            out_cols = tuple(
                "{}.{}".format(*resolve(c, "select list")) for c in columns
            )
        left_pred, right_pred = _split_join_predicate(where, left, right, resolve)
        return JoinQuery(
            left,
            right,
            left_col[1],
            right_col[1],
            out_cols,
            left_pred,
            right_pred,
        )


class _Resolver:
    """Resolve (qualifier, column) pairs against two operand schemas."""

    def __init__(self, left: str, right: str, schemas: Mapping[str, TableSchema]):
        self.left = left
        self.right = right
        self.schemas = schemas

    def resolve(self, colref: tuple[Optional[str], str], context: str) -> tuple[str, str]:
        qualifier, column = colref
        if qualifier is not None:
            if qualifier not in (self.left, self.right):
                raise SQLSyntaxError(
                    f"{context}: {qualifier!r} is not an operand table"
                )
            return qualifier, column
        owners = [
            t
            for t in (self.left, self.right)
            if t in self.schemas and column in self.schemas[t]
        ]
        if len(owners) == 1:
            return owners[0], column
        if len(owners) > 1:
            raise SQLSyntaxError(f"{context}: column {column!r} is ambiguous")
        raise SQLSyntaxError(
            f"{context}: cannot resolve column {column!r} "
            "(qualify it or provide schemas)"
        )


def _split_join_predicate(where: Predicate, left: str, right: str, resolve):
    """Attribute each top-level conjunct of *where* to one operand.

    Inside a conjunct all columns must belong to a single table; column
    names are rewritten to their unqualified form for per-table evaluation.
    """
    from .predicate import conjoin, conjuncts

    left_terms: list[Predicate] = []
    right_terms: list[Predicate] = []
    for term in conjuncts(where):
        owners = set()
        rewritten = _rewrite(term, resolve, owners)
        if len(owners) != 1:
            raise SQLSyntaxError(
                f"WHERE term {term} must reference exactly one operand table"
            )
        (owner,) = owners
        (left_terms if owner == left else right_terms).append(rewritten)
    return conjoin(left_terms), conjoin(right_terms)


def _rewrite(pred: Predicate, resolve, owners: set[str]) -> Predicate:
    """Strip qualifiers from column names, recording owning tables."""
    if isinstance(pred, Comparison):
        qualifier, _, column = pred.column.rpartition(".")
        table, column = resolve((qualifier or None, column), "WHERE clause")
        owners.add(table)
        return Comparison(column, pred.op, pred.value)
    if isinstance(pred, And):
        return And(_rewrite(pred.left, resolve, owners), _rewrite(pred.right, resolve, owners))
    if isinstance(pred, Or):
        return Or(_rewrite(pred.left, resolve, owners), _rewrite(pred.right, resolve, owners))
    if isinstance(pred, Not):
        return Not(_rewrite(pred.operand, resolve, owners))
    return pred


def parse_query(
    sql: str, schemas: Optional[Mapping[str, TableSchema]] = None
) -> Query:
    """Parse *sql* into a :class:`SelectQuery` or :class:`JoinQuery`.

    *schemas* (table name → schema) is required to resolve unqualified
    column names in join queries; unary queries never need it.
    """
    return _Parser(sql, schemas).parse()
