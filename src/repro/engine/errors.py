"""Exception hierarchy for the local relational engine.

Every error raised by :mod:`repro.engine` derives from :class:`EngineError`
so callers (e.g. the MDBS agent) can catch engine failures without
masking programming errors.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all errors raised by the local relational engine."""


class SchemaError(EngineError):
    """A table or column definition is invalid or inconsistent."""


class CatalogError(EngineError):
    """A referenced table, column, or index does not exist (or already does)."""


class TypeError_(EngineError):
    """A value does not match the declared column type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class QueryError(EngineError):
    """A query is malformed with respect to the schema it runs against."""


class SQLSyntaxError(QueryError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class ExecutionError(EngineError):
    """The executor hit an unrecoverable condition while running a plan."""
