"""A small relational DBMS substrate with simulated, contention-aware timing.

This package stands in for the paper's local database systems (Oracle 8.0
and DB2 5.0): heap/clustered tables, B+-tree indexes, the classic access
methods and join algorithms, a rule-based local optimizer, and a costing
layer that converts physical work into simulated elapsed time under the
current environment contention.
"""

from . import vectorize
from .access import clustered_index_scan, nonclustered_index_scan, seq_scan
from .btree import BPlusTree
from .buffer import (
    BUFFER_HIT_STATES,
    BufferPool,
    BufferPoolStats,
    hit_state_index,
    hit_state_label,
)
from .catalog import LocalCatalog
from .costing import ElapsedBreakdown, simulate_elapsed
from .database import LocalDatabase, QueryResult
from .errors import (
    CatalogError,
    EngineError,
    ExecutionError,
    QueryError,
    SQLSyntaxError,
    SchemaError,
)
from .index import Index, IndexKind
from .joins import (
    hash_join,
    index_nested_loop_join,
    naive_join,
    nested_loop_join,
    sort_merge_join,
)
from .metrics import AccessInfo, ExecutionMetrics
from .optimizer import JoinPlan, UnaryPlan, choose_join_plan, choose_unary_plan
from .pages import PageLayout
from .predicate import And, Comparison, KeyRange, Not, Or, Predicate, TRUE
from .profiles import DB2_LIKE, DBMSProfile, ORACLE_LIKE, get_profile
from .query import JoinQuery, Query, SelectQuery
from .schema import Column, TableSchema
from .sql import parse_query
from .table import ResultTable, Table
from .types import DataType

__all__ = [
    "AccessInfo",
    "And",
    "BPlusTree",
    "BUFFER_HIT_STATES",
    "BufferPool",
    "BufferPoolStats",
    "CatalogError",
    "Column",
    "Comparison",
    "DB2_LIKE",
    "DBMSProfile",
    "DataType",
    "ElapsedBreakdown",
    "EngineError",
    "ExecutionError",
    "ExecutionMetrics",
    "Index",
    "IndexKind",
    "JoinPlan",
    "JoinQuery",
    "KeyRange",
    "LocalCatalog",
    "LocalDatabase",
    "Not",
    "ORACLE_LIKE",
    "Or",
    "PageLayout",
    "Predicate",
    "Query",
    "QueryError",
    "QueryResult",
    "ResultTable",
    "SQLSyntaxError",
    "SchemaError",
    "SelectQuery",
    "Table",
    "TableSchema",
    "TRUE",
    "UnaryPlan",
    "choose_join_plan",
    "choose_unary_plan",
    "clustered_index_scan",
    "get_profile",
    "hash_join",
    "hit_state_index",
    "hit_state_label",
    "index_nested_loop_join",
    "naive_join",
    "nested_loop_join",
    "nonclustered_index_scan",
    "parse_query",
    "seq_scan",
    "simulate_elapsed",
    "sort_merge_join",
    "vectorize",
]
