"""Execution metrics: the physical work a plan performed.

Every access method reports what it did in terms of page I/O and CPU
operations.  :mod:`repro.engine.costing` turns these counters into a
simulated elapsed time under a DBMS profile and the current contention
level.  Keeping work-counting separate from time conversion is what lets
the same execution produce different elapsed times in different
environments — exactly the phenomenon the paper's method models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields


def sort_comparisons_for(n: int) -> int:
    """Comparison-count model for sorting *n* tuples (n log2 n)."""
    if n <= 1:
        return 0
    return int(n * math.ceil(math.log2(n)))


@dataclass
class ExecutionMetrics:
    """Physical work counters accumulated while executing a plan.

    With a :class:`~repro.engine.buffer.BufferPool` attached to the
    database, ``sequential_page_reads`` / ``random_page_reads`` count
    only *physical* reads (buffer misses); ``logical_page_reads`` counts
    every page touch and ``buffer_hits`` the touches served from memory.
    Without a pool the logical and physical counts coincide and
    ``buffer_hits`` stays 0, so all pre-buffer-pool accounting is
    unchanged.
    """

    #: Pages read sequentially (table scans, clustered range scans).
    sequential_page_reads: int = 0
    #: Pages read at random (index traversals, unclustered tuple fetches).
    random_page_reads: int = 0
    #: Every page touch, hit or miss.
    logical_page_reads: int = 0
    #: Page touches served from the buffer pool (no I/O charged).
    buffer_hits: int = 0
    #: Tuples fetched from storage.
    tuples_read: int = 0
    #: Tuples on which a predicate was evaluated.
    tuples_evaluated: int = 0
    #: Tuples placed in the result (projection + copy cost).
    tuples_output: int = 0
    #: Comparisons performed by sort operators.
    sort_comparisons: int = 0
    #: Hash-table build/probe operations.
    hash_operations: int = 0
    #: Tuples materialized into intermediate results.
    intermediate_tuples: int = 0

    def __add__(self, other: "ExecutionMetrics") -> "ExecutionMetrics":
        return ExecutionMetrics(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __iadd__(self, other: "ExecutionMetrics") -> "ExecutionMetrics":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @property
    def total_page_reads(self) -> int:
        """Physical page reads (the I/O the costing layer charges)."""
        return self.sequential_page_reads + self.random_page_reads

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of logical page reads served from the buffer pool."""
        if self.logical_page_reads == 0:
            return 0.0
        return self.buffer_hits / self.logical_page_reads

    def validate(self) -> None:
        """All counters must be non-negative."""
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"negative metric: {f.name}")


@dataclass(frozen=True)
class AccessInfo:
    """Globally observable facts about one operand's access.

    These feed the cost-model explanatory variables of the paper's
    Table 3: the *intermediate table* is the operand reduced by the
    index-servable part of its predicate (before residual filtering).
    """

    #: Access method actually used (e.g. ``"seq_scan"``).
    method: str
    #: Operand cardinality N_o.
    operand_cardinality: int
    #: Intermediate cardinality N_i (after sargable predicate).
    intermediate_cardinality: int
    #: Operand tuple length L_o (bytes).
    operand_tuple_length: int
