"""Logical query representations: single-table selections and two-way joins.

The paper's workloads consist of *unary* queries (select/project over one
table) and *join* queries (two tables, equijoin, with optional local
selections on each operand).  These two shapes are what the query
classification of §4.1 — inherited from the static query sampling method
— operates over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .errors import QueryError
from .predicate import Predicate, TRUE
from .schema import TableSchema


@dataclass(frozen=True)
class SelectQuery:
    """``SELECT <columns> FROM <table> WHERE <predicate>
    [ORDER BY <columns>] [LIMIT <n>]``.

    An empty ``columns`` sequence means ``SELECT *``.  ``order_by``
    columns are (name, ascending) pairs; ``limit`` truncates the result
    after ordering.
    """

    table: str
    columns: tuple[str, ...] = ()
    predicate: Predicate = field(default_factory=lambda: TRUE)
    order_by: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None

    def __init__(
        self,
        table: str,
        columns: Sequence[str] = (),
        predicate: Predicate | None = None,
        order_by: Sequence[tuple[str, bool]] = (),
        limit: int | None = None,
    ) -> None:
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "predicate", predicate if predicate is not None else TRUE)
        object.__setattr__(self, "order_by", tuple(order_by))
        object.__setattr__(self, "limit", limit)
        if limit is not None and limit < 0:
            raise QueryError("LIMIT must be non-negative")

    def output_columns(self, schema: TableSchema) -> tuple[str, ...]:
        """Resolve the projection list (``*`` expands to all columns)."""
        return self.columns if self.columns else schema.column_names

    def validate(self, schema: TableSchema) -> None:
        """Check all referenced columns exist in *schema*."""
        if schema.name != self.table:
            raise QueryError(f"query targets {self.table}, schema is {schema.name}")
        for col in self.columns:
            if col not in schema:
                raise QueryError(f"unknown column in select list: {col}")
        for col, _ in self.order_by:
            if col not in schema:
                raise QueryError(f"unknown ORDER BY column: {col}")
        self.predicate.validate(schema)

    def __str__(self) -> str:
        cols = ", ".join(self.columns) if self.columns else "*"
        sql = f"SELECT {cols} FROM {self.table}"
        if str(self.predicate) != "TRUE":
            sql += f" WHERE {self.predicate}"
        if self.order_by:
            parts = [
                f"{col}" + ("" if ascending else " DESC")
                for col, ascending in self.order_by
            ]
            sql += " ORDER BY " + ", ".join(parts)
        if self.limit is not None:
            sql += f" LIMIT {self.limit}"
        return sql


@dataclass(frozen=True)
class JoinQuery:
    """A two-way equijoin with optional per-operand selections.

    ``SELECT <columns> FROM <left> JOIN <right>
      ON left.<left_column> = right.<right_column>
      WHERE <left_predicate on left> AND <right_predicate on right>``

    Output columns are qualified ``table.column`` names; an empty sequence
    selects every column of both operands.  Per-operand predicates are the
    *local selections* applied before (or during) the join — their reduced
    operands are the paper's "intermediate tables" (Table 3).
    """

    left: str
    right: str
    left_column: str
    right_column: str
    columns: tuple[str, ...] = ()
    left_predicate: Predicate = field(default_factory=lambda: TRUE)
    right_predicate: Predicate = field(default_factory=lambda: TRUE)

    def __init__(
        self,
        left: str,
        right: str,
        left_column: str,
        right_column: str,
        columns: Sequence[str] = (),
        left_predicate: Predicate | None = None,
        right_predicate: Predicate | None = None,
    ) -> None:
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "left_column", left_column)
        object.__setattr__(self, "right_column", right_column)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(
            self, "left_predicate", left_predicate if left_predicate is not None else TRUE
        )
        object.__setattr__(
            self,
            "right_predicate",
            right_predicate if right_predicate is not None else TRUE,
        )
        if left == right:
            raise QueryError("self-joins are not supported")

    def output_columns(
        self, left_schema: TableSchema, right_schema: TableSchema
    ) -> tuple[str, ...]:
        """Resolve qualified output columns."""
        if self.columns:
            return self.columns
        return tuple(
            [f"{self.left}.{c}" for c in left_schema.column_names]
            + [f"{self.right}.{c}" for c in right_schema.column_names]
        )

    def validate(self, left_schema: TableSchema, right_schema: TableSchema) -> None:
        """Check join columns, projections, and per-operand predicates."""
        if left_schema.name != self.left or right_schema.name != self.right:
            raise QueryError("schemas do not match the query's operand tables")
        if self.left_column not in left_schema:
            raise QueryError(f"unknown join column {self.left}.{self.left_column}")
        if self.right_column not in right_schema:
            raise QueryError(f"unknown join column {self.right}.{self.right_column}")
        lt = left_schema.column(self.left_column).dtype
        rt = right_schema.column(self.right_column).dtype
        if not lt.is_comparable_with(rt):
            raise QueryError(
                f"join columns have incomparable types: {lt.value} vs {rt.value}"
            )
        self.left_predicate.validate(left_schema)
        self.right_predicate.validate(right_schema)
        for qualified in self.columns:
            table, _, column = qualified.partition(".")
            if not column:
                raise QueryError(f"join select list must be qualified: {qualified!r}")
            if table == self.left:
                if column not in left_schema:
                    raise QueryError(f"unknown column {qualified}")
            elif table == self.right:
                if column not in right_schema:
                    raise QueryError(f"unknown column {qualified}")
            else:
                raise QueryError(f"column {qualified} names an unjoined table")

    def __str__(self) -> str:
        cols = ", ".join(self.columns) if self.columns else "*"
        sql = (
            f"SELECT {cols} FROM {self.left} JOIN {self.right} "
            f"ON {self.left}.{self.left_column} = {self.right}.{self.right_column}"
        )
        wheres = []
        if str(self.left_predicate) != "TRUE":
            wheres.append(str(self.left_predicate))
        if str(self.right_predicate) != "TRUE":
            wheres.append(str(self.right_predicate))
        if wheres:
            sql += " WHERE " + " AND ".join(wheres)
        return sql


#: Either query shape.
Query = SelectQuery | JoinQuery
