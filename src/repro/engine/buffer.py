"""An LRU buffer pool: the engine's simulated memory hierarchy.

Without a buffer pool every page access costs a full (simulated) I/O, so
cost behaviour depends only on the query and the contention level.  With
one, repeated scans, index traversals, and join inner relations hit
memory on re-access — cost behaviour becomes *workload-history-
dependent*, which is exactly the kind of qualitative contention factor
the paper's multi-states method is built to absorb (the probing query
runs through the same pool, so its sampled cost reflects the cache
state; see DESIGN.md, "Memory hierarchy & vectorized execution").

Eviction is LRU refined by a *windowed refcount* (in the spirit of
mongodb-d4's ``fastlrubufferusingwindow``): a sliding window of the most
recent accesses keeps a per-page reference count, and eviction scans the
:data:`EVICT_SCAN` least-recently-used candidates for the one with the
fewest references in the window — a page touched often within the window
survives even when an unrelated scan has pushed it toward the cold end.
Ties break toward the least recently used page, so the whole policy is a
pure function of the access sequence (no clocks, no randomness, no
``id()``): two pools fed the same sequence always hold the same pages,
which is what makes parallel experiment runs byte-identical.

Page identity is a plain tuple key:

* ``("T", table_name, page_no)`` — heap/data pages;
* ``("I", index_name, node_id)`` — B+-tree nodes (node ids are assigned
  in creation order by the tree, so they too are deterministic).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Hashable, Iterable

#: Pages examined from the cold end of the LRU chain at eviction time.
EVICT_SCAN = 8

#: Default pool capacity in pages (4 MiB at the 8 KiB default page size).
DEFAULT_CAPACITY_PAGES = 512

#: Default sliding-window length (accesses) for the refcounts.
DEFAULT_WINDOW = 4096

#: Qualitative buffer-hit states, coldest first.  The thresholds below
#: map an observed hit rate onto these labels.
BUFFER_HIT_STATES: tuple[str, ...] = ("cold", "warm", "hot")

#: ``hit_rate < WARM_THRESHOLD`` is cold; ``< HOT_THRESHOLD`` warm.
WARM_THRESHOLD = 0.35
HOT_THRESHOLD = 0.70

PageKey = Hashable


def hit_state_label(hit_rate: float) -> str:
    """Map a hit rate in [0, 1] onto the qualitative state labels."""
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError("hit_rate must be in [0, 1]")
    if hit_rate < WARM_THRESHOLD:
        return BUFFER_HIT_STATES[0]
    if hit_rate < HOT_THRESHOLD:
        return BUFFER_HIT_STATES[1]
    return BUFFER_HIT_STATES[2]


def hit_state_index(hit_rate: float) -> int:
    """Ordinal of :func:`hit_state_label` (0 = cold)."""
    return BUFFER_HIT_STATES.index(hit_state_label(hit_rate))


@dataclass
class BufferPoolStats:
    """Cumulative counters over the pool's lifetime (or since reset)."""

    logical_reads: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.logical_reads if self.logical_reads else 0.0


class BufferPool:
    """A deterministic LRU page cache with windowed reference counts."""

    def __init__(
        self,
        capacity_pages: int = DEFAULT_CAPACITY_PAGES,
        window: int = DEFAULT_WINDOW,
        evict_scan: int = EVICT_SCAN,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be at least 1")
        if window < 1:
            raise ValueError("window must be at least 1")
        if evict_scan < 1:
            raise ValueError("evict_scan must be at least 1")
        self.capacity_pages = capacity_pages
        self.window = window
        self.evict_scan = evict_scan
        #: Resident pages in LRU order: first = least recently used.
        self._pages: OrderedDict[PageKey, None] = OrderedDict()
        #: Sliding window of the most recent accesses, oldest first.
        self._recent: deque[PageKey] = deque()
        #: Reference counts of pages inside the window.
        self._refcounts: dict[PageKey, int] = {}
        self.stats = BufferPoolStats()

    # -- core access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._pages

    def access(self, key: PageKey) -> bool:
        """Touch one page; returns True on a hit, False on a miss.

        A miss installs the page, evicting (if the pool is full) the
        candidate among the :attr:`evict_scan` least-recently-used
        resident pages with the smallest windowed refcount.
        """
        self.stats.logical_reads += 1
        self._note_access(key)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._pages) >= self.capacity_pages:
            self._evict_one()
        self._pages[key] = None
        return False

    def access_many(self, keys: Iterable[PageKey]) -> tuple[int, int]:
        """Touch *keys* in order; returns ``(hits, misses)``."""
        hits = misses = 0
        for key in keys:
            if self.access(key):
                hits += 1
            else:
                misses += 1
        return hits, misses

    def _note_access(self, key: PageKey) -> None:
        self._recent.append(key)
        self._refcounts[key] = self._refcounts.get(key, 0) + 1
        if len(self._recent) > self.window:
            old = self._recent.popleft()
            remaining = self._refcounts[old] - 1
            if remaining:
                self._refcounts[old] = remaining
            else:
                del self._refcounts[old]

    def _evict_one(self) -> None:
        """Drop the coldest of the first *evict_scan* LRU candidates.

        Deterministic: candidates are taken in LRU order, and the scan
        keeps the *first* minimum, so ties evict the least recently used.
        """
        victim: PageKey | None = None
        victim_refs = -1
        for i, key in enumerate(self._pages):
            if i >= self.evict_scan:
                break
            refs = self._refcounts.get(key, 0)
            if victim is None or refs < victim_refs:
                victim, victim_refs = key, refs
        assert victim is not None
        del self._pages[victim]
        self.stats.evictions += 1

    # -- management -------------------------------------------------------

    def clear(self) -> None:
        """Drop every resident page and the access window (stats remain)."""
        self._pages.clear()
        self._recent.clear()
        self._refcounts.clear()

    def reset_stats(self) -> None:
        self.stats = BufferPoolStats()

    def snapshot(self) -> dict:
        """Capture resident pages, window, and stats for a later rewind."""
        return {
            "pages": list(self._pages),
            "recent": list(self._recent),
            "refcounts": dict(self._refcounts),
            "stats": dataclasses.replace(self.stats),
        }

    def restore(self, state: dict) -> None:
        """Rewind to a state captured with :meth:`snapshot`."""
        self._pages = OrderedDict((key, None) for key in state["pages"])
        self._recent = deque(state["recent"])
        self._refcounts = dict(state["refcounts"])
        self.stats = dataclasses.replace(state["stats"])

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    def hit_state(self) -> str:
        """The pool's current qualitative buffer-hit state label."""
        return hit_state_label(self.hit_rate)

    def resident_keys(self) -> list[PageKey]:
        """Resident page keys in LRU order (coldest first) — for tests."""
        return list(self._pages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPool({len(self._pages)}/{self.capacity_pages} pages, "
            f"hit_rate={self.hit_rate:.2f})"
        )


def table_page_keys(table_name: str, page_numbers: Iterable[int]):
    """Page keys for the numbered data pages of *table_name*."""
    return (("T", table_name, p) for p in page_numbers)


def data_page_of(row_id: int, rows_per_page: int) -> int:
    """The data page holding *row_id* under a dense packing."""
    return row_id // rows_per_page


# ---------------------------------------------------------------------------
# Metric charging
#
# Access methods charge their page work through these two helpers so the
# pool-off path stays byte-identical to the pre-buffer-pool accounting
# (a plain count) while the pool-on path plays concrete page keys
# through the cache and charges I/O only for misses.
# ---------------------------------------------------------------------------


def charge_sequential_pages(
    metrics,
    pool: "BufferPool | None",
    table_name: str,
    num_pages: int,
    start_page: int = 0,
) -> None:
    """Charge a (partial) sequential sweep of a table's data pages."""
    metrics.logical_page_reads += num_pages
    if pool is None:
        metrics.sequential_page_reads += num_pages
        return
    for page in range(start_page, start_page + num_pages):
        if pool.access(("T", table_name, page)):
            metrics.buffer_hits += 1
        else:
            metrics.sequential_page_reads += 1


def charge_random_pages(
    metrics,
    pool: "BufferPool | None",
    keys: Iterable[PageKey] | None = None,
    count: int = 0,
) -> None:
    """Charge random page reads.

    Without a pool, ``count`` pages are charged directly (the classic
    amortized formulas).  With a pool, the concrete *keys* are played
    through the cache instead — repeat touches of a resident page become
    buffer hits, which subsumes the formulas' amortization.
    """
    if pool is None:
        metrics.random_page_reads += count
        metrics.logical_page_reads += count
        return
    assert keys is not None, "pool-backed charging needs concrete page keys"
    for key in keys:
        metrics.logical_page_reads += 1
        if pool.access(key):
            metrics.buffer_hits += 1
        else:
            metrics.random_page_reads += 1
