"""Table schemas: column definitions, widths, and derived statistics.

The paper's explanatory variables (Table 3) are all derived from schema
and catalog statistics visible at the global level: cardinalities, tuple
lengths, and their products (table lengths).  :class:`TableSchema` is the
single source of truth for tuple length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .errors import SchemaError
from .types import DataType, Row


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    dtype:
        Scalar :class:`~repro.engine.types.DataType`.
    width:
        Storage width in bytes.  Defaults to the type's natural width;
        wider STR columns let workloads vary tuple length, which the
        paper uses as a secondary explanatory variable.
    """

    name: str
    dtype: DataType
    width: int = 0

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.width == 0:
            object.__setattr__(self, "width", self.dtype.default_width)
        if self.width <= 0:
            raise SchemaError(f"column {self.name}: width must be positive")

    def validate(self, value: Any) -> Any:
        """Validate and coerce *value* for this column."""
        return self.dtype.validate(value)


class TableSchema:
    """An ordered collection of :class:`Column` objects with name lookup."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        if not columns:
            raise SchemaError(f"table {name}: at least one column is required")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name}: duplicate column names")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._index: dict[str, int] = {c.name: i for i, c in enumerate(columns)}

    # -- lookup ---------------------------------------------------------

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._index

    def __len__(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> Column:
        """Return the :class:`Column` called *name*."""
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise SchemaError(f"table {self.name}: no column {name!r}") from None

    def position(self, name: str) -> int:
        """Return the ordinal position of column *name* (0-based)."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"table {self.name}: no column {name!r}") from None

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    # -- derived statistics ----------------------------------------------

    @property
    def tuple_length(self) -> int:
        """Tuple length in bytes — the paper's ``tuple length of operand table``."""
        return sum(c.width for c in self.columns)

    def projected_tuple_length(self, column_names: Iterable[str]) -> int:
        """Tuple length of a projection — the paper's result tuple length."""
        return sum(self.column(n).width for n in column_names)

    # -- row handling -----------------------------------------------------

    def validate_row(self, row: Sequence[Any]) -> Row:
        """Validate a row against the schema, returning a canonical tuple."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"table {self.name}: row has {len(row)} values, "
                f"schema has {len(self.columns)} columns"
            )
        return tuple(c.validate(v) for c, v in zip(self.columns, row))

    def project(self, column_names: Sequence[str]) -> "TableSchema":
        """Schema of the projection of this table onto *column_names*."""
        return TableSchema(self.name, [self.column(n) for n in column_names])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.dtype.value}({c.width})" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"


@dataclass
class ColumnStatistics:
    """Per-column statistics kept in the local catalog.

    Used for selectivity estimation — the local optimizer needs these to
    pick access paths, exactly as a real DBMS would.  An optional
    equi-depth histogram (see :mod:`repro.engine.histogram`) refines
    range/equality estimates on skewed columns; when absent, estimation
    falls back to uniform interpolation over [minimum, maximum].
    """

    minimum: Any = None
    maximum: Any = None
    distinct_count: int = 0
    histogram: Any = None  # Optional[EquiDepthHistogram]

    @classmethod
    def from_values(
        cls, values: Iterable[Any], build_histogram: bool = False, buckets: int = 16
    ) -> "ColumnStatistics":
        """Compute statistics over *values* in one pass.

        With ``build_histogram=True`` (numeric columns only), an
        equi-depth histogram is attached as well.
        """
        minimum = None
        maximum = None
        distinct: set[Any] = set()
        collected: list[Any] = []
        for v in values:
            if minimum is None or v < minimum:
                minimum = v
            if maximum is None or v > maximum:
                maximum = v
            distinct.add(v)
            if build_histogram:
                collected.append(v)
        import numbers

        histogram = None
        if (
            build_histogram
            and collected
            and isinstance(minimum, numbers.Real)
            and not isinstance(minimum, bool)
        ):
            from .histogram import EquiDepthHistogram

            histogram = EquiDepthHistogram.build(collected, num_buckets=buckets)
        return cls(
            minimum=minimum,
            maximum=maximum,
            distinct_count=len(distinct),
            histogram=histogram,
        )


@dataclass
class TableStatistics:
    """Per-table statistics: cardinality plus per-column stats."""

    cardinality: int = 0
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        """Statistics for *name*, or empty statistics if never analyzed."""
        return self.columns.get(name, ColumnStatistics())
