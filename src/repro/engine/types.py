"""Value types supported by the local relational engine.

The engine is deliberately small: three scalar types cover everything the
paper's workloads need (tables of random numbers plus string payload
columns used to vary tuple length).  Each type carries a fixed on-disk
width so that table and index sizes — and therefore I/O costs — are well
defined, mirroring how the paper's cost variables (tuple length, table
length) are computed from catalog statistics.
"""

from __future__ import annotations

import enum
from typing import Any

from .errors import TypeError_


class DataType(enum.Enum):
    """Scalar column types."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    @property
    def python_type(self) -> type:
        """The Python type used to store values of this data type."""
        return _PYTHON_TYPES[self]

    @property
    def default_width(self) -> int:
        """Default storage width in bytes (used when the column omits one)."""
        return _DEFAULT_WIDTHS[self]

    def validate(self, value: Any) -> Any:
        """Coerce *value* to this type, raising :class:`TypeError_` on mismatch.

        Integers are accepted for FLOAT columns (widening), but floats are
        rejected for INT columns to catch accidental truncation.
        """
        if value is None:
            raise TypeError_(f"NULL values are not supported (type {self.value})")
        if self is DataType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError_(f"expected int, got {type(value).__name__}: {value!r}")
            return value
        if self is DataType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError_(f"expected float, got {type(value).__name__}: {value!r}")
            return float(value)
        if isinstance(value, str):
            return value
        raise TypeError_(f"expected str, got {type(value).__name__}: {value!r}")

    def is_comparable_with(self, other: "DataType") -> bool:
        """Whether values of this type order against values of *other*."""
        numeric = {DataType.INT, DataType.FLOAT}
        if self in numeric and other in numeric:
            return True
        return self is other


_PYTHON_TYPES = {
    DataType.INT: int,
    DataType.FLOAT: float,
    DataType.STR: str,
}

_DEFAULT_WIDTHS = {
    DataType.INT: 8,
    DataType.FLOAT: 8,
    DataType.STR: 32,
}

#: A row is a plain tuple of scalar values, positionally matching the schema.
Row = tuple
