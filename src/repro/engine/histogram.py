"""Equi-depth histograms for selectivity estimation.

The min/max/distinct statistics in :mod:`repro.engine.schema` assume
uniform value distributions.  Real catalogs keep histograms; so do we:
an equi-depth (equi-height) histogram stores bucket boundaries such that
every bucket holds (approximately) the same number of rows, which keeps
relative estimation error bounded even for skewed columns.

When a histogram is attached to a column's statistics, range and
equality selectivities interpolate within buckets instead of across the
whole [min, max] span.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from . import vectorize


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth histogram over one numeric column.

    ``boundaries`` has ``num_buckets + 1`` entries: bucket i covers
    [boundaries[i], boundaries[i+1]) except the last, which is closed.
    ``counts[i]`` is the number of rows in bucket i; ``distinct[i]`` the
    number of distinct values in it (for equality estimates).
    """

    boundaries: tuple[float, ...]
    counts: tuple[int, ...]
    distinct: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.counts) + 1:
            raise ValueError("boundaries must have one more entry than counts")
        if len(self.counts) != len(self.distinct):
            raise ValueError("counts and distinct must align")
        if list(self.boundaries) != sorted(self.boundaries):
            raise ValueError("boundaries must be non-decreasing")
        if any(c < 0 for c in self.counts):
            raise ValueError("counts must be non-negative")
        # Exclusive prefix sums of `counts`, so estimate_le is O(log B)
        # instead of O(B) per call.  Not a dataclass field (the frozen
        # eq/repr/hash contract stays on the three logical fields), so it
        # is installed around the freeze.
        prefix = [0]
        for c in self.counts:
            prefix.append(prefix[-1] + c)
        object.__setattr__(self, "_rows_before", tuple(prefix))

    @property
    def num_buckets(self) -> int:
        return len(self.counts)

    @property
    def total_rows(self) -> int:
        return self._rows_before[-1]

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, values: Sequence, num_buckets: int = 16) -> "EquiDepthHistogram":
        """Build from a column's values (numeric).

        Dispatches to the numpy path unless the engine is in scalar
        mode; both produce identical histograms (same boundaries,
        counts, and distinct tuples — pure Python floats/ints).
        """
        if num_buckets < 1:
            raise ValueError("num_buckets must be at least 1")
        if vectorize.enabled():
            return cls._build_vectorized(values, num_buckets)
        return cls._build_scalar(values, num_buckets)

    @classmethod
    def _build_scalar(cls, values: Sequence, num_buckets: int) -> "EquiDepthHistogram":
        """Row-at-a-time reference implementation."""
        data = sorted(float(v) for v in values)
        if not data:
            raise ValueError("cannot build a histogram from no values")
        n = len(data)
        num_buckets = min(num_buckets, n)
        boundaries = [data[0]]
        counts = []
        distinct = []
        start = 0
        for b in range(num_buckets):
            end = round((b + 1) * n / num_buckets)
            end = max(end, start + 1)
            # Never split a run of duplicates across buckets: extend the
            # bucket to cover the whole run so boundaries stay honest.
            while end < n and data[end] == data[end - 1]:
                end += 1
            bucket = data[start:end]
            counts.append(len(bucket))
            distinct.append(len(set(bucket)))
            boundaries.append(bucket[-1] if end >= n else data[end])
            start = end
            if start >= n:
                break
        boundaries[-1] = data[-1]
        return cls(tuple(boundaries), tuple(counts), tuple(distinct))

    @classmethod
    def _build_vectorized(
        cls, values: Sequence, num_buckets: int
    ) -> "EquiDepthHistogram":
        """numpy-batched build, byte-identical to :meth:`_build_scalar`.

        The sort and the per-bucket distinct counts dominate the scalar
        cost; both move to numpy.  The duplicate-run extension becomes a
        ``searchsorted`` for the end of the run instead of a value-at-a-
        time walk.
        """
        data = np.sort(np.fromiter((float(v) for v in values), dtype=np.float64))
        if data.size == 0:
            raise ValueError("cannot build a histogram from no values")
        n = int(data.size)
        num_buckets = min(num_buckets, n)
        boundaries = [float(data[0])]
        counts: list[int] = []
        distinct: list[int] = []
        start = 0
        for b in range(num_buckets):
            end = round((b + 1) * n / num_buckets)
            end = max(end, start + 1)
            if end < n and data[end] == data[end - 1]:
                # Jump past the whole duplicate run in one shot.
                end = int(np.searchsorted(data, data[end - 1], side="right"))
            bucket = data[start:end]
            counts.append(int(bucket.size))
            distinct.append(1 + int(np.count_nonzero(bucket[1:] != bucket[:-1])))
            boundaries.append(float(bucket[-1] if end >= n else data[end]))
            start = end
            if start >= n:
                break
        boundaries[-1] = float(data[-1])
        return cls(tuple(boundaries), tuple(counts), tuple(distinct))

    # -- estimation -------------------------------------------------------------

    def _bucket_of(self, value: float) -> int:
        """Bucket index containing *value*, clamped to [0, num_buckets-1]."""
        idx = bisect.bisect_right(self.boundaries, value) - 1
        return min(max(idx, 0), self.num_buckets - 1)

    def estimate_le(self, value: float) -> float:
        """Estimated fraction of rows with column <= value.

        Linear interpolation within the bucket, floored by the bucket's
        per-distinct-value mass so that an atom (a duplicate run) sitting
        at the bucket's left edge is never undercounted.
        """
        total = self.total_rows
        if total == 0:
            return 0.0
        if value < self.boundaries[0]:
            return 0.0
        if value >= self.boundaries[-1]:
            return 1.0
        idx = self._bucket_of(value)
        rows_before = self._rows_before[idx]
        lo = self.boundaries[idx]
        hi = self.boundaries[idx + 1]
        if hi > lo:
            within = (value - lo) / (hi - lo)
        else:
            within = 1.0
        in_bucket = within * self.counts[idx]
        atom = self.counts[idx] / max(1, self.distinct[idx])
        return (rows_before + max(in_bucket, atom)) / total

    def estimate_range(
        self,
        low: float | None,
        high: float | None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Estimated fraction of rows in the interval.

        Open/closed bounds are treated identically — continuous
        interpolation cannot distinguish them, and the error is at most
        one value's frequency.
        """
        hi_frac = 1.0 if high is None else self.estimate_le(high)
        lo_frac = 0.0 if low is None else self.estimate_le(low)
        if low is not None and low_inclusive:
            # Re-include the rows exactly at `low` (approximately).
            lo_frac = max(0.0, lo_frac - self.estimate_eq(low))
        return min(1.0, max(0.0, hi_frac - lo_frac))

    def estimate_eq(self, value: float) -> float:
        """Estimated fraction of rows equal to *value*."""
        total = self.total_rows
        if total == 0 or value < self.boundaries[0] or value > self.boundaries[-1]:
            return 0.0
        idx = self._bucket_of(value)
        d = max(1, self.distinct[idx])
        return (self.counts[idx] / d) / total
