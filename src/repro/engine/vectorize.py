"""The scalar/vectorized execution switch.

The engine's hot loops — predicate evaluation in scans, join operand
reduction and matching, histogram construction — exist twice: a
row-at-a-time pure-Python *scalar* path (the reference implementation)
and a numpy-batched *vectorized* path over columnar views of
:class:`~repro.engine.table.Table`.  Both produce byte-identical rows,
metrics, and statistics; a hypothesis property suite
(``tests/engine/test_vectorized_props.py``) pins them together.

Vectorized execution is the default.  Disable it globally with
:func:`set_enabled` (or the ``REPRO_SCALAR_ENGINE=1`` environment
variable, read once at import), or locally with :func:`force_scalar` —
the benchmark harness uses the context manager to measure both paths in
one process.

The flag is intentionally process-global rather than per-database:
the two paths are semantically identical, so the only reasons to switch
are benchmarking and debugging, and a single switch keeps every call
site (including module-level helpers with no database in scope) honest.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

_STATE = threading.local()

#: Import-time default: vectorized unless REPRO_SCALAR_ENGINE is set.
_DEFAULT = os.environ.get("REPRO_SCALAR_ENGINE", "") not in ("1", "true", "yes")


def enabled() -> bool:
    """Whether the vectorized hot paths are active on this thread."""
    return getattr(_STATE, "enabled", _DEFAULT)


def set_enabled(flag: bool) -> None:
    """Switch this thread between vectorized (True) and scalar (False)."""
    _STATE.enabled = bool(flag)


@contextmanager
def force_scalar():
    """Run the enclosed block on the scalar reference path."""
    previous = enabled()
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def force_vectorized():
    """Run the enclosed block on the vectorized path."""
    previous = enabled()
    set_enabled(True)
    try:
        yield
    finally:
        set_enabled(previous)
