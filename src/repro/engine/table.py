"""In-memory row tables with page accounting and catalog statistics."""

from __future__ import annotations

import numbers
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from .errors import SchemaError
from .histogram import EquiDepthHistogram
from .pages import PageLayout
from .schema import ColumnStatistics, TableSchema, TableStatistics
from .types import Row


class Table:
    """A heap (or clustered) table: schema + rows + statistics.

    Rows are stored in a Python list; the *physical order* of that list is
    meaningful — a clustered index keeps the rows sorted on its key column
    (see :meth:`cluster_on`), which is what makes clustered-index range
    scans cheap in the cost accounting.
    """

    def __init__(self, schema: TableSchema, layout: PageLayout | None = None) -> None:
        self.schema = schema
        self.layout = layout or PageLayout()
        self._rows: list[Row] = []
        self._stats: TableStatistics | None = None
        #: Columnar (numpy) views of the rows, built lazily for the
        #: vectorized hot paths and dropped on any mutation.
        self._column_arrays: dict[str, np.ndarray] | None = None
        #: Built equi-depth histograms keyed by (column, num_buckets),
        #: dropped on any mutation — building one re-sorts the column,
        #: so repeated ``analyze(build_histograms=True)`` calls must not
        #: pay it twice for unchanged data.
        self._histograms: dict[tuple[str, int], EquiDepthHistogram] = {}
        #: Name of the column the rows are physically sorted on, if any.
        self.clustered_on: str | None = None

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def cardinality(self) -> int:
        """Number of rows — the paper's ``size of operand table`` variable."""
        return len(self._rows)

    @property
    def tuple_length(self) -> int:
        return self.schema.tuple_length

    @property
    def num_pages(self) -> int:
        """Pages occupied by the table under the configured page layout."""
        return self.layout.pages_for(self.cardinality, self.tuple_length)

    @property
    def table_length(self) -> int:
        """Total bytes — the paper's ``operand table length`` (cardinality x tuple length)."""
        return self.cardinality * self.tuple_length

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def row(self, row_id: int) -> Row:
        """Fetch a row by id (its current physical position)."""
        return self._rows[row_id]

    def rows(self) -> Sequence[Row]:
        """The full row sequence (read-only by convention)."""
        return self._rows

    # -- mutation -------------------------------------------------------------

    def _invalidate_caches(self) -> None:
        """Drop every derived view after a mutation."""
        self._stats = None
        self._column_arrays = None
        self._histograms.clear()

    def insert(self, row: Sequence[Any]) -> int:
        """Validate and append one row; returns its row id."""
        validated = self.schema.validate_row(row)
        self._rows.append(validated)
        self._invalidate_caches()
        return len(self._rows) - 1

    def bulk_load(self, rows: Iterable[Sequence[Any]]) -> int:
        """Validate and append many rows; returns number inserted."""
        count = 0
        for row in rows:
            self._rows.append(self.schema.validate_row(row))
            count += 1
        self._invalidate_caches()
        return count

    def cluster_on(self, column_name: str) -> None:
        """Physically sort rows on *column_name* (clustered-index order).

        Row ids change; any existing index must be rebuilt afterwards —
        :meth:`repro.engine.database.LocalDatabase.create_index` handles
        that ordering for callers.
        """
        pos = self.schema.position(column_name)
        self._rows.sort(key=lambda r: r[pos])
        self.clustered_on = column_name
        self._invalidate_caches()

    # -- statistics ---------------------------------------------------------

    def analyze(
        self, build_histograms: bool = False, histogram_buckets: int = 16
    ) -> TableStatistics:
        """(Re)compute and cache catalog statistics for all columns.

        With ``build_histograms=True``, numeric columns additionally get
        equi-depth histograms for sharper selectivity estimation.
        Histograms come from the per-table cache, so re-analyzing an
        unchanged table never re-sorts its columns.
        """
        stats = TableStatistics(cardinality=self.cardinality)
        for i, col in enumerate(self.schema.columns):
            col_stats = ColumnStatistics.from_values(r[i] for r in self._rows)
            if (
                build_histograms
                and self._rows
                and isinstance(col_stats.minimum, numbers.Real)
                and not isinstance(col_stats.minimum, bool)
            ):
                col_stats.histogram = self.histogram_for(col.name, histogram_buckets)
            stats.columns[col.name] = col_stats
        self._stats = stats
        return stats

    def histogram_for(self, column_name: str, num_buckets: int = 16) -> EquiDepthHistogram:
        """The column's equi-depth histogram, built once per (column, buckets).

        Cached until the table mutates; building sorts the full column,
        so every call site shares the same built artifact.
        """
        key = (column_name, num_buckets)
        hist = self._histograms.get(key)
        if hist is None:
            hist = EquiDepthHistogram.build(
                self.column_values(column_name), num_buckets=num_buckets
            )
            self._histograms[key] = hist
        return hist

    @property
    def statistics(self) -> TableStatistics:
        """Cached statistics, computing them on first access."""
        if self._stats is None:
            self.analyze()
        assert self._stats is not None
        return self._stats

    def column_values(self, column_name: str) -> list[Any]:
        """All values of one column, in physical row order."""
        pos = self.schema.position(column_name)
        return [r[pos] for r in self._rows]

    def column_array(self, column_name: str) -> np.ndarray:
        """Columnar (numpy) view of one column, cached until mutation.

        INT columns become int64, FLOAT float64, STR fixed-width
        unicode — all dtypes whose comparison semantics match Python's
        row-at-a-time comparisons, which is what keeps the vectorized
        predicate path byte-identical to the scalar reference.
        """
        if self._column_arrays is None:
            self._column_arrays = {}
        array = self._column_arrays.get(column_name)
        if array is None:
            pos = self.schema.position(column_name)
            try:
                array = np.array([r[pos] for r in self._rows])
            except (OverflowError, ValueError):
                # e.g. integers beyond int64: keep an object array, whose
                # dtype kind makes the batch paths fall back to scalar.
                array = np.array([r[pos] for r in self._rows], dtype=object)
            self._column_arrays[column_name] = array
        return array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name}, {self.cardinality} rows, {self.num_pages} pages)"


class ResultTable:
    """A lightweight materialized query result.

    Carries just enough structure for the cost-model variables: result
    cardinality and result tuple length.
    """

    def __init__(self, column_names: Sequence[str], tuple_length: int, rows: list[Row]):
        if len(set(column_names)) != len(column_names):
            raise SchemaError("duplicate column names in result")
        self.column_names = tuple(column_names)
        self.tuple_length = tuple_length
        self.rows = rows

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    @property
    def table_length(self) -> int:
        return self.cardinality * self.tuple_length

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)
