"""The local catalog: tables and indexes of one local database system."""

from __future__ import annotations

from typing import Iterable

from .errors import CatalogError
from .index import Index
from .table import Table


class LocalCatalog:
    """Name-keyed registry of tables and their indexes."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, Index] = {}

    # -- tables ---------------------------------------------------------

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name} already exists")
        self._tables[table.name] = table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"no such table: {name}")
        del self._tables[name]
        for index_name in [n for n, i in self._indexes.items() if i.table.name == name]:
            del self._indexes[index_name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no such table: {name}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- indexes -----------------------------------------------------------

    def add_index(self, index: Index) -> None:
        if index.name in self._indexes:
            raise CatalogError(f"index {index.name} already exists")
        if index.table.name not in self._tables:
            raise CatalogError(f"index {index.name} references unknown table")
        self._indexes[index.name] = index

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise CatalogError(f"no such index: {name}")
        del self._indexes[name]

    def index(self, name: str) -> Index:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"no such index: {name}") from None

    def indexes_for(self, table_name: str) -> list[Index]:
        """All indexes on *table_name* (order: by index name, stable)."""
        return [
            self._indexes[n]
            for n in sorted(self._indexes)
            if self._indexes[n].table.name == table_name
        ]

    def index_on(self, table_name: str, column_name: str) -> Index | None:
        """An index on *table_name.column_name*, if one exists."""
        for index in self.indexes_for(table_name):
            if index.column_name == column_name:
                return index
        return None
