"""Secondary and clustered indexes over :class:`~repro.engine.table.Table`.

An index is a B+-tree on one column.  Two kinds exist:

* **clustered** — the table's rows are physically sorted on the key, so a
  range scan touches only the pages holding qualifying rows;
* **non-clustered** — row ids point anywhere in the heap, so each
  qualifying tuple costs (up to) one random page read, moderated by the
  *clustering ratio* (fraction of index-order-adjacent rows that happen to
  share a page).  The paper lists the index clustering ratio among the
  occasionally-changing factors; it is measured, not assumed.
"""

from __future__ import annotations

import enum
from typing import Any

from .btree import BPlusTree
from .errors import CatalogError
from .table import Table


class IndexKind(enum.Enum):
    CLUSTERED = "clustered"
    NONCLUSTERED = "nonclustered"


class Index:
    """A single-column B+-tree index."""

    def __init__(
        self,
        name: str,
        table: Table,
        column_name: str,
        kind: IndexKind,
        order: int = 64,
    ) -> None:
        if column_name not in table.schema:
            raise CatalogError(
                f"index {name}: table {table.name} has no column {column_name}"
            )
        if kind is IndexKind.CLUSTERED and table.clustered_on != column_name:
            raise CatalogError(
                f"index {name}: table {table.name} is not clustered on {column_name}"
            )
        self.name = name
        self.table = table
        self.column_name = column_name
        self.kind = kind
        self._tree = BPlusTree(order=order)
        self._clustering_ratio: float | None = None
        self._build()

    def _build(self) -> None:
        pos = self.table.schema.position(self.column_name)
        for row_id, row in enumerate(self.table.rows()):
            self._tree.insert(row[pos], row_id)

    # -- lookups ------------------------------------------------------------

    @property
    def height(self) -> int:
        """B+-tree height — charged as random I/Os per traversal."""
        return self._tree.height

    def lookup(self, key: Any) -> list[int]:
        """Row ids matching *key* exactly."""
        return self._tree.search(key)

    def range_lookup(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row ids with key in the given interval, in key order."""
        return self._tree.range_search(low, high, low_inclusive, high_inclusive)

    def traversal_page_keys(self, key: Any = None) -> list[tuple]:
        """Buffer-pool page keys of one root→leaf traversal toward *key*.

        One key per tree level (``len == height``); repeated traversals
        share the upper levels, which is why a warm pool makes index
        probes nearly free.
        """
        return [("I", self.name, node) for node in self._tree.traversal_path(key)]

    # -- physical statistics -----------------------------------------------------

    def clustering_ratio(self) -> float:
        """Fraction of index-order-adjacent row pairs that share a page.

        1.0 for a freshly clustered index; near 0 for an index over a
        randomly ordered heap with many pages.  Computed once per build
        (the index is rebuilt whenever the table changes).
        """
        if self.kind is IndexKind.CLUSTERED:
            return 1.0
        if self._clustering_ratio is not None:
            return self._clustering_ratio
        rows_per_page = self.table.layout.rows_per_page(self.table.tuple_length)
        ids = [rid for _, rid in self._tree.items()]
        if len(ids) < 2:
            self._clustering_ratio = 1.0
            return 1.0
        same_page = sum(
            1
            for a, b in zip(ids, ids[1:])
            if a // rows_per_page == b // rows_per_page
        )
        self._clustering_ratio = same_page / (len(ids) - 1)
        return self._clustering_ratio

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Index({self.name} on {self.table.name}.{self.column_name}, "
            f"{self.kind.value}, height={self.height})"
        )
