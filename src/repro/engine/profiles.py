"""DBMS cost profiles: per-operation time constants for a local engine.

The paper runs the same workloads on Oracle 8.0 and DB2 5.0 and derives
*different* cost models for each, because the systems spend different
amounts of time per page read, per tuple, per comparison.  We reproduce
that diversity with two profiles whose constants differ in level and in
ratio (e.g. the DB2-like profile has cheaper sequential I/O but more
per-query initialization).  Values are in (simulated) seconds and are
loosely calibrated so that the paper's table sizes produce costs in the
seconds-to-minutes range, matching Figures 4–9.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DBMSProfile:
    """Per-operation time constants for one local DBMS."""

    name: str
    #: Fixed per-query startup (optimizer, disk-head positioning, ...).
    t_init: float
    #: Per sequential page read.
    t_seq_page: float
    #: Per random page read.
    t_rand_page: float
    #: Per tuple fetched from a page into the executor.
    t_tuple_read: float
    #: Per predicate evaluation on a tuple.
    t_tuple_eval: float
    #: Per result tuple projected/copied out.
    t_tuple_out: float
    #: Per sort comparison.
    t_sort_cmp: float
    #: Per hash build/probe operation.
    t_hash_op: float

    def validate(self) -> None:
        for field_name in (
            "t_init",
            "t_seq_page",
            "t_rand_page",
            "t_tuple_read",
            "t_tuple_eval",
            "t_tuple_out",
            "t_sort_cmp",
            "t_hash_op",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{self.name}: {field_name} must be non-negative")


#: An Oracle-8.0-like profile: fast scans, relatively costly per-tuple CPU.
ORACLE_LIKE = DBMSProfile(
    name="oracle_like",
    t_init=0.05,
    t_seq_page=0.0009,
    t_rand_page=0.009,
    t_tuple_read=1.1e-5,
    t_tuple_eval=6.0e-6,
    t_tuple_out=2.2e-5,
    t_sort_cmp=1.4e-6,
    t_hash_op=2.5e-6,
)

#: A DB2-5.0-like profile: higher startup, cheaper sequential I/O,
#: pricier random I/O (smaller buffer pool assumed).
DB2_LIKE = DBMSProfile(
    name="db2_like",
    t_init=0.12,
    t_seq_page=0.0007,
    t_rand_page=0.012,
    t_tuple_read=0.9e-5,
    t_tuple_eval=8.0e-6,
    t_tuple_out=1.6e-5,
    t_sort_cmp=1.8e-6,
    t_hash_op=2.0e-6,
)

_BUILTIN = {p.name: p for p in (ORACLE_LIKE, DB2_LIKE)}


def get_profile(name: str) -> DBMSProfile:
    """Look up a built-in profile by name."""
    try:
        return _BUILTIN[name]
    except KeyError:
        raise KeyError(
            f"unknown DBMS profile {name!r}; available: {sorted(_BUILTIN)}"
        ) from None
