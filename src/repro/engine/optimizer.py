"""Local access-path selection.

Each local DBS chooses its own plans (local autonomy!).  The rules here
are deliberately simple and *deterministic*, because the paper's query
classification (§4.1) works by predicting, from globally visible
information, which access method a local system will "most likely"
employ — classification and optimizer must agree for the per-class cost
models to be homogeneous.

Unary rules (first match wins):

1. a clustered index whose column has a bounded sargable range
   → clustered index scan;
2. a non-clustered index whose column has a bounded sargable range with
   estimated selectivity below :data:`NONCLUSTERED_SELECTIVITY_LIMIT`
   → non-clustered index scan (the cheapest-selectivity index wins);
3. otherwise → sequential scan.

Join rules:

1. both join columns carry clustered indexes → sort-merge join (inputs
   already sorted);
2. one operand's join column carries an index and the other operand's
   estimated intermediate is below :data:`INLJ_OUTER_FRACTION` of the
   indexed table's cardinality → index nested-loop join probing it;
3. otherwise → hash join (all joins in this workload are equijoins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .access import (
    UnaryExecution,
    clustered_index_scan,
    nonclustered_index_scan,
    seq_scan,
)
from .buffer import BufferPool
from .index import Index, IndexKind
from .joins import (
    JoinExecution,
    hash_join,
    index_nested_loop_join,
    nested_loop_join,
    sort_merge_join,
)
from .predicate import Comparison, extract_key_range
from .query import JoinQuery, SelectQuery
from .table import Table

#: A non-clustered index is only worth using below this selectivity.
NONCLUSTERED_SELECTIVITY_LIMIT = 0.15

#: INLJ wins when the outer intermediate is at most this fraction of the
#: indexed (inner) table's cardinality.
INLJ_OUTER_FRACTION = 0.10


@dataclass(frozen=True)
class UnaryPlan:
    """Chosen access path for a unary query."""

    method: str
    index: Optional[Index] = None

    def execute(
        self, table: Table, query: SelectQuery, pool: BufferPool | None = None
    ) -> UnaryExecution:
        if self.method == "seq_scan":
            return seq_scan(table, query, pool)
        if self.method == "clustered_index_scan":
            assert self.index is not None
            return clustered_index_scan(table, self.index, query, pool)
        if self.method == "nonclustered_index_scan":
            assert self.index is not None
            return nonclustered_index_scan(table, self.index, query, pool)
        raise ValueError(f"unknown unary method {self.method!r}")


@dataclass(frozen=True)
class JoinPlan:
    """Chosen join strategy.

    ``swapped`` records that the planner flipped the operands so the
    indexed table became the inner of an index nested-loop join.
    """

    method: str
    inner_index: Optional[Index] = None
    swapped: bool = False

    def execute(
        self,
        left: Table,
        right: Table,
        query: JoinQuery,
        pool: BufferPool | None = None,
    ) -> JoinExecution:
        if self.swapped:
            left, right, query = _swap(left, right, query)
        if self.method == "hash_join":
            return hash_join(left, right, query, pool)
        if self.method == "sort_merge_join":
            return sort_merge_join(left, right, query, pool)
        if self.method == "nested_loop_join":
            return nested_loop_join(left, right, query, pool)
        if self.method == "index_nested_loop_join":
            assert self.inner_index is not None
            return index_nested_loop_join(left, right, query, self.inner_index, pool)
        raise ValueError(f"unknown join method {self.method!r}")


def _swap(left: Table, right: Table, query: JoinQuery):
    """Mirror a join query, preserving the original output column order."""
    columns = query.output_columns(left.schema, right.schema)
    mirrored = JoinQuery(
        query.right,
        query.left,
        query.right_column,
        query.left_column,
        columns,
        query.right_predicate,
        query.left_predicate,
    )
    return right, left, mirrored


def _selectivity_for_range(table: Table, query: SelectQuery, column: str) -> float:
    """Estimated selectivity of the sargable range on *column*."""
    key_range, _ = extract_key_range(query.predicate, column)
    if key_range is None or not key_range.is_bounded:
        return 1.0
    stats = table.statistics
    selectivity = 1.0
    if key_range.low is not None:
        op = ">=" if key_range.low_inclusive else ">"
        selectivity *= Comparison(column, op, key_range.low).selectivity(stats)
    if key_range.high is not None:
        op = "<=" if key_range.high_inclusive else "<"
        selectivity *= Comparison(column, op, key_range.high).selectivity(stats)
    if key_range.is_point:
        selectivity = Comparison(column, "=", key_range.low).selectivity(stats)
    return selectivity


def choose_unary_plan(
    table: Table, indexes: Sequence[Index], query: SelectQuery
) -> UnaryPlan:
    """Pick the access path for *query* over *table*."""
    clustered_candidates = []
    nonclustered_candidates = []
    for index in indexes:
        key_range, _ = extract_key_range(query.predicate, index.column_name)
        if key_range is None or not key_range.is_bounded:
            continue
        selectivity = _selectivity_for_range(table, query, index.column_name)
        if index.kind is IndexKind.CLUSTERED:
            clustered_candidates.append((selectivity, index))
        elif selectivity <= NONCLUSTERED_SELECTIVITY_LIMIT:
            nonclustered_candidates.append((selectivity, index))
    if clustered_candidates:
        _, best = min(clustered_candidates, key=lambda pair: pair[0])
        return UnaryPlan("clustered_index_scan", best)
    if nonclustered_candidates:
        _, best = min(nonclustered_candidates, key=lambda pair: pair[0])
        return UnaryPlan("nonclustered_index_scan", best)
    return UnaryPlan("seq_scan")


def _estimated_intermediate(table: Table, predicate) -> float:
    """Estimated rows surviving a local selection."""
    return table.cardinality * predicate.selectivity(table.statistics)


def choose_join_plan(
    left: Table,
    right: Table,
    left_indexes: Sequence[Index],
    right_indexes: Sequence[Index],
    query: JoinQuery,
) -> JoinPlan:
    """Pick the join strategy for *query* over (*left*, *right*)."""
    left_join_index = _index_on(left_indexes, query.left_column)
    right_join_index = _index_on(right_indexes, query.right_column)

    if (
        left_join_index is not None
        and right_join_index is not None
        and left_join_index.kind is IndexKind.CLUSTERED
        and right_join_index.kind is IndexKind.CLUSTERED
    ):
        return JoinPlan("sort_merge_join")

    left_inter = _estimated_intermediate(left, query.left_predicate)
    right_inter = _estimated_intermediate(right, query.right_predicate)

    if right_join_index is not None and left_inter <= INLJ_OUTER_FRACTION * right.cardinality:
        return JoinPlan("index_nested_loop_join", right_join_index)
    if left_join_index is not None and right_inter <= INLJ_OUTER_FRACTION * left.cardinality:
        return JoinPlan("index_nested_loop_join", left_join_index, swapped=True)
    return JoinPlan("hash_join")


def _index_on(indexes: Sequence[Index], column: str) -> Optional[Index]:
    """The best index on *column*: clustered preferred over non-clustered."""
    matches = [i for i in indexes if i.column_name == column]
    if not matches:
        return None
    clustered = [i for i in matches if i.kind is IndexKind.CLUSTERED]
    return clustered[0] if clustered else matches[0]
