"""The local database system: DDL, DML, and timed query execution.

A :class:`LocalDatabase` bundles a catalog, a DBMS cost profile, and the
:class:`~repro.env.environment.Environment` it runs in.  Executing a
query (1) lets the local optimizer pick a plan, (2) runs the plan to get
both the result and the physical work counters, and (3) converts work to
a simulated elapsed time under the contention level *at execution time*,
advancing the simulated clock.  The elapsed time is all the global level
ever observes — local cost constants stay hidden behind local autonomy,
which is precisely the problem the paper's method addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from .. import obs
from ..env.environment import Environment, static_environment
from .access import UnaryExecution
from .buffer import DEFAULT_WINDOW, BufferPool
from .catalog import LocalCatalog
from .costing import ElapsedBreakdown, simulate_elapsed
from .errors import CatalogError
from .index import Index, IndexKind
from .joins import JoinExecution
from .metrics import AccessInfo, ExecutionMetrics
from .optimizer import JoinPlan, UnaryPlan, choose_join_plan, choose_unary_plan
from .pages import PageLayout
from .profiles import DBMSProfile, ORACLE_LIKE
from .query import Query, SelectQuery
from .schema import Column, TableSchema
from .sql import parse_query
from .table import ResultTable, Table


@dataclass
class QueryResult:
    """Everything one execution exposes to the caller."""

    query: Query
    result: ResultTable
    metrics: ExecutionMetrics
    breakdown: ElapsedBreakdown
    plan: str
    infos: tuple[AccessInfo, ...]
    contention_level: float
    started_at: float

    @property
    def elapsed(self) -> float:
        """Simulated elapsed time in seconds (what a stopwatch would show)."""
        return self.breakdown.elapsed

    @property
    def cardinality(self) -> int:
        return self.result.cardinality


class LocalDatabase:
    """One autonomous local DBS in the multidatabase system."""

    def __init__(
        self,
        name: str,
        profile: DBMSProfile = ORACLE_LIKE,
        environment: Environment | None = None,
        layout: PageLayout | None = None,
        noise_sigma: float = 0.05,
        seed: int = 0,
        buffer_pages: int | None = None,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        profile.validate()
        self.name = name
        self.profile = profile
        self.environment = environment or static_environment()
        self.layout = layout or PageLayout()
        self.noise_sigma = noise_sigma
        self.catalog = LocalCatalog()
        self._rng = np.random.default_rng(seed)
        #: Optional simulated memory hierarchy.  ``None`` (the default)
        #: keeps the classic statistical page accounting; a pool makes
        #: physical I/O depend on workload history (see buffer.py).
        self.buffer_pool: BufferPool | None = (
            BufferPool(capacity_pages=buffer_pages, window=DEFAULT_WINDOW)
            if buffer_pages is not None
            else None
        )

    # -- DDL / DML ---------------------------------------------------------

    def create_table(
        self, name: str, columns: Sequence[Column], rows: Iterable[Sequence[Any]] = ()
    ) -> Table:
        """Create a table and optionally bulk-load *rows*."""
        table = Table(TableSchema(name, columns), layout=self.layout)
        table.bulk_load(rows)
        self.catalog.add_table(table)
        return table

    def insert(self, table_name: str, row: Sequence[Any]) -> None:
        """Insert one row, maintaining any indexes by rebuild."""
        table = self.catalog.table(table_name)
        table.insert(row)
        self._rebuild_indexes(table_name)

    def create_index(
        self, index_name: str, table_name: str, column_name: str, clustered: bool = False
    ) -> Index:
        """Create an index; a clustered index physically re-sorts the table.

        Creating a clustered index changes row ids, so all other indexes
        on the table are rebuilt afterwards.  Only one clustered index per
        table is allowed.
        """
        table = self.catalog.table(table_name)
        if clustered:
            existing = [
                i
                for i in self.catalog.indexes_for(table_name)
                if i.kind is IndexKind.CLUSTERED
            ]
            if existing:
                raise CatalogError(
                    f"table {table_name} already has a clustered index "
                    f"({existing[0].name})"
                )
            table.cluster_on(column_name)
            self._rebuild_indexes(table_name)
        kind = IndexKind.CLUSTERED if clustered else IndexKind.NONCLUSTERED
        index = Index(index_name, table, column_name, kind)
        self.catalog.add_index(index)
        return index

    def _rebuild_indexes(self, table_name: str) -> None:
        table = self.catalog.table(table_name)
        for index in self.catalog.indexes_for(table_name):
            rebuilt = Index(index.name, table, index.column_name, index.kind)
            self.catalog.drop_index(index.name)
            self.catalog.add_index(rebuilt)

    def analyze(self, build_histograms: bool = False) -> None:
        """Refresh statistics for every table.

        With ``build_histograms=True``, columns get equi-depth histograms
        for sharper selectivity estimates on skewed data.
        """
        for table in self.catalog.tables():
            table.analyze(build_histograms=build_histograms)

    # -- planning --------------------------------------------------------------

    def parse(self, sql: str) -> Query:
        """Parse SQL text against this database's schemas."""
        schemas = {t.name: t.schema for t in self.catalog.tables()}
        return parse_query(sql, schemas)

    def plan(self, query: Query | str) -> UnaryPlan | JoinPlan:
        """Let the local optimizer choose a plan (without executing)."""
        if isinstance(query, str):
            query = self.parse(query)
        if isinstance(query, SelectQuery):
            table = self.catalog.table(query.table)
            return choose_unary_plan(table, self.catalog.indexes_for(table.name), query)
        left = self.catalog.table(query.left)
        right = self.catalog.table(query.right)
        return choose_join_plan(
            left,
            right,
            self.catalog.indexes_for(left.name),
            self.catalog.indexes_for(right.name),
            query,
        )

    # -- execution --------------------------------------------------------------

    def execute(self, query: Query | str) -> QueryResult:
        """Execute *query*, returning result rows plus timing under load."""
        with obs.span("engine.execute") as sp:
            if isinstance(query, str):
                query = self.parse(query)
            started_at = self.environment.now
            level = self.environment.level()
            slowdown = self.environment.slowdown()
            noise = self._noise()

            if isinstance(query, SelectQuery):
                plan = self.plan(query)
                assert isinstance(plan, UnaryPlan)
                execution: UnaryExecution = plan.execute(
                    self.catalog.table(query.table), query, self.buffer_pool
                )
                infos: tuple[AccessInfo, ...] = (execution.info,)
                plan_desc = execution.info.method
            else:
                plan = self.plan(query)
                assert isinstance(plan, JoinPlan)
                jexec: JoinExecution = plan.execute(
                    self.catalog.table(query.left),
                    self.catalog.table(query.right),
                    query,
                    self.buffer_pool,
                )
                execution = jexec  # type: ignore[assignment]
                infos = (jexec.left_info, jexec.right_info)
                plan_desc = jexec.method

            breakdown = simulate_elapsed(execution.metrics, self.profile, slowdown, noise)
            self.environment.advance(breakdown.elapsed)
            self._record_execution(plan_desc, execution.metrics, breakdown)
            if sp.recording:
                sp.set_attributes(
                    database=self.name,
                    plan=plan_desc,
                    rows=execution.result.cardinality,
                    pages_read=execution.metrics.total_page_reads,
                    simulated_seconds=breakdown.elapsed,
                    contention_level=level,
                )
        return QueryResult(
            query=query,
            result=execution.result,
            metrics=execution.metrics,
            breakdown=breakdown,
            plan=plan_desc,
            infos=infos,
            contention_level=level,
            started_at=started_at,
        )

    def _record_execution(
        self, plan_desc: str, metrics: ExecutionMetrics, breakdown: ElapsedBreakdown
    ) -> None:
        """Feed the global metrics registry: pages, CPU ops, and the
        simulated elapsed seconds per access method."""
        registry = obs.get_registry()
        registry.inc("engine.queries")
        registry.inc("engine.pages.sequential", metrics.sequential_page_reads)
        registry.inc("engine.pages.random", metrics.random_page_reads)
        registry.inc("engine.pages.logical", metrics.logical_page_reads)
        registry.inc("engine.pages.buffer_hits", metrics.buffer_hits)
        if self.buffer_pool is not None:
            registry.set_gauge("engine.buffer.hit_rate", self.buffer_pool.hit_rate)
            registry.set_gauge("engine.buffer.resident_pages", len(self.buffer_pool))
        registry.inc(
            "engine.cpu_ops",
            metrics.tuples_read
            + metrics.tuples_evaluated
            + metrics.tuples_output
            + metrics.sort_comparisons
            + metrics.hash_operations,
        )
        registry.observe(f"engine.elapsed_seconds.{plan_desc}", breakdown.elapsed)

    def _noise(self) -> float:
        if self.noise_sigma == 0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, self.noise_sigma)))

    # -- simulation forking -------------------------------------------------

    def save_state(self) -> dict:
        """Capture (clock time, noise-RNG state) for a later rewind.

        Together with deterministic contention traces this lets an
        experiment execute alternative plans from the *identical* site
        state — the simulated analogue of re-running a measurement.
        """
        return {
            "time": self.environment.now,
            "rng": self._rng.bit_generator.state,
            "buffer": (
                self.buffer_pool.snapshot() if self.buffer_pool is not None else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Rewind to a state captured with :meth:`save_state`."""
        self.environment.clock.reset(state["time"])
        self._rng.bit_generator.state = state["rng"]
        if self.buffer_pool is not None and state.get("buffer") is not None:
            self.buffer_pool.restore(state["buffer"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalDatabase({self.name}, profile={self.profile.name}, "
            f"{len(self.catalog.table_names)} tables)"
        )
