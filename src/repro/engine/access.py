"""Unary access methods: sequential scan and index scans.

Each access method returns the materialized result *and* the physical
work it performed, plus an :class:`~repro.engine.metrics.AccessInfo`
describing the globally observable facts (operand / intermediate sizes)
that the paper's cost-model variables are built from.

The three methods mirror the access paths behind the paper's unary query
classes: sequential scan (class :math:`G_1`), clustered-index scan, and
non-clustered index scan (:math:`G_2`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import compress
from operator import itemgetter

import numpy as np

from . import vectorize
from .buffer import (
    BufferPool,
    charge_random_pages,
    charge_sequential_pages,
    data_page_of,
)
from .errors import ExecutionError
from .index import Index, IndexKind
from .metrics import AccessInfo, ExecutionMetrics, sort_comparisons_for
from .predicate import KeyRange, Predicate, extract_key_range
from .query import SelectQuery
from .table import ResultTable, Table


@dataclass
class UnaryExecution:
    """Outcome of one unary access method."""

    result: ResultTable
    metrics: ExecutionMetrics
    info: AccessInfo


def _project(table: Table, query: SelectQuery, rows) -> ResultTable:
    """Apply the query's projection to matching rows."""
    out_cols = query.output_columns(table.schema)
    positions = [table.schema.position(c) for c in out_cols]
    tuple_length = table.schema.projected_tuple_length(out_cols)
    if vectorize.enabled() and rows:
        # Columnar gather: one C-level itemgetter call per row instead
        # of an interpreted tuple(genexpr) — same tuples, same order.
        if len(positions) == 1:
            projected = [(v,) for v in map(itemgetter(positions[0]), rows)]
        else:
            projected = list(map(itemgetter(*positions), rows))
    else:
        projected = [tuple(r[p] for p in positions) for r in rows]
    return ResultTable(out_cols, tuple_length, projected)


def _finalize(
    table: Table, query: SelectQuery, matching: list, metrics: ExecutionMetrics
) -> ResultTable:
    """ORDER BY, LIMIT, and projection over the matching rows.

    Sorting is charged as n·log2(n) comparisons on the *matching* set
    (sorting precedes LIMIT, as in SQL semantics); the limit then caps
    the output-tuple count.
    """
    if query.order_by:
        metrics.sort_comparisons += sort_comparisons_for(len(matching))
        for column, ascending in reversed(query.order_by):
            pos = table.schema.position(column)
            matching = sorted(matching, key=lambda r: r[pos], reverse=not ascending)
    if query.limit is not None:
        matching = matching[: query.limit]
    result = _project(table, query, matching)
    metrics.tuples_output = result.cardinality
    return result


def _filter_table(
    table: Table, predicate: Predicate, metrics: ExecutionMetrics
) -> list:
    """Predicate over every row, vectorized when possible.

    Charges one predicate evaluation per row either way — the batched
    path does the same logical work, just without the interpreter loop.
    """
    metrics.tuples_evaluated += table.cardinality
    if vectorize.enabled():
        mask = predicate.evaluate_batch(table)
        if mask is not None:
            return list(compress(table.rows(), mask.tolist()))
    return [row for row in table if predicate.evaluate(row, table.schema)]


def seq_scan(
    table: Table, query: SelectQuery, pool: BufferPool | None = None
) -> UnaryExecution:
    """Full sequential scan: read every page, evaluate the full predicate."""
    query.validate(table.schema)
    metrics = ExecutionMetrics()
    charge_sequential_pages(metrics, pool, table.name, table.num_pages)
    metrics.tuples_read = table.cardinality

    matching = _filter_table(table, query.predicate, metrics)
    result = _finalize(table, query, matching, metrics)
    info = AccessInfo(
        method="seq_scan",
        operand_cardinality=table.cardinality,
        # A sequential scan has no sargable reduction: the "intermediate
        # table" equals the operand, per the static method's convention.
        intermediate_cardinality=table.cardinality,
        operand_tuple_length=table.tuple_length,
    )
    return UnaryExecution(result, metrics, info)


def _filter_row_ids(
    table: Table, row_ids: list[int], residual: Predicate, metrics: ExecutionMetrics
) -> list:
    """Residual predicate over the indexed row ids, vectorized when possible.

    The batched path evaluates the residual over the *whole* table once
    (columnar views are already materialized) and intersects with the
    fetched ids — per-row work identical, charged per fetched id.
    """
    metrics.tuples_evaluated += len(row_ids)
    if vectorize.enabled() and row_ids:
        mask = residual.evaluate_batch(table)
        if mask is not None:
            ids = np.asarray(row_ids, dtype=np.intp)
            keep = ids[mask[ids]]
            rows = table.rows()
            return [rows[i] for i in keep]
    matching = []
    for rid in row_ids:
        row = table.row(rid)
        if residual.evaluate(row, table.schema):
            matching.append(row)
    return matching


def clustered_index_scan(
    table: Table, index: Index, query: SelectQuery, pool: BufferPool | None = None
) -> UnaryExecution:
    """Range scan through a clustered index.

    Traverses the B+-tree (``height`` random reads), then reads the
    physically contiguous run of qualifying pages sequentially.
    """
    query.validate(table.schema)
    if index.kind is not IndexKind.CLUSTERED:
        raise ExecutionError("clustered_index_scan requires a clustered index")
    key_range, residual = extract_key_range(query.predicate, index.column_name)
    if key_range is None:
        key_range = KeyRange()  # full-range scan via the index
        residual = query.predicate

    row_ids = index.range_lookup(
        key_range.low, key_range.high, key_range.low_inclusive, key_range.high_inclusive
    )
    metrics = ExecutionMetrics()
    if pool is None:
        charge_random_pages(metrics, None, count=index.height)
        fraction = len(row_ids) / table.cardinality if table.cardinality else 0.0
        charge_sequential_pages(
            metrics,
            None,
            table.name,
            table.layout.pages_for_fraction(
                table.cardinality, table.tuple_length, fraction
            ),
        )
    else:
        charge_random_pages(
            metrics, pool, keys=index.traversal_page_keys(key_range.low)
        )
        if row_ids:
            # Clustered rows are physically contiguous: the qualifying
            # pages are exactly the run from the first id's page to the
            # last id's page.
            rows_per_page = table.layout.rows_per_page(table.tuple_length)
            first = data_page_of(row_ids[0], rows_per_page)
            last = data_page_of(row_ids[-1], rows_per_page)
            charge_sequential_pages(
                metrics, pool, table.name, last - first + 1, start_page=first
            )
    metrics.tuples_read = len(row_ids)

    matching = _filter_row_ids(table, row_ids, residual, metrics)
    result = _finalize(table, query, matching, metrics)
    info = AccessInfo(
        method="clustered_index_scan",
        operand_cardinality=table.cardinality,
        intermediate_cardinality=len(row_ids),
        operand_tuple_length=table.tuple_length,
    )
    return UnaryExecution(result, metrics, info)


def nonclustered_index_scan(
    table: Table, index: Index, query: SelectQuery, pool: BufferPool | None = None
) -> UnaryExecution:
    """Index scan through a non-clustered index.

    Each qualifying tuple costs (up to) one random page read; runs of
    index-adjacent tuples that share a page — measured by the clustering
    ratio — amortize their reads.  With a buffer pool the amortization is
    played out concretely: each fetched tuple touches its actual data
    page, and repeat touches hit the cache.
    """
    query.validate(table.schema)
    if index.kind is not IndexKind.NONCLUSTERED:
        raise ExecutionError("nonclustered_index_scan requires a non-clustered index")
    key_range, residual = extract_key_range(query.predicate, index.column_name)
    if key_range is None or not key_range.is_bounded:
        raise ExecutionError(
            "nonclustered_index_scan needs a bounded sargable range on "
            f"{index.column_name}"
        )

    row_ids = index.range_lookup(
        key_range.low, key_range.high, key_range.low_inclusive, key_range.high_inclusive
    )
    metrics = ExecutionMetrics()
    k = len(row_ids)
    rows_per_page = table.layout.rows_per_page(table.tuple_length)
    if pool is None:
        ratio = index.clustering_ratio()
        # Unclustered fraction pays a random read per tuple; clustered runs
        # amortize over rows_per_page.
        tuple_fetch_ios = math.ceil(k * (1.0 - ratio) + k * ratio / rows_per_page)
        charge_random_pages(metrics, None, count=index.height + tuple_fetch_ios)
    else:
        charge_random_pages(
            metrics, pool, keys=index.traversal_page_keys(key_range.low)
        )
        charge_random_pages(
            metrics,
            pool,
            keys=(
                ("T", table.name, data_page_of(rid, rows_per_page))
                for rid in row_ids
            ),
        )
    metrics.tuples_read = k

    matching = _filter_row_ids(table, row_ids, residual, metrics)
    result = _finalize(table, query, matching, metrics)
    info = AccessInfo(
        method="nonclustered_index_scan",
        operand_cardinality=table.cardinality,
        intermediate_cardinality=k,
        operand_tuple_length=table.tuple_length,
    )
    return UnaryExecution(result, metrics, info)


def filter_rows(table: Table, predicate: Predicate) -> list:
    """Naive full filter — reference implementation used in tests and joins."""
    return [row for row in table if predicate.evaluate(row, table.schema)]
