"""Turn execution metrics into simulated elapsed time.

The elapsed time of a query is modeled as

    elapsed = (t_init + I/O time + CPU time) * slowdown(contention) * noise

where the *slowdown* multiplier comes from the environment simulator
(:mod:`repro.env`) and the multiplicative noise models measurement
jitter.  Crucially the contention multiplier scales the initialization,
I/O, *and* CPU components — the paper's §3.2 argument for why the
*general* qualitative regression form (state-specific intercept and
slopes) is the right one.  Resources such as disk bandwidth and CPU are
shared among concurrent processes, so a loaded system stretches every
component of a query's response time.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from .metrics import ExecutionMetrics
from .profiles import DBMSProfile


@dataclass(frozen=True)
class ElapsedBreakdown:
    """Decomposition of one query's simulated elapsed time."""

    init_time: float
    io_time: float
    cpu_time: float
    slowdown: float
    noise: float

    @property
    def base_time(self) -> float:
        """Unloaded-system elapsed time."""
        return self.init_time + self.io_time + self.cpu_time

    @property
    def elapsed(self) -> float:
        """Elapsed time under the current contention, with noise."""
        return self.base_time * self.slowdown * self.noise


def base_components(
    metrics: ExecutionMetrics, profile: DBMSProfile
) -> tuple[float, float, float]:
    """(init, io, cpu) times in seconds on an unloaded system."""
    io_time = (
        metrics.sequential_page_reads * profile.t_seq_page
        + metrics.random_page_reads * profile.t_rand_page
    )
    cpu_time = (
        metrics.tuples_read * profile.t_tuple_read
        + metrics.tuples_evaluated * profile.t_tuple_eval
        + metrics.tuples_output * profile.t_tuple_out
        + metrics.sort_comparisons * profile.t_sort_cmp
        + metrics.hash_operations * profile.t_hash_op
    )
    return profile.t_init, io_time, cpu_time


def simulate_elapsed(
    metrics: ExecutionMetrics,
    profile: DBMSProfile,
    slowdown: float = 1.0,
    noise: float = 1.0,
) -> ElapsedBreakdown:
    """Build the :class:`ElapsedBreakdown` for one execution.

    Parameters
    ----------
    metrics:
        Work counters reported by the plan.
    profile:
        The local DBMS's per-operation time constants.
    slowdown:
        Contention multiplier (>= 1 on a loaded system).
    noise:
        Multiplicative measurement noise (1.0 = noiseless).
    """
    if slowdown <= 0:
        raise ValueError("slowdown must be positive")
    if noise <= 0:
        raise ValueError("noise must be positive")
    init_time, io_time, cpu_time = base_components(metrics, profile)
    registry = obs.get_registry()
    registry.observe("engine.costing.io_seconds", io_time)
    registry.observe("engine.costing.cpu_seconds", cpu_time)
    registry.set_gauge("engine.costing.last_slowdown", slowdown)
    if metrics.logical_page_reads:
        # Per-query hit rate: the fraction of logical page reads the
        # buffer pool absorbed (0.0 on the pool-less accounting path,
        # where physical == logical).
        registry.set_gauge(
            "engine.costing.last_buffer_hit_rate", metrics.buffer_hit_rate
        )
    return ElapsedBreakdown(
        init_time=init_time,
        io_time=io_time,
        cpu_time=cpu_time,
        slowdown=slowdown,
        noise=noise,
    )
