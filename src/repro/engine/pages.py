"""Page-level storage accounting.

The engine stores rows in memory but *accounts* for them in fixed-size
pages, because every cost the paper regresses against is ultimately
I/O-shaped: a sequential scan reads ``pages(table)`` pages, an unclustered
index lookup pays one random page read per qualifying tuple, and so on.

Keeping the page math in one place makes the access-method cost formulas
(:mod:`repro.engine.access`, :mod:`repro.engine.joins`) easy to audit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Default page size in bytes; matches common DBMS defaults (8 KiB).
DEFAULT_PAGE_SIZE = 8192

#: Per-row bookkeeping overhead (slot pointer + header), in bytes.
ROW_OVERHEAD = 8


@dataclass(frozen=True)
class PageLayout:
    """Describes how rows of a given tuple length pack into pages."""

    page_size: int = DEFAULT_PAGE_SIZE

    def rows_per_page(self, tuple_length: int) -> int:
        """How many rows of *tuple_length* bytes fit in one page (>= 1)."""
        if tuple_length <= 0:
            raise ValueError("tuple_length must be positive")
        per_page = self.page_size // (tuple_length + ROW_OVERHEAD)
        return max(1, per_page)

    def pages_for(self, cardinality: int, tuple_length: int) -> int:
        """Number of pages needed to hold *cardinality* rows."""
        if cardinality < 0:
            raise ValueError("cardinality must be non-negative")
        if cardinality == 0:
            return 0
        return math.ceil(cardinality / self.rows_per_page(tuple_length))

    def pages_for_fraction(
        self, cardinality: int, tuple_length: int, fraction: float
    ) -> int:
        """Pages touched when reading a contiguous *fraction* of the rows.

        Used by clustered-index range scans: qualifying rows are physically
        adjacent, so the scan touches ``ceil(fraction * pages)`` pages.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        total = self.pages_for(cardinality, tuple_length)
        if total == 0 or fraction == 0.0:
            return 0
        return max(1, math.ceil(total * fraction))
