"""Predicate expressions: evaluation, analysis, and selectivity estimation.

Predicates are trees of comparisons joined by AND/OR/NOT.  Besides
row-at-a-time evaluation, the module supports the two analyses the engine
(and the paper's query classification) needs:

* extracting *sargable* terms — ``column <op> constant`` comparisons that
  an index on that column could serve, together with the residual
  predicate that must still be evaluated per tuple; and
* selectivity estimation from catalog statistics (uniformity assumption,
  independence across conjuncts), which both the local access-path
  optimizer and the workload generator rely on.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from .errors import QueryError
from .schema import TableSchema, TableStatistics
from .types import Row

# Comparison operators, with their evaluation functions.  The same table
# drives both the scalar path (Python operands) and the vectorized path
# (a numpy array on the left), since numpy overloads the operators.
_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Default selectivity guesses when statistics are unavailable
#: (System R's classic magic numbers).
_DEFAULT_SELECTIVITY = {
    "=": 0.1,
    "!=": 0.9,
    "<": 1.0 / 3.0,
    "<=": 1.0 / 3.0,
    ">": 1.0 / 3.0,
    ">=": 1.0 / 3.0,
}


class Predicate:
    """Abstract base for predicate nodes."""

    def evaluate(self, row: Row, schema: TableSchema) -> bool:
        raise NotImplementedError

    def evaluate_batch(self, table) -> Optional[np.ndarray]:
        """Vectorized evaluation over a :class:`Table`'s columnar views.

        Returns a boolean mask aligned with physical row order, or
        ``None`` when this predicate (or any subtree) cannot be
        evaluated in batch — e.g. a comparison whose constant's type
        does not match the column's numpy dtype.  Callers falling back
        to row-at-a-time :meth:`evaluate` get identical results; the
        two paths are pinned together by property tests.
        """
        return None

    def columns(self) -> set[str]:
        """Names of all columns referenced anywhere in the tree."""
        raise NotImplementedError

    def selectivity(self, stats: TableStatistics) -> float:
        """Estimated fraction of rows satisfying this predicate (in [0, 1])."""
        raise NotImplementedError

    def validate(self, schema: TableSchema) -> None:
        """Raise :class:`QueryError` if a referenced column is missing."""
        missing = self.columns() - set(schema.column_names)
        if missing:
            raise QueryError(
                f"predicate references unknown column(s): {sorted(missing)}"
            )

    # Conjunction convenience: ``p & q`` builds And(p, q).
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> constant``."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise QueryError(f"unknown comparison operator: {self.op!r}")

    def evaluate(self, row: Row, schema: TableSchema) -> bool:
        return _OPS[self.op](row[schema.position(self.column)], self.value)

    def evaluate_batch(self, table) -> Optional[np.ndarray]:
        if len(table) == 0:
            return np.zeros(0, dtype=bool)
        array = table.column_array(self.column)
        if not self._batch_compatible(array.dtype.kind, self.value):
            return None
        return _OPS[self.op](array, self.value)

    @staticmethod
    def _batch_compatible(dtype_kind: str, value: Any) -> bool:
        """Whether numpy comparison semantics match Python's exactly.

        Int columns compared to floats promote to float64, which is only
        exact below 2**53 — the engine's validated INT values stay far
        under that, but an out-of-range constant forces the scalar path.
        """
        if dtype_kind in "iu":
            if not isinstance(value, numbers.Real) or isinstance(value, bool):
                return False
            if isinstance(value, numbers.Integral):
                return -(2**53) < int(value) < 2**53
            return abs(float(value)) < 2.0**53
        if dtype_kind == "f":
            return isinstance(value, numbers.Real) and not isinstance(value, bool)
        if dtype_kind == "U":
            return isinstance(value, str)
        return False

    def columns(self) -> set[str]:
        return {self.column}

    def selectivity(self, stats: TableStatistics) -> float:
        col = stats.column(self.column)
        if col.minimum is None or stats.cardinality == 0:
            return _DEFAULT_SELECTIVITY[self.op]
        if col.histogram is not None and isinstance(self.value, numbers.Real):
            estimate = self._histogram_selectivity(col.histogram)
            if estimate is not None:
                return estimate
        if self.op == "=":
            if col.distinct_count <= 0:
                return _DEFAULT_SELECTIVITY["="]
            return min(1.0, 1.0 / col.distinct_count)
        if self.op == "!=":
            if col.distinct_count <= 0:
                return _DEFAULT_SELECTIVITY["!="]
            return max(0.0, 1.0 - 1.0 / col.distinct_count)
        # Range operators: interpolate within [min, max] when numeric.
        lo, hi = col.minimum, col.maximum
        if not isinstance(lo, numbers.Real) or isinstance(lo, bool):
            return _DEFAULT_SELECTIVITY[self.op]
        if hi == lo:
            # Degenerate single-value column: the comparison either always
            # or never holds.
            holds = _OPS[self.op](lo, self.value)
            return 1.0 if holds else 0.0
        span = float(hi - lo)
        if self.op in ("<", "<="):
            frac = (self.value - lo) / span
        else:
            frac = (hi - self.value) / span
        return min(1.0, max(0.0, frac))

    def _histogram_selectivity(self, histogram) -> Optional[float]:
        """Histogram-based estimate, or None when the op has no mapping."""
        if self.op == "=":
            return histogram.estimate_eq(float(self.value))
        if self.op == "!=":
            return max(0.0, 1.0 - histogram.estimate_eq(float(self.value)))
        if self.op in ("<", "<="):
            frac = histogram.estimate_le(float(self.value))
            if self.op == "<":
                frac = max(0.0, frac - histogram.estimate_eq(float(self.value)))
            return min(1.0, frac)
        if self.op in (">", ">="):
            frac = 1.0 - histogram.estimate_le(float(self.value))
            if self.op == ">=":
                frac = min(1.0, frac + histogram.estimate_eq(float(self.value)))
            return max(0.0, frac)
        return None

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, row: Row, schema: TableSchema) -> bool:
        return self.left.evaluate(row, schema) and self.right.evaluate(row, schema)

    def evaluate_batch(self, table) -> Optional[np.ndarray]:
        left = self.left.evaluate_batch(table)
        if left is None:
            return None
        right = self.right.evaluate_batch(table)
        if right is None:
            return None
        return left & right

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def selectivity(self, stats: TableStatistics) -> float:
        return self.left.selectivity(stats) * self.right.selectivity(stats)

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, row: Row, schema: TableSchema) -> bool:
        return self.left.evaluate(row, schema) or self.right.evaluate(row, schema)

    def evaluate_batch(self, table) -> Optional[np.ndarray]:
        left = self.left.evaluate_batch(table)
        if left is None:
            return None
        right = self.right.evaluate_batch(table)
        if right is None:
            return None
        return left | right

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def selectivity(self, stats: TableStatistics) -> float:
        a = self.left.selectivity(stats)
        b = self.right.selectivity(stats)
        return min(1.0, a + b - a * b)

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Predicate):
    operand: Predicate

    def evaluate(self, row: Row, schema: TableSchema) -> bool:
        return not self.operand.evaluate(row, schema)

    def evaluate_batch(self, table) -> Optional[np.ndarray]:
        mask = self.operand.evaluate_batch(table)
        if mask is None:
            return None
        return ~mask

    def columns(self) -> set[str]:
        return self.operand.columns()

    def selectivity(self, stats: TableStatistics) -> float:
        return max(0.0, 1.0 - self.operand.selectivity(stats))

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


class TruePredicate(Predicate):
    """Always-true predicate: a query with no WHERE clause."""

    def evaluate(self, row: Row, schema: TableSchema) -> bool:
        return True

    def evaluate_batch(self, table) -> Optional[np.ndarray]:
        return np.ones(len(table), dtype=bool)

    def columns(self) -> set[str]:
        return set()

    def selectivity(self, stats: TableStatistics) -> float:
        return 1.0

    def __str__(self) -> str:
        return "TRUE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("TruePredicate")


TRUE = TruePredicate()


# ---------------------------------------------------------------------------
# Sargable analysis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KeyRange:
    """A (possibly half-open) key interval an index can scan."""

    low: Any = None
    high: Any = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    @property
    def is_point(self) -> bool:
        return (
            self.low is not None
            and self.low == self.high
            and self.low_inclusive
            and self.high_inclusive
        )

    @property
    def is_bounded(self) -> bool:
        return self.low is not None or self.high is not None


def conjuncts(pred: Predicate) -> list[Predicate]:
    """Flatten a conjunction into its top-level AND-ed terms."""
    if isinstance(pred, And):
        return conjuncts(pred.left) + conjuncts(pred.right)
    if isinstance(pred, TruePredicate):
        return []
    return [pred]


def conjoin(terms: list[Predicate]) -> Predicate:
    """Rebuild a predicate from conjunct terms (TRUE when empty)."""
    if not terms:
        return TRUE
    result = terms[0]
    for term in terms[1:]:
        result = And(result, term)
    return result


def extract_key_range(
    pred: Predicate, column: str
) -> tuple[Optional[KeyRange], Predicate]:
    """Split *pred* into an index-servable key range on *column* + residual.

    Only top-level AND-ed comparisons on *column* with operators
    ``= < <= > >=`` are sargable; everything else (OR trees, NOT, ``!=``)
    stays in the residual.  Returns ``(None, pred)`` when nothing on the
    column is sargable.
    """
    range_terms: list[Comparison] = []
    residual: list[Predicate] = []
    for term in conjuncts(pred):
        if (
            isinstance(term, Comparison)
            and term.column == column
            and term.op in ("=", "<", "<=", ">", ">=")
        ):
            range_terms.append(term)
        else:
            residual.append(term)
    if not range_terms:
        return None, pred

    low: Any = None
    high: Any = None
    low_inc = True
    high_inc = True
    for term in range_terms:
        if term.op == "=":
            # An equality is >=v AND <=v: tighten each side the way
            # those operators would.  It must never *loosen* an
            # exclusive bound at the same key — ``a<1 AND a=1`` is the
            # empty range [1, 1), not the point [1, 1].
            if low is None or term.value > low:
                low, low_inc = term.value, True
            if high is None or term.value < high:
                high, high_inc = term.value, True
        elif term.op in (">", ">="):
            inc = term.op == ">="
            if low is None or term.value > low or (term.value == low and low_inc and not inc):
                low, low_inc = term.value, inc
        else:  # < or <=
            inc = term.op == "<="
            if high is None or term.value < high or (term.value == high and high_inc and not inc):
                high, high_inc = term.value, inc
    return KeyRange(low, high, low_inc, high_inc), conjoin(residual)
