"""Serving-throughput bench: the concurrent front end vs serial serving.

The first *throughput* baseline of the repo: how many global queries per
second the :class:`~repro.serving.frontend.ServingFrontEnd` sustains on
a repeated-class workload, against the serial reference (one synchronous
``server.execute`` at a time, no plan cache, probe-per-optimization).

Levels share one trained universe: models are derived once, exported
through the registry payload, and imported into a *fresh* identically
seeded pair of sites per level — every level therefore serves the same
queries against the same data from the same initial state, and differs
only in serving configuration:

* ``serial`` — workers=1, plan cache off, probe TTL 0: byte-identical
  to calling ``MDBSServer.execute`` in a loop (the pre-serving repo);
* ``pool-N`` — N workers, plan cache on, probes cached: repeats are
  admitted concurrently and served from the plan cache, skipping the
  optimizer and the probing queries entirely.

On a single CPU (and under the GIL) the pooled win comes from the work
the cache *removes* — per-request optimization and probing — not from
parallel execution; the bench reports both the throughput ratio and the
probe/optimizer work avoided, so the mechanism is visible in the output.

Determinism note: rendered output contains only scheduling-independent
facts (request counts, cache hit rates, join-site choices, probes
executed).  Real-time numbers (QPS, latency percentiles) are returned in
the result/JSON payload and printed to stderr by ``__main__`` — stdout
stays byte-identical across runs, which the CI pool smoke relies on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.builder import CostModelBuilder
from ..core.classification import G1, G3
from ..engine.predicate import Comparison
from ..engine.profiles import DB2_LIKE, ORACLE_LIKE
from ..mdbs.agent import MDBSAgent
from ..mdbs.gquery import GlobalJoinQuery
from ..mdbs.server import MDBSServer
from ..serving import ServingConfig, ServingFrontEnd
from ..workload.scenarios import make_two_site_universe
from .config import ExperimentConfig
from .report import format_table

#: Effectively-infinite probe TTL for cached levels: one probing query
#: per site per level, shared by every request (simulated seconds).
PINNED_PROBE_TTL = 1e9

TABLES = ["R1", "R2", "R3", "R4"]


@dataclass(frozen=True)
class ServingLevel:
    """One rung of the concurrency ladder."""

    name: str
    workers: int
    plan_cache: bool
    probe_ttl: float


#: The ladder: the serial reference, then cached pools of 1/2/4/8.
LEVELS: tuple[ServingLevel, ...] = (
    ServingLevel("serial", 1, False, 0.0),
    ServingLevel("pool-1", 1, True, PINNED_PROBE_TTL),
    ServingLevel("pool-2", 2, True, PINNED_PROBE_TTL),
    ServingLevel("pool-4", 4, True, PINNED_PROBE_TTL),
    ServingLevel("pool-8", 8, True, PINNED_PROBE_TTL),
)


@dataclass
class LevelResult:
    """Outcome of one level's run over the shared workload."""

    level: ServingLevel
    requests: int
    completed: int
    dropped: int
    plan_cache_hits: int
    plan_cache_misses: int
    probes_executed: int
    #: join_site ("left"/"right") -> times chosen; scheduling-independent
    #: because cached levels warm the cache single-threaded first.
    join_sites: dict[str, int]
    wall_seconds: float
    qps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float

    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0


@dataclass
class ServingThroughputResult:
    requests: int
    distinct_queries: int
    levels: list[LevelResult] = field(default_factory=list)

    def level(self, name: str) -> LevelResult:
        for result in self.levels:
            if result.level.name == name:
                return result
        raise KeyError(name)

    @property
    def baseline_qps(self) -> float:
        return self.level("serial").qps

    def speedup(self, name: str) -> float:
        base = self.baseline_qps
        return self.level(name).qps / base if base > 0 else 0.0


def _make_workload(config: ExperimentConfig, distinct: int) -> list[GlobalJoinQuery]:
    """*distinct* structurally different cross-site joins, seeded."""
    rng = np.random.default_rng(config.seed + 55)
    queries = []
    for i in range(distinct):
        left_table = TABLES[i % len(TABLES)]
        remaining = [t for t in TABLES if t != left_table]
        right_table = remaining[int(rng.integers(0, len(remaining)))]
        sides = (("site_a", left_table), ("site_b", right_table))
        if i % 2:
            sides = (sides[1], sides[0])
        (left_site, left_table), (right_site, right_table) = sides
        queries.append(
            GlobalJoinQuery(
                left_site,
                left_table,
                right_site,
                right_table,
                "a4",
                "a4",
                (f"{left_table}.a1", f"{right_table}.a2"),
                left_predicate=Comparison("a3", "<", int(rng.integers(300, 900))),
                right_predicate=Comparison("a7", "<", int(rng.integers(20000, 45000))),
            )
        )
    return queries


def _train_models(config: ExperimentConfig) -> dict:
    """Derive G1/G3 models at both sites once; return a registry payload."""
    server = MDBSServer()
    for site in _make_sites(config):
        server.register_agent(MDBSAgent(site.database))
        builder = CostModelBuilder(site.database, config=config.builder)
        for query_class, count in ((G1, config.unary_train), (G3, config.unary_train)):
            queries = site.generator.queries_for(query_class, count, tables=TABLES)
            outcome = builder.build(query_class, queries, algorithm="iupma")
            server.store_cost_model(site.name, outcome.model)
    return server.catalog.export_models()


def _make_sites(config: ExperimentConfig):
    """A fresh, identically seeded pair of sites (one per call site)."""
    return make_two_site_universe(
        names=("site_a", "site_b"),
        profiles=(ORACLE_LIKE, DB2_LIKE),
        seeds=(config.seed + 81, config.seed + 82),
        scale=config.scale,
    )


def _run_level(
    level: ServingLevel,
    config: ExperimentConfig,
    payload: dict,
    workload: list[GlobalJoinQuery],
    requests: int,
) -> LevelResult:
    """Run one level in a fresh universe seeded like every other level."""
    server = MDBSServer(probe_ttl=level.probe_ttl)
    for site in _make_sites(config):
        server.register_agent(MDBSAgent(site.database))
    server.catalog.import_models(payload)

    serving_config = ServingConfig(
        workers=level.workers,
        queue_depth=max(64, requests),
        admission_policy="block",
        plan_cache=level.plan_cache,
    )
    stream = [workload[i % len(workload)] for i in range(requests)]
    with ServingFrontEnd(server, serving_config) as frontend:
        # Deterministic warm-up: optimize each distinct query once,
        # single-threaded, from the level's initial state.  The flood
        # below then runs all-hits, so the rendered join-site and hit
        # counts do not depend on thread scheduling.
        frontend.warm(workload)
        started = time.perf_counter()
        tickets = frontend.serve(stream)
        wall = time.perf_counter() - started
        stats = frontend.stats()

    latencies = sorted(
        t.latency_seconds for t in tickets if t.latency_seconds is not None
    )
    join_sites: dict[str, int] = {}
    for ticket in tickets:
        if ticket.execution is not None:
            site = ticket.execution.plan.join_site
            join_sites[site] = join_sites.get(site, 0) + 1

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return LevelResult(
        level=level,
        requests=requests,
        completed=stats.completed,
        dropped=stats.dropped,
        plan_cache_hits=stats.plan_cache_hits,
        plan_cache_misses=stats.plan_cache_misses,
        probes_executed=sum(server.probing.probes_executed.values()),
        join_sites=join_sites,
        wall_seconds=wall,
        qps=stats.completed / wall if wall > 0 else 0.0,
        latency_p50=pct(0.50),
        latency_p95=pct(0.95),
        latency_p99=pct(0.99),
    )


def run_serving_throughput(
    config: ExperimentConfig | None = None,
    requests: int = 192,
    distinct: int = 6,
    levels: tuple[ServingLevel, ...] = LEVELS,
) -> ServingThroughputResult:
    """Train once, then run every level over the identical workload."""
    config = config or ExperimentConfig()
    payload = _train_models(config)
    workload = _make_workload(config, distinct)
    result = ServingThroughputResult(requests=requests, distinct_queries=distinct)
    for level in levels:
        result.levels.append(
            _run_level(level, config, payload, workload, requests)
        )
    return result


def render_serving_throughput(result: ServingThroughputResult) -> str:
    """Scheduling-independent table: counts and rates only (no seconds).

    QPS and latency are real wall-clock measurements and vary run to
    run; they live in :func:`serving_throughput_payload` and stderr.
    """
    headers = [
        "level",
        "workers",
        "plan cache",
        "completed",
        "dropped",
        "cache hit rate",
        "probes executed",
        "join sites",
    ]
    rows = []
    for level_result in result.levels:
        level = level_result.level
        sites = ", ".join(
            f"{site}:{count}"
            for site, count in sorted(level_result.join_sites.items())
        )
        rows.append(
            (
                level.name,
                level.workers,
                "on" if level.plan_cache else "off",
                level_result.completed,
                level_result.dropped,
                level_result.plan_cache_hit_rate,
                level_result.probes_executed,
                sites,
            )
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Serving throughput ladder: {result.requests} requests over "
            f"{result.distinct_queries} repeated global joins"
        ),
    )


def render_serving_timings(result: ServingThroughputResult) -> str:
    """The wall-clock side (diagnostics; NOT byte-stable across runs)."""
    lines = [
        f"{r.level.name}: {r.qps:.1f} qps  "
        f"p50 {r.latency_p50 * 1e3:.2f}ms  p95 {r.latency_p95 * 1e3:.2f}ms  "
        f"p99 {r.latency_p99 * 1e3:.2f}ms  wall {r.wall_seconds:.2f}s"
        for r in result.levels
    ]
    lines.append(
        f"speedup pool-8 vs serial: {result.speedup('pool-8'):.2f}x"
    )
    return "\n".join(lines)


def serving_throughput_payload(result: ServingThroughputResult) -> dict:
    """The ``BENCH_serving_throughput.json`` payload (see EXPERIMENTS.md)."""
    return {
        "bench": "serving_throughput",
        "schema_version": 1,
        "requests": result.requests,
        "distinct_queries": result.distinct_queries,
        "baseline_qps": result.baseline_qps,
        "levels": [
            {
                "name": r.level.name,
                "workers": r.level.workers,
                "plan_cache": r.level.plan_cache,
                "probe_ttl": r.level.probe_ttl,
                "requests": r.requests,
                "completed": r.completed,
                "dropped": r.dropped,
                "qps": r.qps,
                "wall_seconds": r.wall_seconds,
                "latency_p50_seconds": r.latency_p50,
                "latency_p95_seconds": r.latency_p95,
                "latency_p99_seconds": r.latency_p99,
                "plan_cache_hit_rate": r.plan_cache_hit_rate,
                "plan_cache_hits": r.plan_cache_hits,
                "plan_cache_misses": r.plan_cache_misses,
                "probes_executed": r.probes_executed,
                "speedup_vs_serial": result.speedup(r.level.name),
            }
            for r in result.levels
        ],
    }
