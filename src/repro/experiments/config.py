"""Experiment configuration: scales, sample sizes, seeds.

Three presets:

* :func:`tiny` — seconds-long smoke preset for CI pool smokes and
  determinism guards;
* :func:`quick` — the default for tests and benchmarks: scaled-down
  tables and Proposition-4.1-sized-for-fewer-states samples, so the whole
  suite runs in minutes while preserving every qualitative shape;
* :func:`full` — paper-sized sampling (370 unary / 550 join observations,
  the eq. (4) numbers for m = 6) on larger tables, for the
  EXPERIMENTS.md record runs.

Absolute costs differ from the paper's testbed either way (our substrate
is a simulator); the comparisons of interest — multi-states vs one-state
vs static, IUPMA vs ICMA, R² saturation in the state count — are scale-
invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.builder import BuilderConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment runner."""

    #: Cardinality scale relative to the paper's 3,000–250,000 tables.
    scale: float = 0.02
    #: Base seed; sites and generators derive their own from it.
    seed: int = 7
    #: Training-sample sizes per class family.
    unary_train: int = 170
    join_train: int = 170
    #: Static Approach 1's training size (one state — m = 1 in Prop. 4.1).
    static_train: int = 70
    #: Held-out test queries per class.
    test_count: int = 60
    #: Restrict join sampling to the smaller tables (index into R1..R12);
    #: None means all tables.
    join_tables: tuple[str, ...] | None = ("R1", "R2", "R3", "R4", "R5", "R6")
    #: Buffer-pool capacity in pages for every site built by the harness;
    #: None (the default) runs without the simulated memory hierarchy, so
    #: existing experiments and their cached results are unchanged.
    buffer_pages: int | None = None
    #: Load-generation fleet shape (:mod:`repro.loadgen`): shards are the
    #: unit of determinism — ``--workers`` only changes how many run at
    #: once, never how many exist — and rounds is each shard's served
    #: timeline length.
    loadgen_shards: int = 8
    loadgen_rounds: int = 24
    #: Pipeline tunables (state determination, selection, sampling pauses).
    builder: BuilderConfig = field(default_factory=BuilderConfig)

    def train_count(self, family: str) -> int:
        return self.unary_train if family == "unary" else self.join_train

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)


def tiny(seed: int = 13) -> ExperimentConfig:
    """Smallest preset that still exercises every pipeline stage.

    Used by smoke tests (including the CI ``--jobs 2`` pool smoke) and
    the cross-process determinism guard; the qualitative shapes survive
    but the absolute numbers are noisier than :func:`quick`.
    """
    return ExperimentConfig(
        scale=0.008,
        seed=seed,
        unary_train=90,
        join_train=90,
        static_train=40,
        test_count=30,
        join_tables=("R1", "R2", "R3", "R4"),
        loadgen_shards=4,
        loadgen_rounds=18,
    )


def quick(seed: int = 7) -> ExperimentConfig:
    """Fast preset used by the test and benchmark suites."""
    return ExperimentConfig(seed=seed)


def full(seed: int = 7) -> ExperimentConfig:
    """Paper-sized preset (eq. (4) sample sizes, larger tables)."""
    return ExperimentConfig(
        scale=0.1,
        seed=seed,
        unary_train=370,
        join_train=550,
        static_train=100,
        test_count=100,
        join_tables=("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"),
        loadgen_shards=16,
        loadgen_rounds=32,
    )
