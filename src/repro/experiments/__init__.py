"""Experiment harness regenerating every table and figure of the paper.

One module per experiment (see DESIGN.md's per-experiment index); the
benchmarks under ``benchmarks/`` are thin drivers over these runners.
"""

from .cache import DiskCache, default_cache_dir, task_digest
from .config import ExperimentConfig, full, quick, tiny
from .figure1 import FIGURE1_SQL, Figure1Result, run_figure1
from .figures4_9 import (
    FIGURE_LAYOUT,
    FigureResult,
    render_figure,
    run_all_figures,
    run_figure,
    tracking_error,
)
from .harness import (
    ClassExperimentResult,
    TestPoint,
    cache_stats,
    cache_summary,
    cached_class_experiment,
    clear_cache,
    collect_for_algorithm,
    run_class_experiment,
    set_disk_cache,
    stable_seed,
)
from .model_forms import ModelFormsResult, render_model_forms, run_model_forms
from .plan_quality import (
    PlanQualityResult,
    PlanQualityRound,
    render_plan_quality,
    render_probe_cache_quality,
    run_plan_quality,
    run_probe_cache_quality,
)
from .probing_estimation import (
    ProbingEstimationResult,
    render_probing_estimation,
    run_probing_estimation,
)
from .report import ascii_histogram, format_series, format_table
from .runner import (
    ExperimentTask,
    RunnerReport,
    enumerate_class_tasks,
    run_experiments,
    task_seed,
)
from .sample_size_ablation import (
    SampleSizeAblationResult,
    render_sample_size_ablation,
    run_sample_size_ablation,
)
from .states_ablation import (
    StatesAblationResult,
    render_states_ablation,
    run_states_ablation,
)
from .table4 import TABLE4_CLASSES, TABLE4_PROFILES, Table4Row, render_table4, run_table4
from .table5 import Table5Row, render_table5, run_table5, shape_violations
from .table6 import (
    Table6Result,
    Table6Row,
    render_figure10,
    render_table6,
    run_table6,
)

__all__ = [
    "ClassExperimentResult",
    "DiskCache",
    "ExperimentConfig",
    "ExperimentTask",
    "FIGURE1_SQL",
    "FIGURE_LAYOUT",
    "Figure1Result",
    "FigureResult",
    "ModelFormsResult",
    "PlanQualityResult",
    "PlanQualityRound",
    "ProbingEstimationResult",
    "SampleSizeAblationResult",
    "StatesAblationResult",
    "TABLE4_CLASSES",
    "TABLE4_PROFILES",
    "RunnerReport",
    "Table4Row",
    "Table5Row",
    "Table6Result",
    "Table6Row",
    "TestPoint",
    "ascii_histogram",
    "cache_stats",
    "cache_summary",
    "cached_class_experiment",
    "clear_cache",
    "collect_for_algorithm",
    "default_cache_dir",
    "enumerate_class_tasks",
    "format_series",
    "format_table",
    "full",
    "quick",
    "run_experiments",
    "set_disk_cache",
    "stable_seed",
    "task_digest",
    "task_seed",
    "tiny",
    "render_figure",
    "render_figure10",
    "render_model_forms",
    "render_plan_quality",
    "render_probe_cache_quality",
    "render_probing_estimation",
    "render_sample_size_ablation",
    "render_states_ablation",
    "render_table4",
    "render_table5",
    "render_table6",
    "run_all_figures",
    "run_class_experiment",
    "run_figure",
    "run_figure1",
    "run_model_forms",
    "run_plan_quality",
    "run_probe_cache_quality",
    "run_probing_estimation",
    "run_sample_size_ablation",
    "run_states_ablation",
    "run_table4",
    "run_table5",
    "run_table6",
]
