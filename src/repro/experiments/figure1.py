"""Figure 1: effect of the dynamic factor on query cost.

The paper fixes one query — ``SELECT a1, a5, a7 FROM R7 WHERE a3 > 300
AND a8 < 2000`` on a 50,000-tuple table — and sweeps the number of
concurrent processes on the host from ~50 to ~130, observing the elapsed
time climb from 3.80 s to 124.02 s (a ~33x swing).

We reproduce the sweep by holding the contention level constant at each
process count (via the load builder) and executing the same query.  The
assertion of interest is the *shape*: monotone, superlinear growth with a
swing of the same order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.database import LocalDatabase
from ..engine.profiles import ORACLE_LIKE
from ..env.contention import PROCESS_BASELINE, PROCESS_SPAN, processes_to_level
from ..env.loadbuilder import LoadBuilder
from ..workload.scenarios import make_site
from .config import ExperimentConfig

#: The paper's Figure-1 query.
FIGURE1_SQL = "select a1, a5, a7 from R7 where a3 > 300 and a8 < 2000"


@dataclass
class Figure1Result:
    """The sweep's series plus summary statistics."""

    process_counts: list[int]
    costs: list[float]

    @property
    def min_cost(self) -> float:
        return min(self.costs)

    @property
    def max_cost(self) -> float:
        return max(self.costs)

    @property
    def swing(self) -> float:
        """max/min cost ratio (the paper observed ~33x)."""
        return self.max_cost / self.min_cost if self.min_cost > 0 else float("inf")


def run_figure1(
    config: ExperimentConfig | None = None,
    num_points: int = 9,
    repeats: int = 3,
) -> Figure1Result:
    """Sweep concurrent processes, observing the Figure-1 query's cost."""
    config = config or ExperimentConfig()
    site = make_site(
        "figure1_site",
        profile=ORACLE_LIKE,
        environment_kind="static",
        scale=config.scale,
        seed=config.seed,
        noise_sigma=0.03,
    )
    database: LocalDatabase = site.database
    loads = LoadBuilder(site.environment)

    counts: list[int] = []
    costs: list[float] = []
    for i in range(num_points):
        processes = PROCESS_BASELINE + round(i * PROCESS_SPAN / (num_points - 1))
        loads.constant(processes_to_level(processes))
        # Average a few executions, like repeated stopwatch readings.
        samples = [database.execute(FIGURE1_SQL).elapsed for _ in range(repeats)]
        counts.append(processes)
        costs.append(sum(samples) / len(samples))
    return Figure1Result(process_counts=counts, costs=costs)
