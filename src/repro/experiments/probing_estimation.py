"""Probing-cost estimation ablation (§3.3's "Probing costs estimation").

Instead of executing the probing query, estimate its cost from system
statistics via eq. (2): cheaper per state determination, at the price of
estimation error.  This experiment:

1. calibrates a :class:`~repro.core.probing.ProbingCostEstimator` on the
   dynamic site;
2. measures the estimator's own accuracy against fresh observed probing
   costs;
3. re-validates a multi-states model on the same test queries with the
   state resolved from *estimated* probing costs, quantifying the
   accuracy the estimation variant gives up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.builder import CostModelBuilder
from ..core.classification import G1, QueryClass
from ..core.probing import ProbingCostEstimator
from ..core.validation import ValidationReport, validate_model
from ..core.variables import Observation, extract_variables
from ..engine.profiles import DBMSProfile, ORACLE_LIKE
from ..env.monitor import EnvironmentMonitor
from ..workload.scenarios import make_site
from .config import ExperimentConfig
from .report import format_table


@dataclass
class ProbingEstimationResult:
    profile: str
    class_label: str
    #: R² of the eq. (2) regression itself.
    estimator_r_squared: float
    selected_parameters: tuple[str, ...]
    #: Model accuracy with states from observed vs estimated probing costs.
    report_observed: ValidationReport
    report_estimated: ValidationReport


def run_probing_estimation(
    config: ExperimentConfig | None = None,
    profile: DBMSProfile = ORACLE_LIKE,
    query_class: QueryClass = G1,
    calibration_samples: int = 80,
) -> ProbingEstimationResult:
    config = config or ExperimentConfig()
    site = make_site(
        f"{profile.name}_probe_est",
        profile=profile,
        environment_kind="uniform",
        scale=config.scale,
        seed=config.seed,
    )
    builder = CostModelBuilder(site.database, config=config.builder)

    # Calibrate eq. (2) on (statistics snapshot, observed probe cost) pairs.
    estimator = ProbingCostEstimator()
    monitor = EnvironmentMonitor(site.environment)
    estimator.calibrate(builder.probe, monitor, samples=calibration_samples)

    # Train the multi-states model as usual (observed probing costs).
    train = builder.collect(
        site.generator.queries_for(
            query_class, config.train_count(query_class.family)
        )
    )
    outcome = builder.build_from_observations(train, query_class, "iupma")

    # Test twice: states from observed probes vs from estimated probes.
    test_queries = site.generator.queries_for(query_class, config.test_count)
    test_observed: list[Observation] = []
    test_estimated: list[Observation] = []
    for query in test_queries:
        estimated_probe = estimator.estimate(monitor.statistics())
        observed_probe = builder.probe.observe()
        result = site.database.execute(query)
        base = dict(
            cost=result.elapsed,
            values=extract_variables(result),
            contention_level=result.contention_level,
        )
        test_observed.append(Observation(probing_cost=observed_probe, **base))
        test_estimated.append(Observation(probing_cost=estimated_probe, **base))
        site.environment.advance(config.builder.sampling.pause_seconds)

    return ProbingEstimationResult(
        profile=profile.name,
        class_label=query_class.label,
        estimator_r_squared=estimator.fit.r_squared,
        selected_parameters=estimator.selected_parameters,
        report_observed=validate_model(outcome.model, test_observed),
        report_estimated=validate_model(outcome.model, test_estimated),
    )


def render_probing_estimation(result: ProbingEstimationResult) -> str:
    headers = ("probing costs", "very good %", "good %", "mean rel err")
    rows = [
        (
            "observed",
            result.report_observed.pct_very_good,
            result.report_observed.pct_good,
            result.report_observed.mean_relative_error,
        ),
        (
            "estimated (eq. 2)",
            result.report_estimated.pct_very_good,
            result.report_estimated.pct_good,
            result.report_estimated.mean_relative_error,
        ),
    ]
    title = (
        f"Probing-cost estimation ablation: {result.class_label} on "
        f"{result.profile} — eq. (2) R2={result.estimator_r_squared:.3f}, "
        f"parameters={list(result.selected_parameters)}"
    )
    return format_table(headers, rows, title=title)
