"""The shared experiment harness behind the table/figure reproductions.

One *class experiment* (the unit behind Tables 4–5 and Figures 4–9)
derives, for a given (DBMS profile, query class):

* the **multi-states** cost model (IUPMA on dynamic-environment samples);
* the **one-state** model — Static Approach 2 (the static method applied
  to the same dynamic samples);
* the **static** model — Static Approach 1 (the static method applied to
  samples from a static environment over the *same* database);

then validates all three on held-out test queries run in the dynamic
environment.  Results are cached per (profile, class, config) so the
table and figure benches can share one expensive run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.builder import BuildOutcome, CostModelBuilder
from ..core.classification import QueryClass
from ..core.model import MultiStateCostModel
from ..core.validation import ValidationReport, validate_model
from ..core.variables import Observation
from ..engine.profiles import DBMSProfile
from ..workload.scenarios import Site, make_site
from .config import ExperimentConfig


@dataclass
class TestPoint:
    """One test query's observed and estimated costs (for Figures 4–9)."""

    result_tuples: float
    observed: float
    estimated_multi: float
    estimated_one_state: float
    estimated_static: float


@dataclass
class ClassExperimentResult:
    """Everything Tables 4–5 and Figures 4–9 need for one (site, class)."""

    site: str
    profile: str
    query_class: QueryClass
    multi: BuildOutcome
    one_state: BuildOutcome
    static: BuildOutcome
    report_multi: ValidationReport
    report_one_state: ValidationReport
    report_static: ValidationReport
    test_points: list[TestPoint] = field(default_factory=list)

    @property
    def models(self) -> dict[str, MultiStateCostModel]:
        return {
            "multi-states": self.multi.model,
            "one-state": self.one_state.model,
            "static": self.static.model,
        }

    @property
    def reports(self) -> dict[str, ValidationReport]:
        return {
            "multi-states": self.report_multi,
            "one-state": self.report_one_state,
            "static": self.report_static,
        }


def stable_seed(base: int, *parts: str) -> int:
    """A per-task seed derived from a stable key, not execution order.

    Every site a class experiment builds seeds its RNGs from
    ``stable_seed(config.seed, profile_name)``, so a task's random
    universe is a pure function of its identity — the contract that lets
    the parallel runner execute tasks in any order, on any worker, and
    still reproduce the serial run bit for bit.
    """
    return base + (zlib.crc32("/".join(parts).encode()) % 1000)


def stable_rng(base: int, *parts: str) -> np.random.Generator:
    """A generator seeded by :func:`stable_seed` — identity, not order.

    The load-generation shards draw their query streams from this, so a
    shard's randomness is a pure function of (config seed, shard key)
    no matter which worker process runs it.
    """
    return np.random.default_rng(stable_seed(base, *parts))


def _sites_for_profile(
    profile: DBMSProfile, config: ExperimentConfig
) -> tuple[Site, Site]:
    """A dynamic site and a static twin holding the identical database."""
    seed = stable_seed(config.seed, profile.name)
    dynamic = make_site(
        f"{profile.name}_dyn",
        profile=profile,
        environment_kind="uniform",
        scale=config.scale,
        seed=seed,
        buffer_pages=config.buffer_pages,
    )
    static = make_site(
        f"{profile.name}_static",
        profile=profile,
        environment_kind="static",
        scale=config.scale,
        seed=seed,  # same seed -> identical tables
        buffer_pages=config.buffer_pages,
    )
    return dynamic, static


def _tables_for(query_class: QueryClass, config: ExperimentConfig):
    if query_class.family == "join":
        return config.join_tables
    return None


def run_class_experiment(
    profile: DBMSProfile,
    query_class: QueryClass,
    config: ExperimentConfig,
    environment_kind: str = "uniform",
    algorithm: str = "iupma",
) -> ClassExperimentResult:
    """Derive and validate the three models for one (profile, class)."""
    with obs.span(
        "experiments.class_experiment",
        profile=profile.name,
        query_class=query_class.label,
        algorithm=algorithm,
    ):
        return _run_class_experiment(
            profile, query_class, config, environment_kind, algorithm
        )


def _run_class_experiment(
    profile: DBMSProfile,
    query_class: QueryClass,
    config: ExperimentConfig,
    environment_kind: str,
    algorithm: str,
) -> ClassExperimentResult:
    seed = stable_seed(config.seed, profile.name)
    dynamic = make_site(
        f"{profile.name}_dyn",
        profile=profile,
        environment_kind=environment_kind,
        scale=config.scale,
        seed=seed,
        buffer_pages=config.buffer_pages,
    )
    static = make_site(
        f"{profile.name}_static",
        profile=profile,
        environment_kind="static",
        scale=config.scale,
        seed=seed,
        buffer_pages=config.buffer_pages,
    )
    tables = _tables_for(query_class, config)

    dyn_builder = CostModelBuilder(dynamic.database, config=config.builder)
    static_builder = CostModelBuilder(static.database, config=config.builder)

    train_queries = dynamic.generator.queries_for(
        query_class, config.train_count(query_class.family), tables=tables
    )
    train_obs = dyn_builder.collect(train_queries)

    test_queries = dynamic.generator.queries_for(
        query_class, config.test_count, tables=tables
    )
    test_obs = dyn_builder.collect(test_queries)

    static_queries = static.generator.queries_for(
        query_class, config.static_train, tables=tables
    )
    static_obs = static_builder.collect(static_queries)

    multi = dyn_builder.build_from_observations(train_obs, query_class, algorithm)
    one_state = dyn_builder.build_from_observations(train_obs, query_class, "static")
    static_outcome = static_builder.build_from_observations(
        static_obs, query_class, "static"
    )

    report_multi = validate_model(multi.model, test_obs)
    report_one = validate_model(one_state.model, test_obs)
    report_static = validate_model(static_outcome.model, test_obs)

    points = sorted(
        (
            TestPoint(
                result_tuples=obs.values["nr"],
                observed=obs.cost,
                estimated_multi=multi.model.predict(obs.values, obs.probing_cost),
                estimated_one_state=one_state.model.predict(
                    obs.values, obs.probing_cost
                ),
                estimated_static=static_outcome.model.predict(
                    obs.values, obs.probing_cost
                ),
            )
            for obs in test_obs
        ),
        key=lambda p: p.result_tuples,
    )

    return ClassExperimentResult(
        site=dynamic.name,
        profile=profile.name,
        query_class=query_class,
        multi=multi,
        one_state=one_state,
        static=static_outcome,
        report_multi=report_multi,
        report_one_state=report_one,
        report_static=report_static,
        test_points=points,
    )


# ---------------------------------------------------------------------------
# Cross-bench cache: in-process memo over an optional on-disk layer
# ---------------------------------------------------------------------------


class ExperimentCache:
    """In-process memo over an optional content-addressed disk cache.

    Hit/miss counts live on the cache object itself — the source of
    truth for :func:`cache_stats` — and are only *mirrored* into the
    :mod:`repro.obs` registry.  Reading them back from global obs
    counters would misreport after a registry reset and double-count
    when pooled workers merge their metrics into the parent's registry.
    """

    def __init__(self, disk=None) -> None:
        #: Optional :class:`repro.experiments.cache.DiskCache`.
        self.disk = disk
        self._memory: dict[tuple, ClassExperimentResult] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def reset_memory(self) -> None:
        """Forget memoized results and zero the counters (disk untouched)."""
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._memory)


_cache = ExperimentCache()


def get_cache() -> ExperimentCache:
    return _cache


def set_disk_cache(disk) -> object:
    """Attach a :class:`~repro.experiments.cache.DiskCache` (or None).

    Returns the previously attached disk cache so callers can restore it.
    """
    previous = _cache.disk
    _cache.disk = disk
    return previous


def _memory_key(
    profile: DBMSProfile,
    query_class: QueryClass,
    config: ExperimentConfig,
    environment_kind: str,
    algorithm: str,
) -> tuple:
    return (
        profile.name,
        query_class.label,
        environment_kind,
        algorithm,
        config.scale,
        config.seed,
        config.unary_train,
        config.join_train,
        config.static_train,
        config.test_count,
        config.join_tables,
        config.buffer_pages,
    )


def seed_cache(
    profile: DBMSProfile,
    query_class: QueryClass,
    config: ExperimentConfig,
    result: ClassExperimentResult,
    environment_kind: str = "uniform",
    algorithm: str = "iupma",
) -> None:
    """Hand a precomputed result to the memo (used by the parallel runner)."""
    key = _memory_key(profile, query_class, config, environment_kind, algorithm)
    _cache._memory[key] = result


def cached_class_experiment(
    profile: DBMSProfile,
    query_class: QueryClass,
    config: ExperimentConfig,
    environment_kind: str = "uniform",
    algorithm: str = "iupma",
) -> ClassExperimentResult:
    """Memoized :func:`run_class_experiment` (shared across benches).

    Lookup order: in-process memo, then the attached disk cache (if
    any), then compute — and a computed result is written back to disk
    so interrupted or future runs resume for free.
    """
    key = _memory_key(profile, query_class, config, environment_kind, algorithm)
    result = _cache._memory.get(key)
    if result is not None:
        _cache.hits += 1
        obs.inc("experiments.cache.hits")
        return result

    digest = None
    if _cache.disk is not None:
        from .cache import task_digest

        digest = task_digest(
            profile.name, query_class.label, config, environment_kind, algorithm
        )
        result = _cache.disk.get(digest)
        if result is not None:
            _cache.hits += 1
            _cache.disk_hits += 1
            obs.inc("experiments.cache.hits")
            _cache._memory[key] = result
            return result

    _cache.misses += 1
    obs.inc("experiments.cache.misses")
    result = run_class_experiment(
        profile, query_class, config, environment_kind, algorithm
    )
    _cache._memory[key] = result
    if _cache.disk is not None:
        _cache.disk.put(digest, result)
    return result


def clear_cache() -> None:
    """Reset the in-process memo and its counters (disk entries persist)."""
    _cache.reset_memory()


def cache_stats() -> tuple[int, int]:
    """(hits, misses) of the class-experiment cache so far this process."""
    return (_cache.hits, _cache.misses)


def cache_summary() -> str:
    """A one-line description of cache behaviour (for bench logs)."""
    hits, misses = cache_stats()
    lookups = hits + misses
    rate = 100.0 * hits / lookups if lookups else 0.0
    line = (
        f"[experiment cache] {hits} hits / {misses} misses "
        f"({lookups} lookups, {rate:.0f}% hit rate, {len(_cache)} entries"
    )
    if _cache.disk is not None:
        line += f", {_cache.disk_hits} from disk"
    return line + ")"


def collect_for_algorithm(
    profile: DBMSProfile,
    query_class: QueryClass,
    config: ExperimentConfig,
    environment_kind: str,
    algorithm: str,
) -> tuple[BuildOutcome, ValidationReport, list[Observation]]:
    """Train one model with *algorithm* and validate it (Table 6 helper)."""
    seed = stable_seed(config.seed, profile.name)
    site = make_site(
        f"{profile.name}_{environment_kind}",
        profile=profile,
        environment_kind=environment_kind,
        scale=config.scale,
        seed=seed,
        buffer_pages=config.buffer_pages,
    )
    tables = _tables_for(query_class, config)
    builder = CostModelBuilder(site.database, config=config.builder)
    train = builder.collect(
        site.generator.queries_for(
            query_class, config.train_count(query_class.family), tables=tables
        )
    )
    test = builder.collect(
        site.generator.queries_for(query_class, config.test_count, tables=tables)
    )
    outcome = builder.build_from_observations(train, query_class, algorithm)
    report = validate_model(outcome.model, test)
    return outcome, report, test


def rng_for(config: ExperimentConfig, salt: int = 0) -> np.random.Generator:
    """A seeded generator derived from the experiment seed."""
    return np.random.default_rng(config.seed * 10_007 + salt)
