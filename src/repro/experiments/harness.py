"""The shared experiment harness behind the table/figure reproductions.

One *class experiment* (the unit behind Tables 4–5 and Figures 4–9)
derives, for a given (DBMS profile, query class):

* the **multi-states** cost model (IUPMA on dynamic-environment samples);
* the **one-state** model — Static Approach 2 (the static method applied
  to the same dynamic samples);
* the **static** model — Static Approach 1 (the static method applied to
  samples from a static environment over the *same* database);

then validates all three on held-out test queries run in the dynamic
environment.  Results are cached per (profile, class, config) so the
table and figure benches can share one expensive run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import zlib

import numpy as np

from .. import obs
from ..core.builder import BuildOutcome, CostModelBuilder
from ..core.classification import QueryClass
from ..core.model import MultiStateCostModel
from ..core.validation import ValidationReport, validate_model
from ..core.variables import Observation
from ..engine.profiles import DBMSProfile
from ..workload.scenarios import Site, make_site
from .config import ExperimentConfig


@dataclass
class TestPoint:
    """One test query's observed and estimated costs (for Figures 4–9)."""

    result_tuples: float
    observed: float
    estimated_multi: float
    estimated_one_state: float
    estimated_static: float


@dataclass
class ClassExperimentResult:
    """Everything Tables 4–5 and Figures 4–9 need for one (site, class)."""

    site: str
    profile: str
    query_class: QueryClass
    multi: BuildOutcome
    one_state: BuildOutcome
    static: BuildOutcome
    report_multi: ValidationReport
    report_one_state: ValidationReport
    report_static: ValidationReport
    test_points: list[TestPoint] = field(default_factory=list)

    @property
    def models(self) -> dict[str, MultiStateCostModel]:
        return {
            "multi-states": self.multi.model,
            "one-state": self.one_state.model,
            "static": self.static.model,
        }

    @property
    def reports(self) -> dict[str, ValidationReport]:
        return {
            "multi-states": self.report_multi,
            "one-state": self.report_one_state,
            "static": self.report_static,
        }


def _sites_for_profile(
    profile: DBMSProfile, config: ExperimentConfig
) -> tuple[Site, Site]:
    """A dynamic site and a static twin holding the identical database."""
    seed = config.seed + (zlib.crc32(profile.name.encode()) % 1000)
    dynamic = make_site(
        f"{profile.name}_dyn",
        profile=profile,
        environment_kind="uniform",
        scale=config.scale,
        seed=seed,
    )
    static = make_site(
        f"{profile.name}_static",
        profile=profile,
        environment_kind="static",
        scale=config.scale,
        seed=seed,  # same seed -> identical tables
    )
    return dynamic, static


def _tables_for(query_class: QueryClass, config: ExperimentConfig):
    if query_class.family == "join":
        return config.join_tables
    return None


def run_class_experiment(
    profile: DBMSProfile,
    query_class: QueryClass,
    config: ExperimentConfig,
    environment_kind: str = "uniform",
    algorithm: str = "iupma",
) -> ClassExperimentResult:
    """Derive and validate the three models for one (profile, class)."""
    with obs.span(
        "experiments.class_experiment",
        profile=profile.name,
        query_class=query_class.label,
        algorithm=algorithm,
    ):
        return _run_class_experiment(
            profile, query_class, config, environment_kind, algorithm
        )


def _run_class_experiment(
    profile: DBMSProfile,
    query_class: QueryClass,
    config: ExperimentConfig,
    environment_kind: str,
    algorithm: str,
) -> ClassExperimentResult:
    seed = config.seed + (zlib.crc32(profile.name.encode()) % 1000)
    dynamic = make_site(
        f"{profile.name}_dyn",
        profile=profile,
        environment_kind=environment_kind,
        scale=config.scale,
        seed=seed,
    )
    static = make_site(
        f"{profile.name}_static",
        profile=profile,
        environment_kind="static",
        scale=config.scale,
        seed=seed,
    )
    tables = _tables_for(query_class, config)

    dyn_builder = CostModelBuilder(dynamic.database, config=config.builder)
    static_builder = CostModelBuilder(static.database, config=config.builder)

    train_queries = dynamic.generator.queries_for(
        query_class, config.train_count(query_class.family), tables=tables
    )
    train_obs = dyn_builder.collect(train_queries)

    test_queries = dynamic.generator.queries_for(
        query_class, config.test_count, tables=tables
    )
    test_obs = dyn_builder.collect(test_queries)

    static_queries = static.generator.queries_for(
        query_class, config.static_train, tables=tables
    )
    static_obs = static_builder.collect(static_queries)

    multi = dyn_builder.build_from_observations(train_obs, query_class, algorithm)
    one_state = dyn_builder.build_from_observations(train_obs, query_class, "static")
    static_outcome = static_builder.build_from_observations(
        static_obs, query_class, "static"
    )

    report_multi = validate_model(multi.model, test_obs)
    report_one = validate_model(one_state.model, test_obs)
    report_static = validate_model(static_outcome.model, test_obs)

    points = sorted(
        (
            TestPoint(
                result_tuples=obs.values["nr"],
                observed=obs.cost,
                estimated_multi=multi.model.predict(obs.values, obs.probing_cost),
                estimated_one_state=one_state.model.predict(
                    obs.values, obs.probing_cost
                ),
                estimated_static=static_outcome.model.predict(
                    obs.values, obs.probing_cost
                ),
            )
            for obs in test_obs
        ),
        key=lambda p: p.result_tuples,
    )

    return ClassExperimentResult(
        site=dynamic.name,
        profile=profile.name,
        query_class=query_class,
        multi=multi,
        one_state=one_state,
        static=static_outcome,
        report_multi=report_multi,
        report_one_state=report_one,
        report_static=report_static,
        test_points=points,
    )


# ---------------------------------------------------------------------------
# Cross-bench cache
# ---------------------------------------------------------------------------

_CACHE: dict[tuple, ClassExperimentResult] = {}


def cached_class_experiment(
    profile: DBMSProfile,
    query_class: QueryClass,
    config: ExperimentConfig,
    environment_kind: str = "uniform",
    algorithm: str = "iupma",
) -> ClassExperimentResult:
    """Memoized :func:`run_class_experiment` (shared across benches)."""
    key = (
        profile.name,
        query_class.label,
        environment_kind,
        algorithm,
        config.scale,
        config.seed,
        config.unary_train,
        config.join_train,
        config.static_train,
        config.test_count,
        config.join_tables,
    )
    if key in _CACHE:
        obs.inc("experiments.cache.hits")
    else:
        obs.inc("experiments.cache.misses")
        _CACHE[key] = run_class_experiment(
            profile, query_class, config, environment_kind, algorithm
        )
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()


def cache_stats() -> tuple[int, int]:
    """(hits, misses) of the class-experiment cache so far this process."""
    registry = obs.get_registry()
    return (
        int(registry.counter_value("experiments.cache.hits")),
        int(registry.counter_value("experiments.cache.misses")),
    )


def cache_summary() -> str:
    """A one-line description of cache behaviour (for bench logs)."""
    hits, misses = cache_stats()
    lookups = hits + misses
    rate = 100.0 * hits / lookups if lookups else 0.0
    return (
        f"[experiment cache] {hits} hits / {misses} misses "
        f"({lookups} lookups, {rate:.0f}% hit rate, {len(_CACHE)} entries)"
    )


def collect_for_algorithm(
    profile: DBMSProfile,
    query_class: QueryClass,
    config: ExperimentConfig,
    environment_kind: str,
    algorithm: str,
) -> tuple[BuildOutcome, ValidationReport, list[Observation]]:
    """Train one model with *algorithm* and validate it (Table 6 helper)."""
    seed = config.seed + (zlib.crc32(profile.name.encode()) % 1000)
    site = make_site(
        f"{profile.name}_{environment_kind}",
        profile=profile,
        environment_kind=environment_kind,
        scale=config.scale,
        seed=seed,
    )
    tables = _tables_for(query_class, config)
    builder = CostModelBuilder(site.database, config=config.builder)
    train = builder.collect(
        site.generator.queries_for(
            query_class, config.train_count(query_class.family), tables=tables
        )
    )
    test = builder.collect(
        site.generator.queries_for(query_class, config.test_count, tables=tables)
    )
    outcome = builder.build_from_observations(train, query_class, algorithm)
    report = validate_model(outcome.model, test)
    return outcome, report, test


def rng_for(config: ExperimentConfig, salt: int = 0) -> np.random.Generator:
    """A seeded generator derived from the experiment seed."""
    return np.random.default_rng(config.seed * 10_007 + salt)
