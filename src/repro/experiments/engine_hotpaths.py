"""Raw-speed bench for the engine's hot paths: scalar vs vectorized,
cold vs warm buffer pool.

The repo's first *microbenchmark* baseline.  Every case runs the same
operation twice — once forced through the scalar reference path, once
through the numpy-batched path (:mod:`repro.engine.vectorize`) — over
identical inputs, asserting the outputs match before any timing is
trusted.  A second set of cases replays access paths through a
:class:`~repro.engine.buffer.BufferPool` and reports how physical I/O
collapses between a cold and a warm cache.

Determinism note: like the serving bench, the rendered table contains
only scheduling-independent facts (row counts, result cardinalities,
page ledgers, hit rates).  Wall-clock timings and speedups go to the
JSON payload (``BENCH_engine_hotpaths.json``) and stderr.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..engine import vectorize
from ..engine.access import seq_scan
from ..engine.buffer import BufferPool
from ..engine.histogram import EquiDepthHistogram
from ..engine.joins import hash_join, sort_merge_join
from ..engine.predicate import And, Comparison
from ..engine.query import JoinQuery, SelectQuery
from ..engine.schema import Column, TableSchema
from ..engine.table import Table
from ..engine.types import DataType
from .config import ExperimentConfig
from .report import format_table

#: Timing repetitions per path; the minimum is reported (classic
#: best-of-k, robust against scheduler noise).
REPEATS = 3

#: Histogram buckets for the build microbenchmark.
HISTOGRAM_BUCKETS = 32


@dataclass
class HotpathCase:
    """One scalar-vs-vectorized microbenchmark."""

    name: str
    rows: int
    output_cardinality: int
    scalar_seconds: float
    vectorized_seconds: float
    repeats: int = REPEATS

    @property
    def speedup(self) -> float:
        if self.vectorized_seconds <= 0.0:
            return 0.0
        return self.scalar_seconds / self.vectorized_seconds


@dataclass
class BufferCase:
    """One cold-vs-warm buffer-pool replay of an access path."""

    name: str
    logical_reads: int
    cold_physical_reads: int
    warm_physical_reads: int
    warm_hit_rate: float
    hit_state: str


@dataclass
class EngineHotpathsResult:
    scan_rows: int
    join_rows: int
    cases: list[HotpathCase] = field(default_factory=list)
    buffer_cases: list[BufferCase] = field(default_factory=list)

    def case(self, name: str) -> HotpathCase:
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(name)

    def buffer_case(self, name: str) -> BufferCase:
        for case in self.buffer_cases:
            if case.name == name:
                return case
        raise KeyError(name)


def _scan_table(rows: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    table = Table(
        TableSchema(
            "H",
            [
                Column("a", DataType.INT),
                Column("b", DataType.INT),
                Column("c", DataType.FLOAT),
            ],
        )
    )
    table.bulk_load(
        zip(
            (int(v) for v in rng.integers(0, 10_000, rows)),
            (int(v) for v in rng.integers(0, 100, rows)),
            (float(v) for v in rng.random(rows)),
        )
    )
    table.analyze()
    return table


def _join_table(name: str, rows: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    table = Table(
        TableSchema(
            name, [Column("k", DataType.INT), Column("v", DataType.INT)]
        )
    )
    # ~4 matches per key on average keeps the pair count linear in rows.
    table.bulk_load(
        zip(
            (int(v) for v in rng.integers(0, max(1, rows // 2), rows)),
            (int(v) for v in rng.integers(0, 1_000_000, rows)),
        )
    )
    table.analyze()
    return table


def _time_paths(operation) -> tuple[float, float, object, object]:
    """Best-of-:data:`REPEATS` seconds for (scalar, vectorized) runs."""

    def best(context) -> tuple[float, object]:
        seconds, result = float("inf"), None
        for _ in range(REPEATS):
            with context():
                started = time.perf_counter()
                result = operation()
                seconds = min(seconds, time.perf_counter() - started)
        return seconds, result

    scalar_seconds, scalar_result = best(vectorize.force_scalar)
    vector_seconds, vector_result = best(vectorize.force_vectorized)
    return scalar_seconds, vector_seconds, scalar_result, vector_result


def run_engine_hotpaths(
    config: ExperimentConfig | None = None,
    scan_rows: int | None = None,
    join_rows: int | None = None,
) -> EngineHotpathsResult:
    """Run every microbenchmark; sizes scale with the preset unless given."""
    config = config or ExperimentConfig()
    if scan_rows is None:
        scan_rows = max(2_000, int(6_000_000 * config.scale))
    if join_rows is None:
        join_rows = max(1_000, int(1_200_000 * config.scale))
    result = EngineHotpathsResult(scan_rows=scan_rows, join_rows=join_rows)

    # -- seq scan: predicate evaluation over every row -------------------
    scan_table = _scan_table(scan_rows, seed=config.seed + 11)
    scan_query = SelectQuery(
        "H",
        ("a", "b"),
        And(Comparison("a", "<", 5_000), Comparison("b", ">=", 10)),
    )
    s, v, scalar_out, vector_out = _time_paths(
        lambda: seq_scan(scan_table, scan_query)
    )
    assert vector_out.result.rows == scalar_out.result.rows
    result.cases.append(
        HotpathCase("seq_scan", scan_rows, scalar_out.result.cardinality, s, v)
    )

    # -- joins: operand reduction + equi-key matching --------------------
    left = _join_table("L", join_rows, seed=config.seed + 21)
    right = _join_table("R", join_rows, seed=config.seed + 22)
    join_query = JoinQuery("L", "R", "k", "k", ("L.v", "R.v"))
    for name, method in (("hash_join", hash_join), ("sort_merge_join", sort_merge_join)):
        s, v, scalar_out, vector_out = _time_paths(
            lambda method=method: method(left, right, join_query)
        )
        assert vector_out.result.rows == scalar_out.result.rows
        result.cases.append(
            HotpathCase(
                name, 2 * join_rows, scalar_out.result.cardinality, s, v
            )
        )

    # -- histogram build: duplicate-run scanning -------------------------
    values = scan_table.column_values("a")
    s, v, scalar_out, vector_out = _time_paths(
        lambda: EquiDepthHistogram.build(values, HISTOGRAM_BUCKETS)
    )
    assert vector_out == scalar_out
    result.cases.append(
        HotpathCase("histogram_build", scan_rows, scalar_out.num_buckets, s, v)
    )

    # -- buffer pool: physical I/O cold vs warm --------------------------
    pool = BufferPool(capacity_pages=max(64, 2 * scan_table.num_pages))
    cold = seq_scan(scan_table, scan_query, pool)
    warm = seq_scan(scan_table, scan_query, pool)
    assert warm.result.rows == cold.result.rows
    result.buffer_cases.append(
        BufferCase(
            "seq_scan",
            logical_reads=warm.metrics.logical_page_reads,
            cold_physical_reads=cold.metrics.total_page_reads,
            warm_physical_reads=warm.metrics.total_page_reads,
            warm_hit_rate=warm.metrics.buffer_hit_rate,
            hit_state=pool.hit_state(),
        )
    )
    join_pool = BufferPool(
        capacity_pages=max(64, 2 * (left.num_pages + right.num_pages))
    )
    cold_join = hash_join(left, right, join_query, join_pool)
    warm_join = hash_join(left, right, join_query, join_pool)
    result.buffer_cases.append(
        BufferCase(
            "hash_join",
            logical_reads=warm_join.metrics.logical_page_reads,
            cold_physical_reads=cold_join.metrics.total_page_reads,
            warm_physical_reads=warm_join.metrics.total_page_reads,
            warm_hit_rate=warm_join.metrics.buffer_hit_rate,
            hit_state=join_pool.hit_state(),
        )
    )
    return result


def render_engine_hotpaths(result: EngineHotpathsResult) -> str:
    """Byte-stable tables: input/output sizes and the page ledgers."""
    case_rows = [
        (case.name, case.rows, case.output_cardinality) for case in result.cases
    ]
    lines = [
        format_table(
            ["case", "input rows", "output"],
            case_rows,
            title=(
                "Engine hot paths: scalar and vectorized produce identical "
                "results on every case"
            ),
        ),
        "",
        format_table(
            ["access path", "logical reads", "cold physical", "warm physical",
             "warm hit rate", "state"],
            [
                (
                    case.name,
                    case.logical_reads,
                    case.cold_physical_reads,
                    case.warm_physical_reads,
                    case.warm_hit_rate,
                    case.hit_state,
                )
                for case in result.buffer_cases
            ],
            title="Buffer pool: physical I/O, cold vs warm",
        ),
    ]
    return "\n".join(lines)


def render_engine_timings(result: EngineHotpathsResult) -> str:
    """The wall-clock side (diagnostics; NOT byte-stable across runs)."""
    lines = [
        f"{case.name}: scalar {case.scalar_seconds * 1e3:.1f}ms  "
        f"vectorized {case.vectorized_seconds * 1e3:.1f}ms  "
        f"speedup {case.speedup:.2f}x"
        for case in result.cases
    ]
    return "\n".join(lines)


def engine_hotpaths_payload(result: EngineHotpathsResult) -> dict:
    """The ``BENCH_engine_hotpaths.json`` payload (see EXPERIMENTS.md)."""
    return {
        "bench": "engine_hotpaths",
        "schema_version": 1,
        "scan_rows": result.scan_rows,
        "join_rows": result.join_rows,
        "repeats": REPEATS,
        "cases": [
            {
                "name": case.name,
                "rows": case.rows,
                "output_cardinality": case.output_cardinality,
                "scalar_seconds": case.scalar_seconds,
                "vectorized_seconds": case.vectorized_seconds,
                "speedup": case.speedup,
            }
            for case in result.cases
        ],
        "buffer": [
            {
                "name": case.name,
                "logical_reads": case.logical_reads,
                "cold_physical_reads": case.cold_physical_reads,
                "warm_physical_reads": case.warm_physical_reads,
                "warm_hit_rate": case.warm_hit_rate,
                "hit_state": case.hit_state,
            }
            for case in result.buffer_cases
        ],
    }
