"""Loadgen scale bench: the coordinator/worker harness up a worker ladder.

One training pass derives the shared G1/G3 models; the same fixed shard
list (scenarios + fault plan from the experiment config) then runs at
every rung of the worker ladder — 1, 2, 4, 8 processes by default.  The
shard list never changes with ``--workers``, so the merged aggregate is
the *same work* at every rung; the bench proves it by comparing the
canonical JSON of every rung's aggregate byte for byte.

What each side of the output carries:

* **stdout** (deterministic, byte-identical across runs and worker
  counts): request counts, simulated-latency percentiles, drift events
  by rule, the per-shard detect/recover loop timelines, and the
  determinism verdict itself;
* **stderr / JSON payload** (wall clock, varies run to run): per-rung
  wall seconds, aggregate QPS, and wall-latency percentiles — the
  scaling curve ``BENCH_loadgen_scale.json`` exists to record.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..loadgen import (
    Coordinator,
    LoadGenConfig,
    LoadGenReport,
    default_loadgen_config,
)
from .config import ExperimentConfig
from .report import format_table

#: Default process-count ladder; ``--workers N`` truncates it at N.
WORKER_LADDER = (1, 2, 4, 8)

#: Payload schema version (BENCH_loadgen_scale.json).
BENCH_SCHEMA_VERSION = 1


@dataclass
class LoadGenScaleResult:
    """The full ladder: one report per rung over identical shards."""

    config: LoadGenConfig
    fault_plan: str
    reports: list[LoadGenReport] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        """True iff every rung's aggregate JSON is byte-identical."""
        payloads = {r.deterministic_payload() for r in self.reports}
        return len(payloads) == 1

    @property
    def traced(self) -> bool:
        return self.config.trace_sample_rate > 0.0

    @property
    def trace_deterministic(self) -> bool:
        """True iff every rung's merged trace JSONL is byte-identical."""
        traces = {r.merged_trace() for r in self.reports}
        return len(traces) == 1

    def aggregate(self) -> dict:
        """The (worker-count invariant) aggregate, from the first rung."""
        if not self.reports:
            raise ValueError("no rungs ran")
        return self.reports[0].aggregate()

    def rung(self, workers: int) -> LoadGenReport:
        for report in self.reports:
            if report.workers == workers:
                return report
        raise KeyError(workers)

    @property
    def baseline_qps(self) -> float:
        stats = self.rung(1).wall_stats()
        return stats["qps"]

    def speedup(self, workers: int) -> float:
        base = self.baseline_qps
        return self.rung(workers).wall_stats()["qps"] / base if base > 0 else 0.0


def ladder_for(workers: int | None, shards: int) -> tuple[int, ...]:
    """The rungs to run: the default ladder capped at *workers*.

    More processes than shards cannot help (the pool is capped there
    anyway), so the ladder also stops at the shard count — except rung 1,
    which always runs as the serial reference.
    """
    cap = workers if workers is not None else WORKER_LADDER[-1]
    if cap < 1:
        raise ValueError("workers must be >= 1")
    rungs = [w for w in WORKER_LADDER if w <= min(cap, shards)]
    if not rungs:
        rungs = [1]
    if cap not in rungs and 1 < cap <= shards and cap not in WORKER_LADDER:
        rungs.append(cap)
    return tuple(rungs)


def run_loadgen_scale(
    config: ExperimentConfig | None = None,
    workers: int | None = None,
    fault_plan: str = "mixed",
    shards: int | None = None,
    rounds: int | None = None,
    trace_sample_rate: float = 0.0,
) -> LoadGenScaleResult:
    """Train once, then run the identical shard list at every rung."""
    config = config or ExperimentConfig()
    lg_config = default_loadgen_config(
        config, fault_plan=fault_plan, shards=shards, rounds=rounds
    )
    if trace_sample_rate > 0.0:
        lg_config = replace(lg_config, trace_sample_rate=trace_sample_rate)
    coordinator = Coordinator(lg_config)
    coordinator.train()
    result = LoadGenScaleResult(config=lg_config, fault_plan=fault_plan)
    for rung in ladder_for(workers, lg_config.shards):
        result.reports.append(coordinator.run(workers=rung))
    return result


def render_loadgen_scale(result: LoadGenScaleResult) -> str:
    """The deterministic side: identical across runs and worker counts."""
    aggregate = result.aggregate()
    latency = aggregate["latency_sim_seconds"]
    drift = aggregate["drift"]
    lines = [
        f"shards: {aggregate['shards']}  rounds: {result.config.rounds}  "
        f"fault plan: {result.fault_plan}",
        "scenarios: " + ", ".join(aggregate["scenarios"]),
        f"requests: {aggregate['requests']}  "
        f"completed: {aggregate['completed']}  "
        f"failed: {aggregate['failed']}",
        f"simulated latency: p50 {latency['p50']:.3f}s  "
        f"p95 {latency['p95']:.3f}s  p99 {latency['p99']:.3f}s",
        f"drift events: {drift['events']} "
        + "("
        + ", ".join(f"{rule}: {n}" for rule, n in drift["by_rule"].items())
        + ")"
        if drift["by_rule"]
        else f"drift events: {drift['events']}",
        f"rebuilds published: {drift['published']}",
    ]
    if drift["loops"]:
        headers = [
            "shard",
            "scenario",
            "onset",
            "detect",
            "cleared",
            "recovered",
            "detect latency",
            "recover latency",
        ]
        rows = []
        for shard, loop in sorted(drift["loops"].items(), key=lambda kv: int(kv[0])):
            def cell(value):
                return "-" if value is None else value

            rows.append(
                (
                    shard,
                    result.config.scenario_for(int(shard)),
                    cell(loop["onset_round"]),
                    cell(loop["detect_round"]),
                    cell(loop["cleared_round"]),
                    cell(loop["recover_round"]),
                    cell(loop["detect_latency_rounds"]),
                    cell(loop["recover_latency_rounds"]),
                )
            )
        lines.append(
            format_table(headers, rows, title="Drift loops (rounds)")
        )
    verdict = "byte-identical" if result.deterministic else "DIVERGED"
    rungs = ", ".join(str(r.workers) for r in result.reports)
    lines.append(f"aggregates across workers [{rungs}]: {verdict}")
    if result.traced:
        stats = result.reports[0].trace_stats()
        trace_verdict = (
            "byte-identical" if result.trace_deterministic else "DIVERGED"
        )
        lines.append(
            f"traces: sampled {stats['sampled']}  "
            f"dropped {stats['dropped']}  spans {stats['spans']}  "
            f"merged trace across workers [{rungs}]: {trace_verdict}"
        )
    return "\n".join(lines)


def render_loadgen_timings(result: LoadGenScaleResult) -> str:
    """The wall-clock side (diagnostics; NOT byte-stable across runs)."""
    lines = []
    for report in result.reports:
        stats = report.wall_stats()
        wall = stats["latency_wall_seconds"]
        lines.append(
            f"workers={report.workers}: {stats['qps']:.1f} qps  "
            f"p50 {wall['p50'] * 1e3:.2f}ms  p95 {wall['p95'] * 1e3:.2f}ms  "
            f"p99 {wall['p99'] * 1e3:.2f}ms  wall {stats['wall_seconds']:.2f}s"
        )
    top = result.reports[-1].workers
    if top != 1:
        lines.append(
            f"speedup workers={top} vs workers=1: {result.speedup(top):.2f}x"
        )
    return "\n".join(lines)


def loadgen_scale_payload(result: LoadGenScaleResult) -> dict:
    """The ``BENCH_loadgen_scale.json`` payload (see EXPERIMENTS.md).

    The ``trace`` section only appears when the run sampled traces
    (``trace_sample_rate > 0``), so the committed tracing-off payload
    keeps its original key set.
    """
    payload = {
        "bench": "loadgen_scale",
        "schema_version": BENCH_SCHEMA_VERSION,
        "shards": result.config.shards,
        "rounds": result.config.rounds,
        "gap_seconds": result.config.gap_seconds,
        "fault_plan": result.fault_plan,
        "queries_per_round": result.config.queries_per_round,
        "deterministic_across_workers": result.deterministic,
        "aggregate": result.aggregate(),
        "rungs": [
            {
                **report.wall_stats(),
                "speedup_vs_serial": result.speedup(report.workers),
            }
            for report in result.reports
        ],
    }
    if result.traced:
        payload["trace"] = {
            "sample_rate": result.config.trace_sample_rate,
            **result.reports[0].trace_stats(),
            "deterministic_across_workers": result.trace_deterministic,
        }
    return payload
