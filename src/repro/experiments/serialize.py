"""JSON + npz codec for :class:`~repro.experiments.harness.ClassExperimentResult`.

The on-disk experiment cache (:mod:`repro.experiments.cache`) stores one
class-experiment result as a two-file entry:

* ``manifest.json`` — models (via
  :meth:`~repro.core.model.MultiStateCostModel.to_dict`), validation
  reports, per-phase timings, observation variable names and metadata;
* ``arrays.npz`` — every numeric series (test points and per-outcome
  observation columns) as float64 arrays.

The round trip is **exact**: floats stored in npz are binary-identical,
and floats in the manifest survive JSON because Python serializes them
with shortest-round-trip ``repr``.  That exactness is what lets a
warm-cache rerun of ``python -m repro.experiments`` produce byte-identical
tables and figures (there is a regression test for it).

Restored :class:`~repro.core.builder.BuildOutcome` objects carry the
model, training observations, and timings, but not the derivation
provenance (``selection`` / ``determination`` are ``None``): provenance
objects hold full fit histories that no table or figure consumer reads,
and omitting them keeps cache entries small and schema-stable.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..core.builder import BuildOutcome
from ..core.classification import QueryClass
from ..core.model import MultiStateCostModel
from ..core.validation import ValidationReport
from ..core.variables import Observation
from .harness import ClassExperimentResult, TestPoint

#: Bump when the payload layout changes; readers reject other versions.
PAYLOAD_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

_OUTCOME_TAGS = ("multi", "one_state", "static")
_TESTPOINT_FIELDS = (
    "result_tuples",
    "observed",
    "estimated_multi",
    "estimated_one_state",
    "estimated_static",
)


class PayloadError(ValueError):
    """A cache entry that cannot be decoded (corrupt or wrong version)."""


def _encode_outcome(
    tag: str, outcome: BuildOutcome, manifest: dict, arrays: dict
) -> None:
    observations = outcome.observations
    names = tuple(observations[0].values) if observations else ()
    manifest[tag] = {
        "model": outcome.model.to_dict(),
        "timings": {k: float(v) for k, v in outcome.timings.items()},
        "value_names": list(names),
        "metadata": [obs.metadata for obs in observations],
    }
    arrays[f"{tag}_cost"] = np.array([o.cost for o in observations], dtype=float)
    arrays[f"{tag}_probing"] = np.array(
        [o.probing_cost for o in observations], dtype=float
    )
    arrays[f"{tag}_contention"] = np.array(
        [o.contention_level for o in observations], dtype=float
    )
    arrays[f"{tag}_values"] = np.array(
        [[o.values[n] for n in names] for o in observations], dtype=float
    ).reshape(len(observations), len(names))


def _decode_outcome(tag: str, manifest: dict, arrays) -> BuildOutcome:
    entry = manifest[tag]
    names = tuple(entry["value_names"])
    cost = arrays[f"{tag}_cost"]
    probing = arrays[f"{tag}_probing"]
    contention = arrays[f"{tag}_contention"]
    values = arrays[f"{tag}_values"]
    metadata = entry["metadata"]
    observations = [
        Observation(
            cost=float(cost[i]),
            probing_cost=float(probing[i]),
            values={n: float(values[i, j]) for j, n in enumerate(names)},
            contention_level=float(contention[i]),
            metadata=dict(metadata[i]),
        )
        for i in range(cost.shape[0])
    ]
    return BuildOutcome(
        model=MultiStateCostModel.from_dict(entry["model"]),
        observations=observations,
        selection=None,
        determination=None,
        timings=dict(entry["timings"]),
    )


def result_to_files(result: ClassExperimentResult, directory: Path) -> None:
    """Write *result* as ``manifest.json`` + ``arrays.npz`` in *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    manifest: dict = {
        "version": PAYLOAD_VERSION,
        "site": result.site,
        "profile": result.profile,
        "query_class": dataclasses.asdict(result.query_class),
        "reports": {
            "multi": dataclasses.asdict(result.report_multi),
            "one_state": dataclasses.asdict(result.report_one_state),
            "static": dataclasses.asdict(result.report_static),
        },
    }
    for tag, outcome in zip(
        _OUTCOME_TAGS, (result.multi, result.one_state, result.static)
    ):
        _encode_outcome(tag, outcome, manifest, arrays)
    for name in _TESTPOINT_FIELDS:
        arrays[f"tp_{name}"] = np.array(
            [getattr(p, name) for p in result.test_points], dtype=float
        )
    np.savez(directory / ARRAYS_NAME, **arrays)
    with open(directory / MANIFEST_NAME, "w") as fh:
        json.dump(manifest, fh)


def result_from_files(directory: Path) -> ClassExperimentResult:
    """Rebuild a result from a directory written by :func:`result_to_files`.

    Raises :class:`PayloadError` on any malformed or version-mismatched
    entry (callers treat that as a cache miss).
    """
    directory = Path(directory)
    try:
        with open(directory / MANIFEST_NAME) as fh:
            manifest = json.load(fh)
        if manifest.get("version") != PAYLOAD_VERSION:
            raise PayloadError(
                f"payload version {manifest.get('version')!r}, "
                f"expected {PAYLOAD_VERSION}"
            )
        with np.load(directory / ARRAYS_NAME) as arrays:
            outcomes = {
                tag: _decode_outcome(tag, manifest, arrays)
                for tag in _OUTCOME_TAGS
            }
            columns = [arrays[f"tp_{name}"] for name in _TESTPOINT_FIELDS]
        points = [
            TestPoint(*(float(col[i]) for col in columns))
            for i in range(columns[0].shape[0])
        ]
        reports = {
            tag: ValidationReport(**manifest["reports"][tag])
            for tag in _OUTCOME_TAGS
        }
        return ClassExperimentResult(
            site=manifest["site"],
            profile=manifest["profile"],
            query_class=QueryClass(**manifest["query_class"]),
            multi=outcomes["multi"],
            one_state=outcomes["one_state"],
            static=outcomes["static"],
            report_multi=reports["multi"],
            report_one_state=reports["one_state"],
            report_static=reports["static"],
            test_points=points,
        )
    except PayloadError:
        raise
    except Exception as exc:
        raise PayloadError(f"unreadable cache entry at {directory}: {exc}") from exc
