"""Table 4: the derived multi-states cost models themselves.

The paper prints, for the three representative classes (G1, G2, G3) on
each local DBMS, the cost-estimation formulas with the qualitative
variable — per-state intercepts and slopes.  We reproduce the table by
rendering each derived model's per-state equations
(:meth:`~repro.core.model.MultiStateCostModel.equation_table`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classification import G1, G2, G3, QueryClass
from ..core.model import MultiStateCostModel
from ..engine.profiles import DB2_LIKE, DBMSProfile, ORACLE_LIKE
from .config import ExperimentConfig
from .harness import cached_class_experiment

#: The paper's Table 4 covers these classes on both systems.
TABLE4_CLASSES: tuple[QueryClass, ...] = (G1, G2, G3)
TABLE4_PROFILES: tuple[DBMSProfile, ...] = (DB2_LIKE, ORACLE_LIKE)


@dataclass
class Table4Row:
    """One derived model (one row group of the paper's Table 4)."""

    profile: str
    query_class: QueryClass
    model: MultiStateCostModel

    def render(self) -> str:
        return f"[{self.profile}] " + self.model.equation_table()


def run_table4(config: ExperimentConfig | None = None) -> list[Table4Row]:
    """Derive the Table-4 models for every (profile, class) pair."""
    config = config or ExperimentConfig()
    rows = []
    for profile in TABLE4_PROFILES:
        for query_class in TABLE4_CLASSES:
            result = cached_class_experiment(profile, query_class, config)
            rows.append(
                Table4Row(
                    profile=profile.name,
                    query_class=query_class,
                    model=result.multi.model,
                )
            )
    return rows


def render_table4(rows: list[Table4Row]) -> str:
    return "\n\n".join(row.render() for row in rows)
