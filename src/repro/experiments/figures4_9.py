"""Figures 4–9: observed vs estimated costs for test queries.

Six plots, one per (class in {G1, G2, G3}) x (DBMS in {DB2, Oracle}):
test queries sorted by result size, with three series — observed cost,
multi-states estimate, and one-state estimate.  The visible story is
that the multi-states estimates hug the observed scatter while the
one-state estimates form a single compromise curve that misses both the
low- and high-contention executions.

We regenerate the series data; :func:`render_figure` prints it as
aligned columns, and :func:`tracking_error` quantifies "hugging the
scatter" so benches can assert the shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import ExperimentConfig
from .harness import TestPoint, cached_class_experiment
from .report import format_series
from .table4 import TABLE4_CLASSES, TABLE4_PROFILES

#: (figure number, profile index, class index) mapping mirroring the paper:
#: Figs 4/5 = G1 on DB2/Oracle, 6/7 = G2, 8/9 = G3.
FIGURE_LAYOUT = {
    4: ("db2_like", "G1"),
    5: ("oracle_like", "G1"),
    6: ("db2_like", "G2"),
    7: ("oracle_like", "G2"),
    8: ("db2_like", "G3"),
    9: ("oracle_like", "G3"),
}


@dataclass
class FigureResult:
    """One figure's series."""

    figure_number: int
    profile: str
    class_label: str
    points: list[TestPoint]

    def series(self) -> dict[str, list[float]]:
        return {
            "observed": [p.observed for p in self.points],
            "multi_states": [p.estimated_multi for p in self.points],
            "one_state": [p.estimated_one_state for p in self.points],
        }

    @property
    def x(self) -> list[float]:
        return [p.result_tuples for p in self.points]


def tracking_error(observed: list[float], estimated: list[float]) -> float:
    """Root-mean-square estimation error, normalized by the mean cost."""
    obs = np.asarray(observed)
    est = np.asarray(estimated)
    scale = float(np.mean(np.abs(obs)))
    if scale == 0:
        return 0.0
    return float(np.sqrt(np.mean((est - obs) ** 2))) / scale


def run_figure(
    figure_number: int, config: ExperimentConfig | None = None
) -> FigureResult:
    """Regenerate one of Figures 4–9."""
    if figure_number not in FIGURE_LAYOUT:
        raise ValueError(f"figure {figure_number} is not one of Figures 4-9")
    config = config or ExperimentConfig()
    profile_name, class_label = FIGURE_LAYOUT[figure_number]
    profile = next(p for p in TABLE4_PROFILES if p.name == profile_name)
    query_class = next(c for c in TABLE4_CLASSES if c.label == class_label)
    result = cached_class_experiment(profile, query_class, config)
    return FigureResult(
        figure_number=figure_number,
        profile=profile_name,
        class_label=class_label,
        points=result.test_points,
    )


def run_all_figures(config: ExperimentConfig | None = None) -> list[FigureResult]:
    config = config or ExperimentConfig()
    return [run_figure(n, config) for n in sorted(FIGURE_LAYOUT)]


def render_figure(figure: FigureResult, max_rows: int = 20) -> str:
    title = (
        f"Figure {figure.figure_number}: costs for test queries in "
        f"{figure.class_label} on {figure.profile}"
    )
    return format_series(
        figure.x,
        figure.series(),
        x_label="result_tuples",
        title=title,
        max_rows=max_rows,
    )
