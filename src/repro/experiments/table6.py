"""Table 6 + Figure 10: IUPMA vs ICMA in a clustered environment.

The contention level follows a three-cluster mixture (the Figure-10
histogram).  Both algorithms derive a model for the same class from the
same clustered-environment samples; the paper reports that ICMA's
distribution-aware partition yields the better model (its Table 6:
R² 0.991 vs 0.978, 82% vs 58% very good estimates for the example
class).

Figure 10 is the histogram of the sampled probing costs (the paper plots
the contention level gauged exactly this way).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classification import G2, QueryClass
from ..core.validation import ValidationReport
from ..engine.profiles import DBMSProfile, ORACLE_LIKE
from .config import ExperimentConfig
from .harness import collect_for_algorithm
from .report import ascii_histogram, format_table


@dataclass
class Table6Row:
    """One algorithm's statistics in the clustered environment."""

    algorithm: str
    num_states: int
    report: ValidationReport


@dataclass
class Table6Result:
    rows: list[Table6Row]
    #: Sampled probing costs (Figure 10's histogram data).
    probing_costs: list[float]

    def row(self, algorithm: str) -> Table6Row:
        return next(r for r in self.rows if r.algorithm == algorithm)


def run_table6(
    config: ExperimentConfig | None = None,
    profile: DBMSProfile = ORACLE_LIKE,
    query_class: QueryClass = G2,
) -> Table6Result:
    """Derive IUPMA and ICMA models in the clustered environment."""
    config = config or ExperimentConfig()
    rows = []
    probing: list[float] = []
    for algorithm in ("iupma", "icma"):
        outcome, report, _ = collect_for_algorithm(
            profile, query_class, config, environment_kind="clustered",
            algorithm=algorithm,
        )
        rows.append(
            Table6Row(
                algorithm=algorithm.upper(),
                num_states=outcome.model.num_states,
                report=report,
            )
        )
        if not probing:
            probing = [obs.probing_cost for obs in outcome.observations]
    return Table6Result(rows=rows, probing_costs=probing)


def render_table6(result: Table6Result) -> str:
    headers = ("algorithm", "# states", "R2", "SEE", "very good %", "good %")
    rows = [
        (
            r.algorithm,
            r.num_states,
            r.report.r_squared,
            r.report.standard_error,
            r.report.pct_very_good,
            r.report.pct_good,
        )
        for r in result.rows
    ]
    return format_table(
        headers, rows, title="Table 6: cost models in a clustered case"
    )


def render_figure10(result: Table6Result, bins: int = 20) -> str:
    return ascii_histogram(
        result.probing_costs,
        bins=bins,
        title="Figure 10: histogram of contention level (probing cost, sec.)",
    )
