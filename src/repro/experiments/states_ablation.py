"""State-count ablation (§5, fourth observation).

"The more contention states are considered, the better the derived cost
model usually is.  For example, the coefficients of total determination
for the cost models for query class [G2 on Oracle] with 1 to 6
contention states are 0.7788, 0.9636, 0.9674, 0.9899, 0.9922 [...]
However, the improvement may be very small after the number of
contention states reaches a certain point."

We fit the general qualitative model over uniform partitions with
m = 1..max and record R² and SEE — the saturating curve is the
reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.builder import CostModelBuilder
from ..core.classification import G2, QueryClass
from ..core.fitting import fit_qualitative
from ..core.partition import uniform_partition
from ..engine.profiles import DBMSProfile, ORACLE_LIKE
from ..workload.scenarios import make_site
from .config import ExperimentConfig
from .report import format_table


@dataclass
class AblationPoint:
    num_states: int
    r_squared: float
    standard_error: float


@dataclass
class StatesAblationResult:
    profile: str
    class_label: str
    points: list[AblationPoint]

    @property
    def r_squared_series(self) -> list[float]:
        return [p.r_squared for p in self.points]


def run_states_ablation(
    config: ExperimentConfig | None = None,
    profile: DBMSProfile = ORACLE_LIKE,
    query_class: QueryClass = G2,
    max_states: int = 6,
) -> StatesAblationResult:
    """R²/SEE of the general model for m = 1..max_states uniform states."""
    config = config or ExperimentConfig()
    site = make_site(
        f"{profile.name}_ablation",
        profile=profile,
        environment_kind="uniform",
        scale=config.scale,
        seed=config.seed,
    )
    builder = CostModelBuilder(site.database, config=config.builder)
    queries = site.generator.queries_for(
        query_class, config.train_count(query_class.family)
    )
    observations = builder.collect(queries)

    names = query_class.variables.basic
    X = np.array([[obs.values[n] for n in names] for obs in observations])
    y = np.array([obs.cost for obs in observations])
    probing = np.array([obs.probing_cost for obs in observations])
    cmin, cmax = float(probing.min()), float(probing.max())

    points = []
    for m in range(1, max_states + 1):
        states = uniform_partition(cmin, cmax, m)
        fit = fit_qualitative(X, y, probing, states, names)
        points.append(AblationPoint(m, fit.r_squared, fit.standard_error))
    return StatesAblationResult(
        profile=profile.name, class_label=query_class.label, points=points
    )


def render_states_ablation(result: StatesAblationResult) -> str:
    headers = ("# states", "R2", "SEE")
    rows = [(p.num_states, p.r_squared, p.standard_error) for p in result.points]
    return format_table(
        headers,
        rows,
        title=(
            f"State-count ablation: {result.class_label} on {result.profile} "
            "(general qualitative model, uniform partition)"
        ),
    )
