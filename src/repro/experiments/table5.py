"""Table 5: statistics for the derived cost models.

For each (DBMS, class) and each model type (multi-states, one-state,
static) the paper reports: R², the standard error of estimation, the
average test-query cost, and the percentages of very good (relative
error <= 30%) and good (within 2x) cost estimates.  The three model
types correspond to the multi-states method, Static Approach 2, and
Static Approach 1 respectively.

Shape assertions a faithful reproduction must satisfy (paper §5):

* multi-states beats one-state on both %very-good and %good by a wide
  margin on every class;
* the static model has excellent training R² but collapses on dynamic
  test queries (single-digit %good in the paper);
* all multi-states models pass the F-test at alpha = 0.01.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classification import QueryClass
from ..engine.profiles import DBMSProfile
from .config import ExperimentConfig
from .harness import cached_class_experiment
from .report import format_table
from .table4 import TABLE4_CLASSES, TABLE4_PROFILES


@dataclass
class Table5Row:
    """One line of Table 5."""

    profile: str
    class_label: str
    model_type: str
    num_states: int
    r_squared: float
    standard_error: float
    avg_cost: float
    pct_very_good: float
    pct_good: float
    f_significant: bool


def run_table5(
    config: ExperimentConfig | None = None,
    profiles: tuple[DBMSProfile, ...] = TABLE4_PROFILES,
    classes: tuple[QueryClass, ...] = TABLE4_CLASSES,
) -> list[Table5Row]:
    """All Table-5 rows for the requested profiles and classes."""
    config = config or ExperimentConfig()
    rows: list[Table5Row] = []
    for profile in profiles:
        for query_class in classes:
            result = cached_class_experiment(profile, query_class, config)
            for model_type, report in result.reports.items():
                model = result.models[model_type]
                rows.append(
                    Table5Row(
                        profile=profile.name,
                        class_label=query_class.label,
                        model_type=model_type,
                        num_states=model.num_states,
                        r_squared=report.r_squared,
                        standard_error=report.standard_error,
                        avg_cost=report.average_observed_cost,
                        pct_very_good=report.pct_very_good,
                        pct_good=report.pct_good,
                        f_significant=report.f_significant,
                    )
                )
    return rows


def render_table5(rows: list[Table5Row]) -> str:
    headers = (
        "profile",
        "class",
        "model",
        "m",
        "R2",
        "SEE",
        "avg cost",
        "very good %",
        "good %",
        "F sig",
    )
    table = [
        (
            r.profile,
            r.class_label,
            r.model_type,
            r.num_states,
            r.r_squared,
            r.standard_error,
            r.avg_cost,
            r.pct_very_good,
            r.pct_good,
            r.f_significant,
        )
        for r in rows
    ]
    return format_table(headers, table, title="Table 5: statistics for cost models")


def shape_violations(rows: list[Table5Row]) -> list[str]:
    """Check the paper's qualitative claims; returns human-readable failures."""
    violations = []
    by_key: dict[tuple[str, str], dict[str, Table5Row]] = {}
    for row in rows:
        by_key.setdefault((row.profile, row.class_label), {})[row.model_type] = row
    for (profile, label), group in by_key.items():
        multi = group["multi-states"]
        one = group["one-state"]
        static = group["static"]
        where = f"{profile}/{label}"
        if not multi.pct_good > one.pct_good:
            violations.append(f"{where}: multi-states %good not above one-state")
        if not multi.pct_very_good >= one.pct_very_good:
            violations.append(f"{where}: multi-states %very-good below one-state")
        if not multi.pct_good > static.pct_good + 20:
            violations.append(f"{where}: multi-states does not dominate static")
        if static.pct_good > 35:
            violations.append(
                f"{where}: static approach suspiciously good in dynamic env "
                f"({static.pct_good:.0f}%)"
            )
        if not multi.f_significant:
            violations.append(f"{where}: multi-states model fails the F-test")
        if multi.num_states < 2:
            violations.append(f"{where}: multi-states model found only one state")
    return violations
