"""Plan-quality experiment: do better cost models buy better plans?

The whole point of deriving cost models is §1's last step: "Based on the
estimated local costs, the global query optimizer chooses a good
execution plan for a global query."  This experiment closes that loop.

Setup: two sites whose contention levels move *independently* — at any
moment one may be nearly idle while the other is saturated, so the right
join site genuinely depends on the current states.  Both approaches see
identical queries at identical moments:

* **multi-states** — the optimizer consults multi-states models,
  resolving each site's contention state with a fresh probing cost;
* **one-state**    — the optimizer consults one-state (Static
  Approach 2) models, which cannot tell a loaded site from an idle one.

For every round, *both* candidate plans (join left / join right) are
executed from the identical simulated state (fork-and-rewind), giving
their true costs; each approach is then charged the cost of the plan it
*chose*.  The metric is regret versus the per-round optimal plan.

:func:`run_probe_cache_quality` reuses the same harness for a serving
trade-off instead of a modeling one: both approaches consult identical
multi-states models, but one probes each site afresh every optimization
(``ttl=0``) while the other serves contention readings from the
:class:`~repro.mdbs.probing_service.ProbingService` cache within a TTL.
The comparison shows what plan quality the probe-cost savings buy away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.builder import CostModelBuilder
from ..core.classification import G1, G3
from ..engine.predicate import Comparison
from ..engine.profiles import ORACLE_LIKE
from ..mdbs.agent import MDBSAgent
from ..mdbs.catalog import GlobalCatalog
from ..mdbs.gquery import GlobalJoinQuery
from ..mdbs.optimizer import GlobalQueryOptimizer
from ..mdbs.probing_service import ProbingService
from ..mdbs.server import MDBSServer
from ..workload.scenarios import make_site
from .config import ExperimentConfig
from .report import format_table

APPROACHES = ("multi-states", "one-state")
PROBE_CACHE_APPROACHES = ("fresh-probe", "cached-probe")


@dataclass
class PlanQualityRound:
    """One evaluated global query."""

    query: str
    observed_by_site: dict[str, float]
    chosen: dict[str, str]  # approach -> join site

    @property
    def best_seconds(self) -> float:
        return min(self.observed_by_site.values())

    def regret(self, approach: str) -> float:
        return self.observed_by_site[self.chosen[approach]] - self.best_seconds

    def picked_optimal(self, approach: str) -> bool:
        chosen_cost = self.observed_by_site[self.chosen[approach]]
        return chosen_cost <= self.best_seconds * 1.001


@dataclass
class PlanQualityResult:
    rounds: list[PlanQualityRound] = field(default_factory=list)
    #: Probing queries actually executed per approach (only populated by
    #: experiments where the approaches differ in probing policy).
    probes_by_approach: dict[str, int] = field(default_factory=dict)

    def total_regret(self, approach: str) -> float:
        return sum(r.regret(approach) for r in self.rounds)

    def pct_optimal(self, approach: str) -> float:
        if not self.rounds:
            return 0.0
        hits = sum(r.picked_optimal(approach) for r in self.rounds)
        return 100.0 * hits / len(self.rounds)

    def total_chosen_seconds(self, approach: str) -> float:
        return sum(r.observed_by_site[r.chosen[approach]] for r in self.rounds)

    @property
    def total_best_seconds(self) -> float:
        return sum(r.best_seconds for r in self.rounds)


def _derive_models(site, builder, tables):
    """Multi-states and one-state model pairs for G1 and G3."""
    models = {}
    for query_class, count in ((G1, 120), (G3, 130)):
        queries = site.generator.queries_for(query_class, count, tables=tables)
        observations = builder.collect(queries)
        models[(query_class.label, "multi-states")] = builder.build_from_observations(
            observations, query_class, "iupma"
        ).model
        models[(query_class.label, "one-state")] = builder.build_from_observations(
            observations, query_class, "static"
        ).model
    return models


def _make_site_pair(config: ExperimentConfig):
    """Two identical-engine sites with independently moving loads.

    Identical engines at both sites: the ONLY asymmetry the optimizer
    can exploit is the current contention — which is exactly the signal
    one-state models (or stale probe readings) cannot carry.
    """
    left = make_site(
        "left_site",
        profile=ORACLE_LIKE,
        environment_kind="uniform",
        scale=config.scale,
        seed=config.seed + 11,
    )
    right = make_site(
        "right_site",
        profile=ORACLE_LIKE,
        environment_kind="uniform",
        scale=config.scale,
        seed=config.seed + 22,
    )
    return left, right


def _run_rounds(
    server: MDBSServer,
    left,
    right,
    tables: list[str],
    optimizers: dict[str, GlobalQueryOptimizer],
    base_optimizer: GlobalQueryOptimizer,
    rounds: int,
    gap_seconds: float,
    seed: int,
) -> PlanQualityResult:
    """The shared evaluation loop: per round, execute both candidate
    plans from the identical state (fork-and-rewind) for their true
    costs, then let every approach choose from that same state."""
    rng = np.random.default_rng(seed)
    result = PlanQualityResult()
    for _ in range(rounds):
        left.environment.advance(gap_seconds)
        right.environment.advance(gap_seconds)
        left_table = tables[int(rng.integers(0, len(tables)))]
        remaining = [t for t in tables if t != left_table]
        right_table = remaining[int(rng.integers(0, len(remaining)))]
        query = GlobalJoinQuery(
            left.name,
            left_table,
            right.name,
            right_table,
            "a4",
            "a4",
            (f"{left_table}.a1", f"{right_table}.a2"),
            # Mild selections: the intermediates stay large, so the join
            # itself dominates and the join-site choice matters.
            left_predicate=Comparison("a3", "<", int(rng.integers(600, 950))),
            right_predicate=Comparison("a7", "<", int(rng.integers(35000, 48000))),
        )

        # True cost of each candidate plan, from the identical state.
        snapshot = {
            site.name: site.database.save_state() for site in (left, right)
        }
        candidates = base_optimizer.plans(query)
        observed_by_site = {}
        for plan in candidates:
            for site in (left, right):
                site.database.restore_state(snapshot[site.name])
            execution = server.execute(query, plan)
            observed_by_site[plan.join_site] = execution.observed_seconds

        # Each approach chooses from the same state.
        chosen = {}
        for approach, optimizer in optimizers.items():
            for site in (left, right):
                site.database.restore_state(snapshot[site.name])
            chosen[approach] = optimizer.choose(query).join_site
        for site in (left, right):
            site.database.restore_state(snapshot[site.name])

        result.rounds.append(
            PlanQualityRound(
                query=str(query),
                observed_by_site=observed_by_site,
                chosen=chosen,
            )
        )
    return result


def run_plan_quality(
    config: ExperimentConfig | None = None,
    rounds: int = 24,
    gap_seconds: float = 900.0,
) -> PlanQualityResult:
    """Run the experiment; see the module docstring."""
    config = config or ExperimentConfig()
    tables = ["R1", "R2", "R3", "R4", "R5"]
    left, right = _make_site_pair(config)
    server = MDBSServer()
    catalogs = {}
    site_models = {}
    for site in (left, right):
        server.register_agent(MDBSAgent(site.database))
        builder = CostModelBuilder(site.database, config=config.builder)
        site_models[site.name] = _derive_models(site, builder, tables)
    for approach in APPROACHES:
        catalog = GlobalCatalog()
        # Share the schema facts; differ only in the stored cost models.
        for site in (left, right):
            catalog.register_site(site.name)
            for facts in server.agents[site.name].export_table_facts():
                catalog.register_table(facts)
            for (label, model_approach), model in site_models[site.name].items():
                if model_approach == approach:
                    catalog.store_cost_model(site.name, model)
        catalogs[approach] = catalog

    optimizers = {
        approach: GlobalQueryOptimizer(catalogs[approach], server.agents)
        for approach in APPROACHES
    }
    return _run_rounds(
        server,
        left,
        right,
        tables,
        optimizers,
        base_optimizer=GlobalQueryOptimizer(catalogs["multi-states"], server.agents),
        rounds=rounds,
        gap_seconds=gap_seconds,
        seed=config.seed + 33,
    )


def run_probe_cache_quality(
    config: ExperimentConfig | None = None,
    rounds: int = 16,
    gap_seconds: float = 900.0,
    ttl: float = 1800.0,
) -> PlanQualityResult:
    """Fresh-probe vs cached-probe plan choices over identical models.

    Both approaches consult the same multi-states models; they differ
    only in the :class:`~repro.mdbs.probing_service.ProbingService` TTL.
    With ``gap_seconds=900`` and ``ttl=1800`` the cached approach serves
    a stale contention reading for roughly every other optimization —
    ``probes_by_approach`` records how many probes each one executed.
    """
    config = config or ExperimentConfig()
    tables = ["R1", "R2", "R3", "R4", "R5"]
    left, right = _make_site_pair(config)
    server = MDBSServer()
    for site in (left, right):
        server.register_agent(MDBSAgent(site.database))
        builder = CostModelBuilder(site.database, config=config.builder)
        for query_class, count in ((G1, 120), (G3, 130)):
            queries = site.generator.queries_for(query_class, count, tables=tables)
            server.store_cost_model(
                site.name, builder.build(query_class, queries, "iupma").model
            )
    services = {
        "fresh-probe": ProbingService(server.agents, ttl=0.0),
        "cached-probe": ProbingService(server.agents, ttl=ttl),
    }
    optimizers = {
        approach: GlobalQueryOptimizer(
            server.catalog, server.agents, probing=services[approach]
        )
        for approach in PROBE_CACHE_APPROACHES
    }
    result = _run_rounds(
        server,
        left,
        right,
        tables,
        optimizers,
        # A dedicated enumerator keeps the per-approach probe counts
        # clean: candidate enumeration is shared bookkeeping, not part
        # of either approach's serving cost.
        base_optimizer=GlobalQueryOptimizer(server.catalog, server.agents),
        rounds=rounds,
        gap_seconds=gap_seconds,
        seed=config.seed + 44,
    )
    result.probes_by_approach = {
        approach: sum(services[approach].probes_executed.values())
        for approach in PROBE_CACHE_APPROACHES
    }
    return result


def render_plan_quality(
    result: PlanQualityResult,
    approaches: tuple[str, ...] = APPROACHES,
    title: str | None = None,
) -> str:
    headers = [
        "approach",
        "optimal plans %",
        "total regret (s)",
        "chosen total (s)",
    ]
    with_probes = bool(result.probes_by_approach)
    if with_probes:
        headers.append("probes executed")
    rows = []
    for approach in approaches:
        row = [
            approach,
            result.pct_optimal(approach),
            result.total_regret(approach),
            result.total_chosen_seconds(approach),
        ]
        if with_probes:
            row.append(result.probes_by_approach.get(approach, 0))
        rows.append(tuple(row))
    oracle = ["(oracle: always best)", 100.0, 0.0, result.total_best_seconds]
    if with_probes:
        oracle.append("-")
    rows.append(tuple(oracle))
    return format_table(
        headers,
        rows,
        title=title
        or (
            f"Plan quality over {len(result.rounds)} global joins with "
            "independently loaded sites"
        ),
    )


def render_probe_cache_quality(result: PlanQualityResult) -> str:
    return render_plan_quality(
        result,
        approaches=PROBE_CACHE_APPROACHES,
        title=(
            f"Plan quality over {len(result.rounds)} global joins: "
            "per-optimization probes vs TTL-cached probe readings"
        ),
    )
