"""Figure 10: histogram of the contention level in the clustered case.

The data comes from the same clustered-environment sampling run as
Table 6; this module re-exports that path under the figure's name so the
per-experiment index stays one-to-one.
"""

from __future__ import annotations

from .table6 import Table6Result, render_figure10, run_table6

__all__ = ["Table6Result", "render_figure10", "run_table6"]
