"""Parallel class-experiment execution with deterministic fan-out.

The expensive unit behind Tables 4–5 and Figures 4–9 is the *class
experiment* (derive multi-states / one-state / static models, then
validate).  This module:

* enumerates every (profile, query-class, environment, algorithm) task
  up front (:func:`enumerate_class_tasks`);
* runs them across a ``--jobs N`` process pool
  (:func:`run_experiments`), each task seeded from its **stable key**
  (:func:`repro.experiments.harness.stable_seed`) rather than worker
  order, so ``--jobs 4`` reproduces ``--jobs 1`` bit for bit;
* shares results across processes through the content-addressed disk
  cache (:mod:`repro.experiments.cache`) attached to the harness;
* aggregates each worker's :mod:`repro.obs` counters and per-task wall
  clock back into the parent's registry, so cache hit rates and task
  timings survive the pool boundary.

``jobs=1`` runs everything serially in-process — the exact code path the
table and figure runners have always used — so tests and benches that
never opt into parallelism are unaffected.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from .. import obs
from ..core import classification
from ..core.classification import QueryClass
from ..engine.profiles import DBMSProfile
from . import harness
from .config import ExperimentConfig
from .table4 import TABLE4_CLASSES, TABLE4_PROFILES

__all__ = [
    "ExperimentTask",
    "RunnerReport",
    "TaskReport",
    "enumerate_class_tasks",
    "hermetic_worker_obs",
    "run_experiments",
    "task_seed",
]

#: Histogram fed with each task's wall-clock seconds (parent registry).
TASK_SECONDS_METRIC = "experiments.runner.task_seconds"


@dataclass(frozen=True)
class ExperimentTask:
    """One class-experiment task, identified by stable names only.

    Names (not objects) keep the task trivially picklable and give it a
    stable string key for seeding and content addressing.
    """

    profile: str
    query_class: str
    environment_kind: str = "uniform"
    algorithm: str = "iupma"

    @property
    def key(self) -> str:
        return (
            f"{self.profile}/{self.query_class}"
            f"/{self.environment_kind}/{self.algorithm}"
        )

    def resolve(self) -> tuple[DBMSProfile, QueryClass]:
        profile = _profiles_by_name().get(self.profile)
        if profile is None:
            raise KeyError(f"unknown DBMS profile {self.profile!r}")
        query_class = _classes_by_label().get(self.query_class)
        if query_class is None:
            raise KeyError(f"unknown query class {self.query_class!r}")
        return profile, query_class


def _profiles_by_name() -> dict[str, DBMSProfile]:
    return {p.name: p for p in TABLE4_PROFILES}


def _classes_by_label() -> dict[str, QueryClass]:
    return {
        value.label: value
        for value in vars(classification).values()
        if isinstance(value, QueryClass)
    }


def task_seed(config: ExperimentConfig, task: ExperimentTask) -> int:
    """The seed a task's sites derive their RNGs from.

    A pure function of (config.seed, task identity) — never of worker
    assignment or completion order.
    """
    return harness.stable_seed(config.seed, task.profile)


def enumerate_class_tasks(
    environment_kind: str = "uniform", algorithm: str = "iupma"
) -> list[ExperimentTask]:
    """Every cached class-experiment task Tables 4–5 / Figures 4–9 need."""
    return [
        ExperimentTask(
            profile=profile.name,
            query_class=query_class.label,
            environment_kind=environment_kind,
            algorithm=algorithm,
        )
        for profile in TABLE4_PROFILES
        for query_class in TABLE4_CLASSES
    ]


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class TaskReport:
    """How one task was satisfied."""

    task: ExperimentTask
    seconds: float
    #: "computed" | "disk" | "memory"
    source: str


@dataclass
class RunnerReport:
    """Aggregate outcome of one :func:`run_experiments` call."""

    jobs: int
    tasks: list[TaskReport] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def computed(self) -> int:
        return sum(1 for t in self.tasks if t.source == "computed")

    @property
    def from_cache(self) -> int:
        return len(self.tasks) - self.computed

    @property
    def task_seconds(self) -> float:
        return sum(t.seconds for t in self.tasks)

    def summary(self) -> str:
        slowest = max(self.tasks, key=lambda t: t.seconds, default=None)
        line = (
            f"[runner] {len(self.tasks)} tasks on {self.jobs} worker(s): "
            f"computed={self.computed} cached={self.from_cache} "
            f"wall={self.wall_seconds:.1f}s task-time={self.task_seconds:.1f}s"
        )
        if slowest is not None:
            line += f" slowest={slowest.task.key} ({slowest.seconds:.1f}s)"
        return line


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_worker_state: dict = {}


def hermetic_worker_obs() -> None:
    """Give a pool worker fresh observability state.

    Shared by this runner and the load-generation coordinator
    (:mod:`repro.loadgen`): a forked worker must not keep recording into
    a copy of the parent's registry/tracker, or cross-process aggregates
    would silently double-count whatever the parent had accumulated.
    """
    obs.set_registry(obs.MetricsRegistry())
    obs.set_tracker(obs.AccuracyTracker())


def _worker_init(config: ExperimentConfig, cache_dir) -> None:
    """Make a pool worker hermetic: fresh registry, fresh memo, own disk cache."""
    hermetic_worker_obs()
    harness.clear_cache()
    if cache_dir is not None:
        from .cache import DiskCache

        harness.set_disk_cache(DiskCache(cache_dir))
    else:
        harness.set_disk_cache(None)
    _worker_state["config"] = config


def _execute_task(task: ExperimentTask):
    """Run one task in a worker.

    Returns (task, result, seconds, source, counter_deltas).  Counters
    are returned as *deltas* over this task, not the worker's cumulative
    registry — a worker that handles several tasks must not re-report
    earlier tasks' work with each completion.
    """
    config = _worker_state["config"]
    profile, query_class = task.resolve()
    cache = harness.get_cache()
    hits_before = cache.hits
    disk_hits_before = cache.disk_hits
    counters_before = obs.get_registry().counters()
    started = time.perf_counter()
    result = harness.cached_class_experiment(
        profile, query_class, config, task.environment_kind, task.algorithm
    )
    seconds = time.perf_counter() - started
    if cache.hits == hits_before:
        source = "computed"
    elif cache.disk_hits > disk_hits_before:
        source = "disk"
    else:
        source = "memory"
    counters_after = obs.get_registry().counters()
    deltas = {
        name: value - counters_before.get(name, 0.0)
        for name, value in counters_after.items()
        if value != counters_before.get(name, 0.0)
    }
    return task, result, seconds, source, deltas


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


def _absorb(
    report: RunnerReport,
    config: ExperimentConfig,
    task: ExperimentTask,
    result,
    seconds: float,
    source: str,
) -> None:
    profile, query_class = task.resolve()
    harness.seed_cache(
        profile, query_class, config, result, task.environment_kind, task.algorithm
    )
    obs.observe(TASK_SECONDS_METRIC, seconds)
    report.tasks.append(TaskReport(task=task, seconds=seconds, source=source))


def run_experiments(
    config: ExperimentConfig,
    tasks: list[ExperimentTask] | None = None,
    jobs: int = 1,
    progress=None,
) -> RunnerReport:
    """Execute *tasks* (default: all class-experiment tasks) with *jobs* workers.

    Results land in the harness memo, so subsequent table/figure runners
    in this process are pure cache hits.  With ``jobs > 1`` each worker
    gets a fresh obs registry and its counters are merged back into the
    parent's registry when its tasks complete.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if tasks is None:
        tasks = enumerate_class_tasks()
    report = RunnerReport(jobs=jobs)
    started = time.perf_counter()

    if jobs == 1 or len(tasks) <= 1:
        report.jobs = 1
        for task in tasks:
            profile, query_class = task.resolve()
            hits_before, _ = harness.cache_stats()
            disk_hits_before = harness.get_cache().disk_hits
            t0 = time.perf_counter()
            result = harness.cached_class_experiment(
                profile, query_class, config, task.environment_kind, task.algorithm
            )
            seconds = time.perf_counter() - t0
            cache = harness.get_cache()
            if cache.hits == hits_before:
                source = "computed"
            elif cache.disk_hits > disk_hits_before:
                source = "disk"
            else:
                source = "memory"
            obs.observe(TASK_SECONDS_METRIC, seconds)
            report.tasks.append(
                TaskReport(task=task, seconds=seconds, source=source)
            )
            if progress is not None:
                progress(report.tasks[-1])
    else:
        cache = harness.get_cache()
        cache_dir = cache.disk.root if cache.disk is not None else None
        registry = obs.get_registry()
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            initializer=_worker_init,
            initargs=(config, cache_dir),
        ) as pool:
            pending = {pool.submit(_execute_task, task) for task in tasks}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    task, result, seconds, source, counters = future.result()
                    _absorb(report, config, task, result, seconds, source)
                    registry.merge_counters(counters)
                    if progress is not None:
                        progress(report.tasks[-1])

    report.wall_seconds = time.perf_counter() - started
    return report
