"""Regenerate every table and figure of the paper in one run.

Usage::

    python -m repro.experiments            # quick preset (minutes)
    python -m repro.experiments --full     # paper-sized preset (slower)
    python -m repro.experiments --seed 42  # different random universe
    python -m repro.experiments --trace-out trace.jsonl --verbose

Prints each artifact in order — Figure 1, Tables 4–6, Figures 4–10, the
state-count / model-form / probing-estimation / sample-size ablations,
and the end-to-end plan-quality experiment — with the paper's reference
numbers alongside, so the output can be diffed against EXPERIMENTS.md.

``--trace-out PATH`` records a full observability trace of the run and
writes it as JSONL at exit; ``--verbose`` prints the per-span summary
table and the metrics registry at the end.
"""

from __future__ import annotations

import argparse
import sys
import time

from .. import obs
from .config import full, quick
from .harness import cache_summary
from .figure1 import FIGURE1_SQL, run_figure1
from .figures4_9 import FIGURE_LAYOUT, render_figure, run_figure, tracking_error
from .model_forms import render_model_forms, run_model_forms
from .plan_quality import render_plan_quality, run_plan_quality
from .probing_estimation import render_probing_estimation, run_probing_estimation
from .report import format_series
from .sample_size_ablation import (
    render_sample_size_ablation,
    run_sample_size_ablation,
)
from .states_ablation import render_states_ablation, run_states_ablation
from .table4 import render_table4, run_table4
from .table5 import render_table5, run_table5, shape_violations
from .table6 import render_figure10, render_table6, run_table6


def _banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def _bench_done(name: str) -> None:
    """One-line cache report after each bench run."""
    print(f"[{name} done] {cache_summary()}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    parser.add_argument(
        "--full", action="store_true", help="paper-sized sampling (slower)"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="enable tracing and write the JSONL trace here at exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print the span summary table and metrics at the end",
    )
    args = parser.parse_args(argv)
    config = full(seed=args.seed) if args.full else quick(seed=args.seed)
    if args.trace_out:
        # Fail now, not after a multi-minute run, if the path is bad.
        try:
            with open(args.trace_out, "w"):
                pass
        except OSError as exc:
            parser.error(f"--trace-out {args.trace_out}: {exc}")
    tracer = obs.enable() if (args.trace_out or args.verbose) else None
    started = time.time()
    print(
        f"preset={'full' if args.full else 'quick'} seed={config.seed} "
        f"scale={config.scale} train={config.unary_train}/{config.join_train} "
        f"test={config.test_count}"
    )

    try:
        _run_benches(args, config)
    finally:
        if tracer is not None:
            if args.trace_out:
                count = obs.write_jsonl(tracer, args.trace_out)
                print(f"\nwrote {count} spans to {args.trace_out}")
            if args.verbose:
                print("\n--- span summary (real seconds) ---")
                print(obs.summary_table(tracer))
                print("\n--- metrics ---")
                print(obs.metrics_table(obs.get_registry()))
            obs.disable()

    print(f"\ntotal wall time: {time.time() - started:.1f}s")
    return 0


def _run_benches(args, config) -> None:
    _banner("Figure 1: effect of dynamic factor on query cost")
    fig1 = run_figure1(config)
    print(f"query: {FIGURE1_SQL}")
    print(
        format_series(
            [float(p) for p in fig1.process_counts],
            {"cost_seconds": fig1.costs},
            x_label="concurrent_processes",
        )
    )
    print(f"swing: {fig1.swing:.1f}x   (paper: 3.80 s -> 124.02 s, ~33x)")
    _bench_done("figure1")

    _banner("Table 4: multi-state cost models")
    print(render_table4(run_table4(config)))
    _bench_done("table4")

    _banner("Table 5: statistics for cost models")
    rows = run_table5(config)
    print(render_table5(rows))
    violations = shape_violations(rows)
    print(f"shape violations: {violations or 'none'}")
    _bench_done("table5")

    _banner("Figures 4-9: observed vs estimated costs for test queries")
    for number in sorted(FIGURE_LAYOUT):
        figure = run_figure(number, config)
        series = figure.series()
        err_multi = tracking_error(series["observed"], series["multi_states"])
        err_one = tracking_error(series["observed"], series["one_state"])
        print(render_figure(figure, max_rows=10))
        print(
            f"normalized RMS error: multi-states {err_multi:.3f} vs "
            f"one-state {err_one:.3f}\n"
        )
    _bench_done("figures4_9")

    _banner("Table 6 + Figure 10: IUPMA vs ICMA under clustered contention")
    table6 = run_table6(config)
    print(render_table6(table6))
    print()
    print(render_figure10(table6))
    _bench_done("table6")

    _banner("Ablation: number of contention states (§5 observation 4)")
    print(render_states_ablation(run_states_ablation(config)))
    print("paper (G2/Oracle, 1..6 states): 0.7788 0.9636 0.9674 0.9899 0.9922")
    _bench_done("states_ablation")

    _banner("Ablation: qualitative model forms (paper Table 2 / §3.2)")
    print(render_model_forms(run_model_forms(config)))
    _bench_done("model_forms")

    _banner("Ablation: observed vs estimated probing costs (§3.3 eq. (2))")
    print(render_probing_estimation(run_probing_estimation(config)))
    _bench_done("probing_estimation")

    _banner("End-to-end: plan quality with multi-states vs one-state models")
    print(render_plan_quality(run_plan_quality(config)))
    _bench_done("plan_quality")

    _banner("Ablation: sample size (Proposition 4.1 / eq. (4))")
    print(render_sample_size_ablation(run_sample_size_ablation(config)))
    _bench_done("sample_size_ablation")


if __name__ == "__main__":
    sys.exit(main())
