"""Regenerate every table and figure of the paper in one run.

Usage::

    python -m repro.experiments                  # quick preset (minutes)
    python -m repro.experiments --preset full    # paper-sized preset (slower)
    python -m repro.experiments --jobs 4         # fan class experiments out
    python -m repro.experiments --seed 42        # different random universe
    python -m repro.experiments --only table4 --only table5
    python -m repro.experiments --trace-out trace.jsonl --verbose

Prints each artifact in order — Figure 1, Tables 4–6, Figures 4–10, the
state-count / model-form / probing-estimation / sample-size ablations,
and the end-to-end plan-quality experiment — with the paper's reference
numbers alongside, so the output can be diffed against EXPERIMENTS.md.
Artifacts go to **stdout**; every diagnostic (cache summaries, runner
progress, wall time) goes to **stderr**, so stdout is byte-identical
across ``--jobs`` settings and cache temperatures.

``--jobs N`` runs the expensive class experiments (the unit behind
Tables 4–5 and Figures 4–9) across an N-worker process pool before the
benches print; each task is seeded from its stable key, so the output
matches ``--jobs 1`` exactly.  Results persist in a content-addressed
cache under ``~/.cache/repro-experiments`` (override with
``--cache-dir``; disable with ``--no-cache``; drop stale entries with
``--clear-cache``), so interrupted runs resume for free.

``--trace-out PATH`` records a full observability trace of the run and
writes it as JSONL at exit; ``--verbose`` prints the per-span summary
table and the metrics registry at the end.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .. import obs
from ..loadgen import FAULT_PLANS
from . import drift_detection as drift_detection_mod
from .cache import DiskCache, default_cache_dir
from .config import full, quick, tiny
from .drift_detection import render_drift_detection, run_drift_detection
from .engine_hotpaths import (
    engine_hotpaths_payload,
    render_engine_hotpaths,
    render_engine_timings,
    run_engine_hotpaths,
)
from .figure1 import FIGURE1_SQL, run_figure1
from .figures4_9 import FIGURE_LAYOUT, render_figure, run_figure, tracking_error
from .harness import cache_summary, set_disk_cache
from .loadgen_scale import (
    loadgen_scale_payload,
    render_loadgen_scale,
    render_loadgen_timings,
    run_loadgen_scale,
)
from .model_forms import render_model_forms, run_model_forms
from .model_race import (
    model_race_payload,
    render_model_race,
    render_race_timings,
    run_model_race,
)
from .plan_quality import (
    render_plan_quality,
    render_probe_cache_quality,
    run_plan_quality,
    run_probe_cache_quality,
)
from .probing_estimation import render_probing_estimation, run_probing_estimation
from .report import format_series
from .runner import enumerate_class_tasks, run_experiments
from .sample_size_ablation import (
    render_sample_size_ablation,
    run_sample_size_ablation,
)
from .serving_throughput import (
    render_serving_throughput,
    render_serving_timings,
    run_serving_throughput,
    serving_throughput_payload,
)
from .states_ablation import render_states_ablation, run_states_ablation
from .trace_overhead import (
    render_trace_overhead,
    render_trace_overhead_timings,
    run_trace_overhead,
    trace_overhead_payload,
)
from .table4 import render_table4, run_table4
from .table5 import render_table5, run_table5, shape_violations
from .table6 import render_figure10, render_table6, run_table6

_PRESETS = {"tiny": tiny, "quick": quick, "full": full}


def _banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def _note(message: str) -> None:
    """Diagnostics go to stderr so stdout stays a pure artifact stream."""
    print(message, file=sys.stderr)


def _bench_done(name: str) -> None:
    """One-line cache report after each bench run."""
    _note(f"[{name} done] {cache_summary()}")


def _bench_figure1(config) -> None:
    _banner("Figure 1: effect of dynamic factor on query cost")
    fig1 = run_figure1(config)
    print(f"query: {FIGURE1_SQL}")
    print(
        format_series(
            [float(p) for p in fig1.process_counts],
            {"cost_seconds": fig1.costs},
            x_label="concurrent_processes",
        )
    )
    print(f"swing: {fig1.swing:.1f}x   (paper: 3.80 s -> 124.02 s, ~33x)")


def _bench_table4(config) -> None:
    _banner("Table 4: multi-state cost models")
    print(render_table4(run_table4(config)))


def _bench_table5(config) -> None:
    _banner("Table 5: statistics for cost models")
    rows = run_table5(config)
    print(render_table5(rows))
    violations = shape_violations(rows)
    print(f"shape violations: {violations or 'none'}")


def _bench_figures4_9(config) -> None:
    _banner("Figures 4-9: observed vs estimated costs for test queries")
    for number in sorted(FIGURE_LAYOUT):
        figure = run_figure(number, config)
        series = figure.series()
        err_multi = tracking_error(series["observed"], series["multi_states"])
        err_one = tracking_error(series["observed"], series["one_state"])
        print(render_figure(figure, max_rows=10))
        print(
            f"normalized RMS error: multi-states {err_multi:.3f} vs "
            f"one-state {err_one:.3f}\n"
        )


def _bench_table6(config) -> None:
    _banner("Table 6 + Figure 10: IUPMA vs ICMA under clustered contention")
    table6 = run_table6(config)
    print(render_table6(table6))
    print()
    print(render_figure10(table6))


def _bench_states_ablation(config) -> None:
    _banner("Ablation: number of contention states (§5 observation 4)")
    print(render_states_ablation(run_states_ablation(config)))
    print("paper (G2/Oracle, 1..6 states): 0.7788 0.9636 0.9674 0.9899 0.9922")


def _bench_model_forms(config) -> None:
    _banner("Ablation: qualitative model forms (paper Table 2 / §3.2)")
    print(render_model_forms(run_model_forms(config)))


def _bench_probing_estimation(config) -> None:
    _banner("Ablation: observed vs estimated probing costs (§3.3 eq. (2))")
    print(render_probing_estimation(run_probing_estimation(config)))


def _bench_plan_quality(config) -> None:
    _banner("End-to-end: plan quality with multi-states vs one-state models")
    print(render_plan_quality(run_plan_quality(config)))


def _bench_probe_cache(config) -> None:
    _banner("End-to-end: plan quality with fresh vs TTL-cached probing")
    print(render_probe_cache_quality(run_probe_cache_quality(config)))


def _bench_sample_size(config) -> None:
    _banner("Ablation: sample size (Proposition 4.1 / eq. (4))")
    print(render_sample_size_ablation(run_sample_size_ablation(config)))


def _bench_drift_detection(config) -> None:
    _banner("End-to-end: drift detection -> targeted re-derivation")
    print(render_drift_detection(run_drift_detection(config)))


#: The most recent serving-throughput result (for ``--bench-out``).
LAST_SERVING_RESULT = None

#: The most recent engine-hotpaths result (for ``--engine-bench-out``).
LAST_ENGINE_RESULT = None

#: The most recent loadgen-scale result (for ``--loadgen-bench-out``).
LAST_LOADGEN_RESULT = None

#: The most recent model-race result (for ``--model-race-out``).
LAST_MODEL_RACE_RESULT = None

#: The most recent trace-overhead result (for ``--trace-overhead-out``).
LAST_TRACE_OVERHEAD_RESULT = None


def _bench_engine_hotpaths(config) -> None:
    global LAST_ENGINE_RESULT
    _banner("Engine: scalar vs vectorized hot paths, cold vs warm buffer")
    result = run_engine_hotpaths(config)
    LAST_ENGINE_RESULT = result
    # Sizes and page ledgers are byte-stable; timings go to stderr.
    print(render_engine_hotpaths(result))
    _note(render_engine_timings(result))


#: ``--workers`` / ``--fault-plan`` / ``--trace-sample-rate`` for the
#: loadgen bench (set by main).
_LOADGEN_OPTIONS = {"workers": None, "fault_plan": "mixed", "trace_sample_rate": 0.0}


def _bench_loadgen_scale(config) -> None:
    global LAST_LOADGEN_RESULT
    _banner("Loadgen: coordinator/worker scale ladder with fault injection")
    result = run_loadgen_scale(
        config,
        workers=_LOADGEN_OPTIONS["workers"],
        fault_plan=_LOADGEN_OPTIONS["fault_plan"],
        trace_sample_rate=_LOADGEN_OPTIONS["trace_sample_rate"],
    )
    LAST_LOADGEN_RESULT = result
    # The aggregate is worker-count invariant; QPS/wall latency are not.
    print(render_loadgen_scale(result))
    _note(render_loadgen_timings(result))


def _bench_serving_throughput(config) -> None:
    global LAST_SERVING_RESULT
    _banner("Serving: concurrent front end throughput vs serial baseline")
    result = run_serving_throughput(config)
    LAST_SERVING_RESULT = result
    # The table is scheduling-independent; the wall-clock side (QPS,
    # latency percentiles) varies run to run and goes to stderr.
    print(render_serving_throughput(result))
    _note(render_serving_timings(result))


def _bench_model_race(config) -> None:
    global LAST_MODEL_RACE_RESULT
    _banner("Race: multi-states OLS re-derivation vs online RLS/SGD forms")
    result = run_model_race(config)
    LAST_MODEL_RACE_RESULT = result
    # The frontier table is simulated-facts-only; wall time to stderr.
    print(render_model_race(result))
    _note(render_race_timings(result))


def _bench_trace_overhead(config) -> None:
    global LAST_TRACE_OVERHEAD_RESULT
    _banner("Tracing: QPS cost of off vs sampled vs full request tracing")
    result = run_trace_overhead(config)
    LAST_TRACE_OVERHEAD_RESULT = result
    # Counts are deterministic; QPS and the overhead guard go to stderr.
    print(render_trace_overhead(result))
    _note(render_trace_overhead_timings(result))


#: Bench registry, in print order.  Names are the ``--only`` vocabulary.
BENCHES: tuple[tuple[str, object], ...] = (
    ("figure1", _bench_figure1),
    ("table4", _bench_table4),
    ("table5", _bench_table5),
    ("figures4_9", _bench_figures4_9),
    ("table6", _bench_table6),
    ("states_ablation", _bench_states_ablation),
    ("model_forms", _bench_model_forms),
    ("probing_estimation", _bench_probing_estimation),
    ("plan_quality", _bench_plan_quality),
    ("probe_cache", _bench_probe_cache),
    ("sample_size_ablation", _bench_sample_size),
    ("drift_detection", _bench_drift_detection),
    ("serving_throughput", _bench_serving_throughput),
    ("engine_hotpaths", _bench_engine_hotpaths),
    ("loadgen_scale", _bench_loadgen_scale),
    ("model_race", _bench_model_race),
    ("trace_overhead", _bench_trace_overhead),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    parser.add_argument(
        "--preset",
        choices=sorted(_PRESETS),
        default=None,
        help="experiment scale (default: quick)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="shorthand for --preset full",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run class experiments across N worker processes (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=f"experiment result cache root (default {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache entirely",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="drop every cached experiment result before running",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=[name for name, _ in BENCHES],
        metavar="BENCH",
        help="run only the named bench (repeatable)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="enable tracing and write the JSONL trace here at exit",
    )
    parser.add_argument(
        "--snapshot-out",
        metavar="PATH",
        default=None,
        help=(
            "write a combined obs snapshot (metrics + accuracy windows "
            "+ model versions) at exit, for `python -m repro.obs`"
        ),
    )
    parser.add_argument(
        "--drift-out",
        metavar="PATH",
        default=None,
        help="write every raised DriftEvent as JSONL at exit",
    )
    parser.add_argument(
        "--bench-out",
        metavar="PATH",
        default=None,
        help=(
            "write the serving-throughput JSON payload (QPS + latency "
            "percentiles, BENCH_serving_throughput.json schema) at exit"
        ),
    )
    parser.add_argument(
        "--engine-bench-out",
        metavar="PATH",
        default=None,
        help=(
            "write the engine-hotpaths JSON payload (scalar vs vectorized "
            "timings, BENCH_engine_hotpaths.json schema) at exit"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "cap the loadgen_scale worker ladder at N processes "
            "(default: the full 1/2/4/8 ladder)"
        ),
    )
    parser.add_argument(
        "--fault-plan",
        choices=list(FAULT_PLANS),
        default="mixed",
        help="scripted fault schedule for loadgen_scale (default mixed)",
    )
    parser.add_argument(
        "--loadgen-bench-out",
        metavar="PATH",
        default=None,
        help=(
            "write the loadgen-scale JSON payload (worker ladder QPS + "
            "drift loops, BENCH_loadgen_scale.json schema) at exit"
        ),
    )
    parser.add_argument(
        "--model-race-out",
        metavar="PATH",
        default=None,
        help=(
            "write the model-race JSON payload (per-form recovery scores, "
            "BENCH_model_race.json schema) at exit"
        ),
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help=(
            "per-shard trace sampling rate for loadgen_scale "
            "(0 disables tracing, the default)"
        ),
    )
    parser.add_argument(
        "--loadgen-trace-out",
        metavar="PATH",
        default=None,
        help=(
            "write the loadgen_scale merged trace (JSONL, first rung) at "
            "exit; requires --trace-sample-rate > 0"
        ),
    )
    parser.add_argument(
        "--trace-overhead-out",
        metavar="PATH",
        default=None,
        help=(
            "write the trace-overhead JSON payload (off/sampled/full QPS, "
            "BENCH_trace_overhead.json schema) at exit"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print the span summary table and metrics at the end",
    )
    args = parser.parse_args(argv)
    if args.full and args.preset not in (None, "full"):
        parser.error("--full contradicts --preset " + args.preset)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    if not 0.0 <= args.trace_sample_rate <= 1.0:
        parser.error("--trace-sample-rate must be within [0, 1]")
    if args.loadgen_trace_out and args.trace_sample_rate <= 0.0:
        parser.error("--loadgen-trace-out requires --trace-sample-rate > 0")
    _LOADGEN_OPTIONS["workers"] = args.workers
    _LOADGEN_OPTIONS["fault_plan"] = args.fault_plan
    _LOADGEN_OPTIONS["trace_sample_rate"] = args.trace_sample_rate
    preset = "full" if args.full else (args.preset or "quick")
    make_config = _PRESETS[preset]
    config = make_config(args.seed) if args.seed is not None else make_config()

    for option, path in (
        ("--trace-out", args.trace_out),
        ("--snapshot-out", args.snapshot_out),
        ("--drift-out", args.drift_out),
        ("--bench-out", args.bench_out),
        ("--engine-bench-out", args.engine_bench_out),
        ("--loadgen-bench-out", args.loadgen_bench_out),
        ("--model-race-out", args.model_race_out),
        ("--loadgen-trace-out", args.loadgen_trace_out),
        ("--trace-overhead-out", args.trace_overhead_out),
    ):
        if not path:
            continue
        # Fail now, not after a multi-minute run, if the path is bad.
        try:
            with open(path, "w"):
                pass
        except OSError as exc:
            parser.error(f"{option} {path}: {exc}")

    disk = None
    if not args.no_cache:
        disk = DiskCache(args.cache_dir)
        if args.clear_cache:
            removed = disk.clear()
            _note(f"[cache] cleared {removed} entries under {disk.root}")
        set_disk_cache(disk)
    elif args.clear_cache:
        parser.error("--clear-cache contradicts --no-cache")

    tracer = obs.enable() if (args.trace_out or args.verbose) else None
    started = time.time()
    print(
        f"preset={preset} seed={config.seed} "
        f"scale={config.scale} train={config.unary_train}/{config.join_train} "
        f"test={config.test_count}"
    )
    if disk is not None:
        _note(f"[cache] {disk.root} ({len(disk)} entries)")

    try:
        if args.jobs > 1:
            report = run_experiments(
                config,
                tasks=enumerate_class_tasks(),
                jobs=args.jobs,
                progress=lambda t: _note(
                    f"[runner] {t.task.key}: {t.source} in {t.seconds:.1f}s"
                ),
            )
            _note(report.summary())
        _run_benches(args, config)
    finally:
        if disk is not None:
            set_disk_cache(None)
        if args.snapshot_out:
            obs.write_snapshot(
                args.snapshot_out,
                model_registry=drift_detection_mod.LAST_MODEL_REGISTRY,
            )
            _note(f"\nwrote obs snapshot to {args.snapshot_out}")
        if args.drift_out:
            count = obs.write_drift_jsonl(obs.get_tracker(), args.drift_out)
            _note(f"wrote {count} drift events to {args.drift_out}")
        if args.bench_out:
            if LAST_SERVING_RESULT is None:
                _note(
                    "--bench-out: serving_throughput did not run; "
                    "writing nothing"
                )
            else:
                with open(args.bench_out, "w") as handle:
                    json.dump(
                        serving_throughput_payload(LAST_SERVING_RESULT),
                        handle,
                        indent=2,
                    )
                _note(f"wrote serving bench payload to {args.bench_out}")
        if args.engine_bench_out:
            if LAST_ENGINE_RESULT is None:
                _note(
                    "--engine-bench-out: engine_hotpaths did not run; "
                    "writing nothing"
                )
            else:
                with open(args.engine_bench_out, "w") as handle:
                    json.dump(
                        engine_hotpaths_payload(LAST_ENGINE_RESULT),
                        handle,
                        indent=2,
                    )
                _note(f"wrote engine bench payload to {args.engine_bench_out}")
        if args.loadgen_bench_out:
            if LAST_LOADGEN_RESULT is None:
                _note(
                    "--loadgen-bench-out: loadgen_scale did not run; "
                    "writing nothing"
                )
            else:
                with open(args.loadgen_bench_out, "w") as handle:
                    json.dump(
                        loadgen_scale_payload(LAST_LOADGEN_RESULT),
                        handle,
                        indent=2,
                    )
                _note(
                    f"wrote loadgen bench payload to {args.loadgen_bench_out}"
                )
        if args.model_race_out:
            if LAST_MODEL_RACE_RESULT is None:
                _note(
                    "--model-race-out: model_race did not run; "
                    "writing nothing"
                )
            else:
                with open(args.model_race_out, "w") as handle:
                    json.dump(
                        model_race_payload(LAST_MODEL_RACE_RESULT),
                        handle,
                        indent=2,
                    )
                _note(f"wrote model race payload to {args.model_race_out}")
        if args.loadgen_trace_out:
            if LAST_LOADGEN_RESULT is None:
                _note(
                    "--loadgen-trace-out: loadgen_scale did not run; "
                    "writing nothing"
                )
            else:
                count = LAST_LOADGEN_RESULT.reports[0].write_merged_trace(
                    args.loadgen_trace_out
                )
                _note(
                    f"wrote {count} merged trace spans to "
                    f"{args.loadgen_trace_out}"
                )
        if args.trace_overhead_out:
            if LAST_TRACE_OVERHEAD_RESULT is None:
                _note(
                    "--trace-overhead-out: trace_overhead did not run; "
                    "writing nothing"
                )
            else:
                with open(args.trace_overhead_out, "w") as handle:
                    json.dump(
                        trace_overhead_payload(LAST_TRACE_OVERHEAD_RESULT),
                        handle,
                        indent=2,
                    )
                _note(
                    f"wrote trace overhead payload to {args.trace_overhead_out}"
                )
        if tracer is not None:
            if args.trace_out:
                count = obs.write_jsonl(tracer, args.trace_out)
                _note(f"\nwrote {count} spans to {args.trace_out}")
            if args.verbose:
                _note("\n--- span summary (real seconds) ---")
                _note(obs.summary_table(tracer))
                _note("\n--- metrics ---")
                _note(obs.metrics_table(obs.get_registry()))
            obs.disable()

    _note(f"\ntotal wall time: {time.time() - started:.1f}s")
    return 0


def _run_benches(args, config) -> None:
    selected = set(args.only) if args.only else None
    for name, bench in BENCHES:
        if selected is not None and name not in selected:
            continue
        bench(config)
        _bench_done(name)


if __name__ == "__main__":
    sys.exit(main())
