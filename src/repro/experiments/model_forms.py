"""Model-form ablation: coincident vs parallel vs concurrent vs general.

§3.2 argues that contention stretches both a query's initialization cost
(the intercept) and its per-tuple I/O/CPU costs (the slopes), so "to
incorporate a qualitative variable representing the system contention
states into a query cost model, the general qualitative regression model
is more appropriate".  This ablation fits all four Table-2 forms on the
same samples and states, so the claim is checkable: general should win,
and both one-sided forms (parallel, concurrent) should beat coincident.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.builder import CostModelBuilder
from ..core.classification import G1, QueryClass
from ..core.fitting import fit_qualitative
from ..core.iupma import determine_states_iupma
from ..core.qualitative import ModelForm
from ..engine.profiles import DBMSProfile, ORACLE_LIKE
from ..workload.scenarios import make_site
from .config import ExperimentConfig
from .report import format_table


@dataclass
class FormResult:
    form: ModelForm
    n_parameters: int
    r_squared: float
    standard_error: float


@dataclass
class ModelFormsResult:
    profile: str
    class_label: str
    num_states: int
    forms: list[FormResult]

    def result_for(self, form: ModelForm) -> FormResult:
        return next(f for f in self.forms if f.form is form)


def run_model_forms(
    config: ExperimentConfig | None = None,
    profile: DBMSProfile = ORACLE_LIKE,
    query_class: QueryClass = G1,
) -> ModelFormsResult:
    """Fit all four qualitative forms over IUPMA-determined states."""
    config = config or ExperimentConfig()
    site = make_site(
        f"{profile.name}_forms",
        profile=profile,
        environment_kind="uniform",
        scale=config.scale,
        seed=config.seed,
    )
    builder = CostModelBuilder(site.database, config=config.builder)
    queries = site.generator.queries_for(
        query_class, config.train_count(query_class.family)
    )
    observations = builder.collect(queries)

    names = query_class.variables.basic
    X = np.array([[obs.values[n] for n in names] for obs in observations])
    y = np.array([obs.cost for obs in observations])
    probing = np.array([obs.probing_cost for obs in observations])

    determination = determine_states_iupma(
        X, y, probing, names, config.builder.states
    )
    states = determination.states

    forms = []
    for form in ModelForm:
        fit = fit_qualitative(X, y, probing, states, names, form)
        forms.append(
            FormResult(
                form=form,
                n_parameters=fit.ols.n_parameters,
                r_squared=fit.r_squared,
                standard_error=fit.standard_error,
            )
        )
    return ModelFormsResult(
        profile=profile.name,
        class_label=query_class.label,
        num_states=states.num_states,
        forms=forms,
    )


def render_model_forms(result: ModelFormsResult) -> str:
    headers = ("form", "# params", "R2", "SEE")
    rows = [
        (f.form.value, f.n_parameters, f.r_squared, f.standard_error)
        for f in result.forms
    ]
    return format_table(
        headers,
        rows,
        title=(
            f"Qualitative form ablation: {result.class_label} on "
            f"{result.profile} ({result.num_states} states)"
        ),
    )
