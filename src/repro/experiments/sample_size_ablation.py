"""Sample-size ablation: validating Proposition 4.1's sizing rule.

The paper sizes samples at 10 observations per estimated parameter
(Prop. 4.1 / eq. (4)).  This ablation sweeps the training-sample size
for one class and measures model quality on a fixed test set: quality
should climb steeply while undersampled, then flatten near the
Prop.-4.1-recommended size — i.e. the rule buys nearly all the available
accuracy without wasting sampling effort (each sample query is real work
on a production system).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.builder import CostModelBuilder
from ..core.classification import G1, QueryClass
from ..core.sampling import recommended_sample_size
from ..core.validation import ValidationReport, validate_model
from ..engine.profiles import DBMSProfile, ORACLE_LIKE
from ..workload.scenarios import make_site
from .config import ExperimentConfig
from .report import format_table


@dataclass
class SampleSizePoint:
    sample_size: int
    num_states: int
    report: ValidationReport


@dataclass
class SampleSizeAblationResult:
    profile: str
    class_label: str
    recommended: int
    points: list[SampleSizePoint]

    def nearest_to_recommended(self) -> SampleSizePoint:
        return min(
            self.points, key=lambda p: abs(p.sample_size - self.recommended)
        )


def run_sample_size_ablation(
    config: ExperimentConfig | None = None,
    profile: DBMSProfile = ORACLE_LIKE,
    query_class: QueryClass = G1,
    sizes: tuple[int, ...] = (30, 60, 110, 170, 260, 370),
) -> SampleSizeAblationResult:
    """Model quality as a function of the training-sample size.

    All sizes are prefixes of one big collection run, so every model sees
    the same queries in the same environment history; the test set is
    shared.
    """
    config = config or ExperimentConfig()
    site = make_site(
        f"{profile.name}_ssize",
        profile=profile,
        environment_kind="uniform",
        scale=config.scale,
        seed=config.seed,
    )
    builder = CostModelBuilder(site.database, config=config.builder)
    all_train = builder.collect(
        site.generator.queries_for(query_class, max(sizes))
    )
    test = builder.collect(site.generator.queries_for(query_class, config.test_count))

    points = []
    for size in sizes:
        outcome = builder.build_from_observations(all_train[:size], query_class)
        points.append(
            SampleSizePoint(
                sample_size=size,
                num_states=outcome.model.num_states,
                report=validate_model(outcome.model, test),
            )
        )
    recommended = recommended_sample_size(
        query_class.variables,
        config.builder.sizing_states,
        config.builder.secondary_allowance,
    )
    return SampleSizeAblationResult(
        profile=profile.name,
        class_label=query_class.label,
        recommended=recommended,
        points=points,
    )


def render_sample_size_ablation(result: SampleSizeAblationResult) -> str:
    headers = ("# samples", "# states", "R2", "very good %", "good %")
    rows = [
        (
            p.sample_size,
            p.num_states,
            p.report.r_squared,
            p.report.pct_very_good,
            p.report.pct_good,
        )
        for p in result.points
    ]
    return format_table(
        headers,
        rows,
        title=(
            f"Sample-size ablation: {result.class_label} on {result.profile} "
            f"(Prop. 4.1 recommends {result.recommended} for m=6)"
        ),
    )
