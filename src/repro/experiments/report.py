"""Plain-text rendering of experiment tables and figure series.

Everything the harness produces prints as aligned text: table rows like
the paper's Tables 4–6, and figure series as (x, observed, estimates)
columns — the data behind the paper's plots, without requiring a plotting
dependency.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Align *rows* under *headers*; floats get compact formatting."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_series(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    x_label: str = "x",
    title: str | None = None,
    max_rows: int | None = None,
) -> str:
    """Render one figure's data as aligned columns."""
    headers = [x_label, *series]
    rows = [
        [xi, *(s[i] for s in series.values())]
        for i, xi in enumerate(x)
    ]
    if max_rows is not None and len(rows) > max_rows:
        step = max(1, len(rows) // max_rows)
        rows = rows[::step]
    return format_table(headers, rows, title=title)


def ascii_histogram(
    values: Sequence[float], bins: int = 20, width: int = 50, title: str | None = None
) -> str:
    """A terminal histogram (used for Figure 10)."""
    import numpy as np

    counts, edges = np.histogram(list(values), bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{lo:8.3f}, {hi:8.3f})  {count:4d}  {bar}")
    return "\n".join(lines)
