"""Drift-detection experiment: does the quality telemetry close the loop?

The §2 maintenance policy reacts to *catalog* changes (cardinality,
indexes) — but the paper's frequently-changing factor can also drift
structurally: the contention regime a model was sampled under can leave
entirely (a batch window opens, a tenant moves in), and nothing in the
catalog changes.  The model-quality telemetry
(:mod:`repro.obs.quality`) is built to catch exactly that.

The experiment scripts such a shift and measures the loop end to end:

1. **Derive** G1/G3 models at two sites under a restrained uniform load
   (contention in [0, 0.45]), with drift detection armed at the site
   that will shift;
2. **Baseline** rounds of global joins under that same load — accuracy
   lands in the §5 "good" band, no drift events;
3. **Shift**: the drifting site's load builder pins contention at 0.9 —
   outside the partitioned [Cmin, Cmax] range every model was derived
   over.  Probing costs escape the range, the ``probe_escape`` rule
   raises :class:`~repro.obs.quality.DriftEvent`\\ s, and
   :meth:`~repro.mdbs.server.MDBSServer.maintain` re-derives the
   flagged classes under the *new* regime, publishing fresh registry
   versions whose provenance records the triggering event;
4. **Recovery** rounds confirm the rebuilt models estimate well again;
5. **Counterfactual**: version 1 is re-activated, detection disarmed,
   and the same shifted load served again — the stale model's accuracy
   table shows the degradation the drift policy just repaired.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.builder import BuilderConfig, CostModelBuilder
from ..core.classification import G1, G3
from ..core.iupma import StatesConfig
from ..engine.predicate import Comparison
from ..engine.profiles import ORACLE_LIKE
from ..mdbs.agent import MDBSAgent
from ..mdbs.gquery import GlobalJoinQuery
from ..mdbs.server import MDBSServer
from ..obs.quality import AccuracyTracker, DriftEvent, DriftPolicy, WindowStats
from ..workload.scenarios import make_two_site_universe
from .config import ExperimentConfig
from .report import format_table

TABLES = ["R1", "R2", "R3", "R4", "R5"]

#: Contention range the models are derived (and the baseline served) under.
CALM_LOW, CALM_HIGH = 0.0, 0.45
#: The shifted regime — outside every derived [Cmin, Cmax] range.
SHIFTED_LEVEL = 0.9

#: The model registry behind the most recent run, for obs snapshots
#: (``python -m repro.experiments --snapshot-out``).  None until a run
#: has happened in this process.
LAST_MODEL_REGISTRY = None


@dataclass
class DriftRound:
    """One served global join in the timeline."""

    index: int
    phase: str  # "baseline" | "shifted" | "recovery" | "stale"
    good_pct: float  # drift-site class aggregate after this round
    events: list[str] = field(default_factory=list)
    active_version: int = 1  # of the drift site's join class


@dataclass
class DriftDetectionResult:
    drift_site: str
    watched_class: str
    rounds: list[DriftRound] = field(default_factory=list)
    events: list[DriftEvent] = field(default_factory=list)
    #: (site, class, version, trigger) of every drift-published version.
    published: list[tuple[str, str, int, str | None]] = field(default_factory=list)
    baseline: WindowStats | None = None
    recovered: WindowStats | None = None
    stale: WindowStats | None = None

    @property
    def detection_round(self) -> int | None:
        """First round (0-based) that raised a drift event, or None."""
        for r in self.rounds:
            if r.events:
                return r.index
        return None

    @property
    def shift_round(self) -> int | None:
        for r in self.rounds:
            if r.phase == "shifted":
                return r.index
        return None

    @property
    def detection_latency_rounds(self) -> int | None:
        """Served rounds between the load shift and the first event."""
        detected, shifted = self.detection_round, self.shift_round
        if detected is None or shifted is None:
            return None
        return detected - shifted


def _register_classes(server: MDBSServer, site, config: ExperimentConfig) -> None:
    for query_class in (G1, G3):
        count = config.train_count(query_class.family)
        server.register_model_class(
            site.name,
            query_class,
            # Bind loop variables now; the maintainer re-calls this
            # source at every rebuild, sampling under the then-current
            # environment — which is the whole point of re-derivation.
            lambda n, s=site, qc=query_class: s.generator.queries_for(
                qc, n, tables=TABLES
            ),
            sample_count=count,
        )


def _serve_round(
    server: MDBSServer, left, right, rng: np.random.Generator, gap_seconds: float
) -> None:
    left.environment.advance(gap_seconds)
    right.environment.advance(gap_seconds)
    left_table = TABLES[int(rng.integers(0, len(TABLES)))]
    remaining = [t for t in TABLES if t != left_table]
    right_table = remaining[int(rng.integers(0, len(remaining)))]
    query = GlobalJoinQuery(
        left.name,
        left_table,
        right.name,
        right_table,
        "a4",
        "a4",
        (f"{left_table}.a1", f"{right_table}.a2"),
        left_predicate=Comparison("a3", "<", int(rng.integers(600, 950))),
        right_predicate=Comparison("a7", "<", int(rng.integers(35000, 48000))),
    )
    server.execute(query)


def run_drift_detection(
    config: ExperimentConfig | None = None,
    baseline_rounds: int = 8,
    shifted_rounds: int = 10,
    recovery_rounds: int = 8,
    stale_rounds: int = 10,
    gap_seconds: float = 600.0,
    policy: DriftPolicy | None = None,
) -> DriftDetectionResult:
    """Run the experiment; see the module docstring."""
    global LAST_MODEL_REGISTRY
    config = config or ExperimentConfig()
    rng = np.random.default_rng(config.seed + 55)

    # Both sites calm while models are derived and the baseline runs.
    left, right = make_two_site_universe(
        names=("drift_site", "steady_site"),
        profiles=(ORACLE_LIKE, ORACLE_LIKE),
        seeds=(config.seed + 11, config.seed + 22),
        scale=config.scale,
        calm_range=(CALM_LOW, CALM_HIGH),
    )

    # A small probe window keeps the probe_escape rule responsive at
    # experiment scale; installed globally so obs snapshots include it.
    tracker = AccuracyTracker(probe_window_size=8)
    obs.set_tracker(tracker)
    policy = policy or DriftPolicy(
        recent_window=16,
        min_samples=8,
        good_band_floor_pct=50.0,
        probe_escape_fraction=0.5,
        probe_min_readings=4,
        # One maintain() pass can raise events for several classes at
        # once; the cooldown stops the next pass re-flagging a class
        # whose fresh model has barely served yet.
        cooldown_seconds=2 * gap_seconds,
    )

    server = MDBSServer(accuracy=tracker)
    for site in (left, right):
        server.register_agent(MDBSAgent(site.database))
    # Fewer, better-identified states: at experiment sample sizes a
    # 6-state join model leaves ~15 observations per state, which
    # overfits and extrapolates wildly on serving-time intermediates.
    builder_config = BuilderConfig(
        states=StatesConfig(max_states=4, min_obs_per_state=25)
    )
    for site in (left, right):
        agent = server.agents[site.name]
        server.configure_maintenance(
            site.name,
            builder=CostModelBuilder(
                agent.database, probe=agent.probe, config=builder_config
            ),
            # Arm drift detection only at the site that will shift; the
            # steady site is the control.
            drift=policy if site is left else None,
        )
        _register_classes(server, site, config)
    LAST_MODEL_REGISTRY = server.catalog.registry

    # Watch the unary class: the drift site's local selection executes
    # every round no matter which join site the optimizer picks.  (G3
    # at the drift site dries up after the rebuild — the accurate fresh
    # models steer joins *away* from the overloaded site, which is the
    # plan-quality win, but it leaves that window unfed.)
    watched = G1.label
    result = DriftDetectionResult(drift_site=left.name, watched_class=watched)

    def run_phase(phase: str, rounds: int, maintain: bool) -> None:
        for _ in range(rounds):
            index = len(result.rounds)
            before = len(server.drift_events)
            _serve_round(server, left, right, rng, gap_seconds)
            if maintain:
                server.maintain()
            fresh = server.drift_events[before:]
            result.events.extend(fresh)
            result.rounds.append(
                DriftRound(
                    index=index,
                    phase=phase,
                    good_pct=tracker.stats(left.name, watched).pct_good,
                    events=[e.describe() for e in fresh],
                    active_version=server.catalog.registry.active_version(
                        left.name, watched
                    ).version,
                )
            )

    # Phase 1+2: baseline under the calm load, detection armed.
    run_phase("baseline", baseline_rounds, maintain=True)
    result.baseline = tracker.stats(left.name, watched)

    # Phase 3: the regime shift, detection armed -> targeted rebuilds.
    left.load_builder.constant(SHIFTED_LEVEL)
    run_phase("shifted", shifted_rounds, maintain=True)

    # Phase 4: keep serving the shifted load on the rebuilt models.
    run_phase("recovery", recovery_rounds, maintain=True)
    result.recovered = tracker.stats(left.name, watched)

    registry = server.catalog.registry
    for site_name, label in registry.keys():
        entry = registry.active_version(site_name, label)
        if entry.provenance.trigger is not None:
            result.published.append(
                (site_name, label, entry.version, entry.provenance.trigger)
            )

    # Phase 5 (counterfactual): stale v1 back in service, detection
    # disarmed, same shifted load — what the loop just prevented.
    restored = []
    for site_name, label in registry.keys():
        if site_name == left.name and registry.active_version(
            site_name, label
        ).version != 1:
            restored.append((site_name, label, registry.active_version(
                site_name, label
            ).version))
            registry.activate(site_name, label, 1)
    server.drift_detectors.clear()
    tracker.reset()
    run_phase("stale", stale_rounds, maintain=False)
    result.stale = tracker.stats(left.name, watched)
    for site_name, label, version in restored:
        registry.activate(site_name, label, version)
    return result


def render_drift_detection(result: DriftDetectionResult) -> str:
    """The phase table plus the detection/provenance narrative."""
    phases = []
    for phase, stats in (
        ("baseline (calm load, drift armed)", result.baseline),
        ("recovery (shifted load, rebuilt models)", result.recovered),
        ("stale (shifted load, v1 models, drift off)", result.stale),
    ):
        stats = stats or WindowStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        phases.append(
            (
                phase,
                stats.count,
                stats.pct_good,
                stats.pct_very_good,
                stats.mean_relative_error,
                stats.bias,
            )
        )
    table = format_table(
        ["phase", "n", "good %", "very good %", "mean rel err", "bias"],
        phases,
        title=(
            f"Estimate accuracy for {result.drift_site}/{result.watched_class} "
            "across the drift lifecycle"
        ),
    )
    lines = [table, ""]
    latency = result.detection_latency_rounds
    if latency is None:
        lines.append("drift detection: NO event raised")
    else:
        lines.append(
            f"drift detected {latency} round(s) after the load shift "
            f"(round {result.detection_round})"
        )
    for event in result.events:
        lines.append(f"  {event.describe()}")
    for site, label, version, trigger in result.published:
        lines.append(f"published {site}/{label} v{version}  trigger: {trigger}")
    return "\n".join(lines)
