"""Trace-overhead bench: what does request tracing cost the front end?

Observability that slows serving down gets turned off; this bench pins
the cost.  Three modes serve the identical repeated-join workload
(cache warmed, probes pinned, a single pool worker — see
:data:`POOL_WORKERS`) and differ only in tracing:

* ``off`` — no tracer installed: the no-op default every span call
  sites hits when tracing is disabled (the production baseline);
* ``sampled`` — a real tracer with deterministic head sampling at
  :data:`SAMPLED_RATE`: unsampled requests suppress span recording up
  front and keep nothing (a root stub materializes only for force-kept
  requests), the kept ones survive in full;
* ``full`` — every trace kept (``rate=1.0``): the debugging posture.

The guard the CI smoke asserts: **sampled tracing costs < 5 % QPS
versus tracing-off** (:data:`MAX_SAMPLED_OVERHEAD_PCT`).  Wall-clock
noise on a shared machine is several times larger than the effect being
measured, so the measurement interleaves at fine grain: each mode keeps
a **persistent warmed universe** (its own server + front end, and its
own tracer for the traced modes), and the bench cycles through the
modes serving small batches (:data:`BATCH` requests, order alternating
every cycle).  One *round* of cycles yields a per-mode estimate as the
**ratio of median batch times** (median over the mode's batches vs
median over the off batches): the median discards the batches a
scheduler stall corrupted, and comparing medians — rather than taking
the median of per-cycle ratios — avoids the upward bias a noisy
denominator puts on ratio medians.  The whole measurement then repeats
for several rounds and the reported overhead is the **minimum across
rounds**, for the same reason ``timeit`` reports the min: machine
noise only ever *inflates* an interleaved overhead estimate, so the
calmest round is the closest to the truth, while a genuine code
regression raises every round and still trips the guard.  GC stays
disabled across the measured cycles so collection pauses don't land on
an arbitrary mode's batch.

Determinism note: rendered stdout carries only scheduling-independent
facts (completions, kept/dropped trace counts — sampling hashes trace
ids, so the kept set is a pure function of seed and request count).
QPS, wall seconds, and overhead percentages are real measurements; they
go to the JSON payload and stderr.
"""

from __future__ import annotations

import gc
import statistics
import time

from .. import obs
from ..mdbs.agent import MDBSAgent
from ..mdbs.server import MDBSServer
from ..obs.quality import AccuracyTracker
from ..serving import ServingConfig, ServingFrontEnd
from .config import ExperimentConfig
from .report import format_table
from .serving_throughput import (
    PINNED_PROBE_TTL,
    _make_sites,
    _make_workload,
    _train_models,
)

from dataclasses import dataclass, field

#: Head-sampling rate of the ``sampled`` mode (1 in 16 — the order of
#: magnitude a production head sampler actually runs at).
SAMPLED_RATE = 0.0625

#: The guard: sampled tracing may cost at most this much QPS vs off.
MAX_SAMPLED_OVERHEAD_PCT = 5.0

#: (mode name, sample rate); None = no tracer installed at all.
TRACE_MODES: tuple[tuple[str, float | None], ...] = (
    ("off", None),
    ("sampled", SAMPLED_RATE),
    ("full", 1.0),
)

#: The serving shape every mode runs.  A single worker on purpose: the
#: effect under test is per-request recording cost, and pool-N GIL
#: interleaving adds scheduling noise several times larger than the
#: sub-5% effect the guard has to resolve.
POOL_WORKERS = 1

#: Requests served per mode per cycle.  Small enough that machine-load
#: drift within one cycle is negligible, large enough that a batch's
#: wall time (~tens of ms) is well above timer resolution.
BATCH = 16


@dataclass
class TraceModeResult:
    """One tracing mode's outcome over the shared workload."""

    name: str
    sample_rate: float | None
    requests: int
    completed: int
    traces_kept: int
    traces_dropped: int
    spans: int
    wall_seconds: float
    qps: float


@dataclass
class TraceOverheadResult:
    requests: int
    distinct_queries: int
    batch: int
    cycles: int
    rounds: int
    modes: list[TraceModeResult] = field(default_factory=list)
    #: Per mode: raw wall seconds of each measured batch, cycle order,
    #: rounds concatenated.
    batch_seconds: dict[str, list[float]] = field(default_factory=dict)
    #: Per mode: one ratio-of-median-batch-times overhead % per round.
    round_overheads: dict[str, list[float]] = field(default_factory=dict)
    #: Per mode: one paired (off vs mode, same cycle) overhead % per
    #: cycle — diagnostic detail for the payload, not the headline.
    cycle_overheads: dict[str, list[float]] = field(default_factory=dict)

    def mode(self, name: str) -> TraceModeResult:
        for result in self.modes:
            if result.name == name:
                return result
        raise KeyError(name)

    def overhead_pct(self, name: str) -> float:
        """QPS lost to tracing mode *name*, as a % of tracing-off QPS.

        Minimum across rounds of the ratio of median batch times (mode
        median vs off median, within one round).  The median throws
        away stall-corrupted batches; the min across rounds throws
        away noise-contaminated rounds (see the module docstring for
        why contamination is one-sided).
        """
        rounds = self.round_overheads.get(name)
        if rounds:
            return min(rounds)
        base = self.mode("off").qps
        if base <= 0:
            return 0.0
        return (base - self.mode(name).qps) / base * 100.0

    @property
    def sampled_within_guard(self) -> bool:
        return self.overhead_pct("sampled") < MAX_SAMPLED_OVERHEAD_PCT


class _ModeUniverse:
    """One mode's persistent serving stack (and tracer, when traced).

    The front end, its plan cache, and the sampler's counters live for
    the whole bench; the tracer is installed only while this mode's
    batch is being served, so the other modes' batches — and the
    ``off`` baseline in particular — run exactly the production no-op
    path.
    """

    def __init__(
        self,
        name: str,
        rate: float | None,
        config: ExperimentConfig,
        payload: dict,
        workload,
    ) -> None:
        self.name = name
        self.rate = rate
        # A private tracker keeps the force-keep (flagged-trace)
        # decisions a pure function of this universe's own serving
        # history, not of whatever another mode served.
        server = MDBSServer(
            probe_ttl=PINNED_PROBE_TTL,
            accuracy=AccuracyTracker(export=False),
        )
        for site in _make_sites(config):
            server.register_agent(MDBSAgent(site.database))
        server.catalog.import_models(payload)
        serving_config = ServingConfig(
            workers=POOL_WORKERS,
            queue_depth=max(64, BATCH),
            admission_policy="block",
            plan_cache=True,
            trace_sample_rate=rate if rate is not None else 1.0,
            trace_seed=config.seed,
        )
        self.frontend = ServingFrontEnd(server, serving_config).start()
        # Warm untraced: cache priming is setup, not measured serving.
        self.frontend.warm(workload)
        self.tracer: obs.Tracer | None = (
            obs.Tracer() if rate is not None else None
        )
        self.completed = 0
        self.wall_seconds = 0.0
        self._base_sampled = 0
        self._base_dropped = 0
        self._base_spans = 0

    def serve_batch(self, batch, measured: bool) -> float:
        """Serve one batch with this mode's tracer installed; returns
        the batch's wall seconds (also accumulated when *measured*)."""
        previous = (
            obs.set_tracer(self.tracer) if self.tracer is not None else None
        )
        try:
            started = time.perf_counter()
            tickets = self.frontend.serve(batch)
            wall = time.perf_counter() - started
        finally:
            if previous is not None:
                obs.set_tracer(previous)
        if measured:
            self.wall_seconds += wall
            self.completed += sum(1 for t in tickets if t.ok)
        return wall

    def mark_measurement_start(self) -> None:
        """Snapshot counters so warmup batches don't pollute results."""
        self._base_sampled = self.frontend.sampler.sampled
        self._base_dropped = self.frontend.sampler.dropped
        self._base_spans = self._retained_spans()

    def _retained_spans(self) -> int:
        if self.tracer is None:
            return 0
        return sum(1 for s in self.tracer.finished() if s.trace_id is not None)

    def result(self, requests: int) -> TraceModeResult:
        traced = self.rate is not None
        return TraceModeResult(
            name=self.name,
            sample_rate=self.rate,
            requests=requests,
            completed=self.completed,
            traces_kept=(
                self.frontend.sampler.sampled - self._base_sampled
                if traced
                else 0
            ),
            traces_dropped=(
                self.frontend.sampler.dropped - self._base_dropped
                if traced
                else 0
            ),
            spans=self._retained_spans() - self._base_spans,
            wall_seconds=self.wall_seconds,
            qps=(
                self.completed / self.wall_seconds
                if self.wall_seconds > 0
                else 0.0
            ),
        )

    def close(self) -> None:
        self.frontend.close()


def run_trace_overhead(
    config: ExperimentConfig | None = None,
    requests: int = 256,
    distinct: int = 6,
    batch: int = BATCH,
    rounds: int = 3,
) -> TraceOverheadResult:
    """Train once, then measure every tracing mode over interleaved
    :data:`BATCH`-sized batches, *requests* per mode per round;
    overheads compare per-round median batch times and keep the
    calmest round (see :meth:`TraceOverheadResult.overhead_pct`)."""
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    cycles = max(1, requests // batch)
    requests = cycles * batch
    config = config or ExperimentConfig()
    payload = _train_models(config)
    workload = _make_workload(config, distinct)
    result = TraceOverheadResult(
        requests=requests * rounds,
        distinct_queries=distinct,
        batch=batch,
        cycles=cycles,
        rounds=rounds,
    )
    universes = [
        _ModeUniverse(name, rate, config, payload, workload)
        for name, rate in TRACE_MODES
    ]
    times: dict[str, list[float]] = {u.name: [] for u in universes}
    round_overheads: dict[str, list[float]] = {
        name: [] for name, _ in TRACE_MODES if name != "off"
    }
    try:
        # One untimed warmup cycle per mode: first-batch costs (queue
        # and lock warmup, branch caches) land nowhere.
        for universe in universes:
            universe.serve_batch(
                [workload[i % len(workload)] for i in range(batch)],
                measured=False,
            )
            universe.mark_measurement_start()
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            for round_index in range(rounds):
                round_times: dict[str, list[float]] = {
                    u.name: [] for u in universes
                }
                for cycle in range(cycles):
                    ordered = (
                        universes
                        if cycle % 2 == 0
                        else list(reversed(universes))
                    )
                    stream = [
                        workload[(cycle * batch + i) % len(workload)]
                        for i in range(batch)
                    ]
                    for universe in ordered:
                        round_times[universe.name].append(
                            universe.serve_batch(list(stream), measured=True)
                        )
                off_median = statistics.median(round_times["off"])
                for name in round_overheads:
                    mode_median = statistics.median(round_times[name])
                    round_overheads[name].append(
                        (mode_median - off_median) / off_median * 100.0
                        if off_median > 0
                        else 0.0
                    )
                for name, walls in round_times.items():
                    times[name].extend(walls)
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        for universe in universes:
            universe.close()
    result.modes = [u.result(requests * rounds) for u in universes]
    result.batch_seconds = times
    result.round_overheads = round_overheads
    result.cycle_overheads = {
        name: [
            (mode_wall - off_wall) / off_wall * 100.0 if off_wall > 0 else 0.0
            for mode_wall, off_wall in zip(times[name], times["off"])
        ]
        for name, _ in TRACE_MODES
    }
    return result


def render_trace_overhead(result: TraceOverheadResult) -> str:
    """Scheduling-independent table (counts only; timings go to stderr)."""
    headers = [
        "mode",
        "sample rate",
        "completed",
        "traces kept",
        "traces dropped",
    ]
    rows = [
        (
            mode.name,
            "-" if mode.sample_rate is None else f"{mode.sample_rate:g}",
            mode.completed,
            mode.traces_kept,
            mode.traces_dropped,
        )
        for mode in result.modes
    ]
    return format_table(
        headers,
        rows,
        title=(
            f"Trace overhead: {result.rounds} rounds of "
            f"{result.cycles}x{result.batch} interleaved batches per mode, "
            f"pool-{POOL_WORKERS}"
        ),
    )


def render_trace_overhead_timings(result: TraceOverheadResult) -> str:
    """The wall-clock side (diagnostics; NOT byte-stable across runs)."""
    lines = [
        f"{mode.name}: {mode.qps:.1f} qps  wall {mode.wall_seconds:.2f}s  "
        f"spans {mode.spans}  overhead {result.overhead_pct(mode.name):+.2f}%"
        for mode in result.modes
    ]
    for name, _ in TRACE_MODES[1:]:
        rounds = result.round_overheads.get(name, [])
        if rounds:
            lines.append(
                f"rounds({name}): "
                + "  ".join(f"{pct:+.2f}%" for pct in rounds)
                + f"  -> min {min(rounds):+.2f}%"
            )
    lines.append(
        f"guard: sampled overhead {result.overhead_pct('sampled'):.2f}% "
        f"< {MAX_SAMPLED_OVERHEAD_PCT:.0f}% -> "
        f"{'ok' if result.sampled_within_guard else 'FAIL'}"
    )
    return "\n".join(lines)


def trace_overhead_payload(result: TraceOverheadResult) -> dict:
    """The ``BENCH_trace_overhead.json`` payload (see EXPERIMENTS.md)."""
    return {
        "bench": "trace_overhead",
        "schema_version": 1,
        "requests": result.requests,
        "distinct_queries": result.distinct_queries,
        "batch": result.batch,
        "cycles": result.cycles,
        "rounds": result.rounds,
        "pool_workers": POOL_WORKERS,
        "modes": [
            {
                "name": mode.name,
                "sample_rate": mode.sample_rate,
                "requests": mode.requests,
                "completed": mode.completed,
                "traces_kept": mode.traces_kept,
                "traces_dropped": mode.traces_dropped,
                "spans": mode.spans,
                "qps": mode.qps,
                "wall_seconds": mode.wall_seconds,
                "overhead_pct_vs_off": result.overhead_pct(mode.name),
            }
            for mode in result.modes
        ],
        "round_overheads_pct": result.round_overheads,
        "cycle_overheads_pct": {
            name: cycles
            for name, cycles in result.cycle_overheads.items()
            if name != "off"
        },
        "sampled_overhead_pct": result.overhead_pct("sampled"),
        "guard": {
            "max_sampled_overhead_pct": MAX_SAMPLED_OVERHEAD_PCT,
            "ok": result.sampled_within_guard,
        },
    }
