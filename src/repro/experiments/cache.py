"""Content-addressed on-disk cache for class-experiment results.

One cache entry per task digest, where the digest is a SHA-256 over a
canonical JSON encoding of everything that determines the result:

* the task identity — profile name, query-class label, environment
  kind, derivation algorithm;
* the full :class:`~repro.experiments.config.ExperimentConfig`
  (including every :class:`~repro.core.builder.BuilderConfig` tunable
  and the seed);
* a **code-version salt** — a digest of the source of every package the
  result flows through (``repro.core``, ``repro.engine``, ``repro.env``,
  ``repro.workload``, ``repro.mlr`` and the harness/config modules), so
  editing engine code silently invalidates old entries instead of
  serving stale results;
* the cache schema version.

Entries live under ``$REPRO_CACHE_DIR`` /
``$XDG_CACHE_HOME/repro-experiments`` / ``~/.cache/repro-experiments``
(first set wins), sharded by digest prefix, each a directory holding the
JSON + npz payload written by :mod:`repro.experiments.serialize`.
Writes are atomic (write to a temp directory, then ``os.rename``), so
concurrent pool workers computing the same task race benignly: the first
rename wins and the loser discards its copy.

Hit/miss counters live on the :class:`DiskCache` object itself, mirrored
into :mod:`repro.obs` for observability — the object is the source of
truth, so stats survive an obs registry reset and never double-count
across pooled workers.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import shutil
from pathlib import Path

from .. import obs
from .config import ExperimentConfig

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DiskCache",
    "code_version_salt",
    "default_cache_dir",
    "task_digest",
]

#: Bump when the digest recipe or entry layout changes.
CACHE_SCHEMA_VERSION = 1

#: Packages whose source participates in the code-version salt.
_SALTED_PACKAGES = ("core", "engine", "env", "workload", "mlr")
_SALTED_MODULES = ("experiments/config.py", "experiments/harness.py",
                   "experiments/serialize.py")

_code_salt: str | None = None


def default_cache_dir() -> Path:
    """Resolve the cache root from the environment."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-experiments"


def code_version_salt() -> str:
    """Digest of the result-determining source tree (computed once)."""
    global _code_salt
    if _code_salt is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        files: list[Path] = []
        for package in _SALTED_PACKAGES:
            files.extend(sorted((package_root / package).glob("*.py")))
        files.extend(package_root / rel for rel in _SALTED_MODULES)
        for path in files:
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_salt = digest.hexdigest()[:16]
    return _code_salt


def _jsonable(value):
    """Canonical JSON-safe encoding of config values (enums, tuples...)."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def config_fingerprint(config: ExperimentConfig) -> dict:
    """The config as a canonical, JSON-safe dict (every tunable included)."""
    return _jsonable(dataclasses.asdict(config))


def task_digest(
    profile_name: str,
    class_label: str,
    config: ExperimentConfig,
    environment_kind: str = "uniform",
    algorithm: str = "iupma",
) -> str:
    """The content address of one class-experiment task."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": code_version_salt(),
        "profile": profile_name,
        "query_class": class_label,
        "environment_kind": environment_kind,
        "algorithm": algorithm,
        "config": config_fingerprint(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class DiskCache:
    """Digest-addressed storage of serialized class-experiment results."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _entry_dir(self, digest: str) -> Path:
        return self.root / digest[:2] / digest

    def get(self, digest: str):
        """The cached result for *digest*, or None (miss or corrupt entry)."""
        from .serialize import PayloadError, result_from_files

        entry = self._entry_dir(digest)
        if entry.is_dir():
            try:
                result = result_from_files(entry)
            except PayloadError:
                # Corrupt/stale entry: drop it and treat as a miss.
                shutil.rmtree(entry, ignore_errors=True)
            else:
                self.hits += 1
                obs.inc("experiments.disk_cache.hits")
                return result
        self.misses += 1
        obs.inc("experiments.disk_cache.misses")
        return None

    def put(self, digest: str, result) -> None:
        """Store *result* atomically; a concurrent identical put wins benignly."""
        from .serialize import result_to_files

        entry = self._entry_dir(digest)
        if entry.is_dir():
            return
        tmp = self.root / f".tmp-{os.getpid()}-{digest[:16]}"
        shutil.rmtree(tmp, ignore_errors=True)
        result_to_files(result, tmp)
        entry.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(tmp, entry)
        except OSError:
            # Another worker landed the entry first.
            shutil.rmtree(tmp, ignore_errors=True)
        else:
            self.writes += 1
            obs.inc("experiments.disk_cache.writes")

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for shard in self.root.iterdir():
            if shard.is_dir():
                removed += sum(1 for e in shard.iterdir() if e.is_dir())
                shutil.rmtree(shard, ignore_errors=True)
        return removed

    def __len__(self) -> int:
        return sum(
            1
            for shard in self.root.iterdir()
            if shard.is_dir() and not shard.name.startswith(".tmp-")
            for entry in shard.iterdir()
            if (entry / "manifest.json").is_file()
        )

    def stats(self) -> tuple[int, int]:
        """(hits, misses) counted on this object."""
        return (self.hits, self.misses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskCache({str(self.root)!r}, entries={len(self)})"
