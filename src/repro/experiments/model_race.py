"""The model-form race: multi-states OLS vs online RLS/SGD under a shift.

The paper's answer to a changed contention regime is *re-derivation*:
drift detection flags the class, the maintainer samples a fresh batch
under the new regime, and a new OLS model is published (§2, and the
``drift_detection`` experiment).  The pluggable strategy layer
(:mod:`repro.core.strategy`) adds a second answer: model forms that fold
every served query's estimate-vs-actual pair straight back into their
coefficients (recursive least squares with a forgetting factor, and a
normalized-SGD variant), adapting *while serving* with no sampling batch
at all.

This experiment races the three forms over an identical calm→shift
ladder and lets the drift telemetry referee the outcome:

1. **Train once** — one observation pass per (site, class); every
   strategy derives its form from the same samples, so the racers differ
   only in how they fit, never in what they saw.
2. **Cloned universes** — each form serves the same seeded workload in
   its own identically-seeded universe through a single-worker
   :class:`~repro.serving.frontend.ServingFrontEnd` (plan cache on, so
   the (version, form) cache keying is exercised).  OLS runs with drift
   detection and the maintainer armed — its recovery path is the
   paper's re-derivation.  The online forms run with maintenance
   disarmed: their only recovery path is the per-query update fed by
   :meth:`~repro.mdbs.server.MDBSServer.execute`.
3. **Shift** — after the calm rounds the variable site's contention pins
   at 0.9, outside every derived [Cmin, Cmax] range.
4. **Referee** — :meth:`~repro.obs.quality.DriftDetector.score_recovery`
   scores each form's timeline with the same good-band floor the drift
   policy uses: how many served queries until the trailing good-band
   percentage is back over the floor.

The rendered frontier table is deterministic (simulated facts only);
wall-clock timings go to stderr and the JSON payload
(``BENCH_model_race.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.builder import BuilderConfig, CostModelBuilder
from ..core.classification import G1, G3
from ..core.iupma import StatesConfig
from ..core.strategy import DEFAULT_STRATEGY, resolve_strategy
from ..engine.predicate import Comparison
from ..engine.profiles import DB2_LIKE, ORACLE_LIKE
from ..mdbs.agent import MDBSAgent
from ..mdbs.catalog import GlobalCatalog
from ..mdbs.gquery import GlobalJoinQuery
from ..mdbs.server import MDBSServer
from ..obs.quality import (
    AccuracyTracker,
    DriftDetector,
    DriftPolicy,
    RecoveryScore,
)
from ..serving import ServingConfig, ServingFrontEnd
from ..workload.scenarios import make_two_site_universe
from .config import ExperimentConfig
from .report import format_table

#: The racers, in print order.  OLS is the paper's form and the control.
RACE_STRATEGIES: tuple[str, ...] = ("mlr.ols", "mlr.rls", "mlr.sgd")

TABLES = ["R1", "R2", "R3", "R4"]

#: The variable site's local selection runs every round no matter which
#: join site the optimizer picks, so its unary class is the watched
#: accuracy window (same reasoning as the drift-detection experiment).
VAR_SITE = "race_var"
STEADY_SITE = "race_steady"
WATCHED_CLASS = G1.label

#: Contention range models are derived (and calm rounds served) under,
#: and where the shift pins the variable site afterwards.
CALM_RANGE = (0.0, 0.45)
SHIFTED_LEVEL = 0.9

#: The recovery bar the referee scores against — the same good-band
#: floor the OLS arm's drift policy rebuilds on.
FLOOR_PCT = 50.0

_MODEL_CLASSES = (G1, G3)


@dataclass
class RaceRound:
    """One served round of a strategy's timeline (simulated facts only)."""

    index: int
    phase: str  # "calm" | "shifted"
    #: Trailing watched-class good-band % after this round.
    good_pct: float
    samples: int
    queries: int
    active_version: int

    def timeline_entry(self) -> dict:
        return {
            "phase": self.phase,
            "good_pct": self.good_pct,
            "samples": self.samples,
            "queries": self.queries,
        }


@dataclass
class StrategyRun:
    """One form's full calm→shift→recover ladder."""

    strategy: str
    rounds: list[RaceRound]
    score: RecoveryScore
    requests: int = 0
    completed: int = 0
    failed: int = 0
    #: Drift-published re-derivations (the OLS recovery mechanism).
    rebuilds: int = 0
    #: Per-query coefficient updates folded in (the online mechanism).
    online_updates: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    wall_seconds: float = 0.0


@dataclass
class ModelRaceResult:
    calm_rounds: int
    shifted_rounds: int
    queries_per_round: int
    floor_pct: float
    runs: list[StrategyRun] = field(default_factory=list)

    def run(self, strategy: str) -> StrategyRun:
        for run in self.runs:
            if run.strategy == strategy:
                return run
        raise KeyError(strategy)

    @property
    def ols_queries_to_recover(self) -> int | None:
        return self.run(DEFAULT_STRATEGY).score.queries_to_recover

    def online_winners(self) -> list[str]:
        """Online forms that recovered in fewer served queries than OLS."""
        baseline = self.ols_queries_to_recover
        winners = []
        for run in self.runs:
            if run.strategy == DEFAULT_STRATEGY:
                continue
            ours = run.score.queries_to_recover
            if ours is None:
                continue
            if baseline is None or ours < baseline:
                winners.append(run.strategy)
        return winners


def _builder_config(strategy: str = DEFAULT_STRATEGY) -> BuilderConfig:
    """The drift experiment's state tuning, with a pluggable form."""
    return BuilderConfig(
        states=StatesConfig(max_states=4, min_obs_per_state=25),
        strategy=strategy,
    )


def _race_policy(gap_seconds: float) -> DriftPolicy:
    """The OLS arm's drift policy — also supplies the referee's floor."""
    return DriftPolicy(
        recent_window=16,
        min_samples=8,
        good_band_floor_pct=FLOOR_PCT,
        probe_escape_fraction=0.5,
        probe_min_readings=4,
        cooldown_seconds=2 * gap_seconds,
    )


def _make_universe(config: ExperimentConfig):
    """A fresh, identically seeded pair of race sites (one per call)."""
    return make_two_site_universe(
        names=(VAR_SITE, STEADY_SITE),
        profiles=(ORACLE_LIKE, DB2_LIKE),
        seeds=(config.seed + 31, config.seed + 32),
        scale=config.scale,
        calm_range=CALM_RANGE,
    )


def _train_payloads(config: ExperimentConfig) -> dict[str, dict]:
    """One registry payload per racer, from a single observation pass."""
    var, steady = _make_universe(config)
    catalogs = {name: GlobalCatalog() for name in RACE_STRATEGIES}
    for site in (var, steady):
        for catalog in catalogs.values():
            catalog.register_site(site.name)
        builder = CostModelBuilder(site.database, config=_builder_config())
        for query_class in _MODEL_CLASSES:
            queries = site.generator.queries_for(
                query_class,
                config.train_count(query_class.family),
                tables=TABLES,
            )
            observations = builder.collect(queries)
            for name, catalog in catalogs.items():
                outcome = builder.build_from_observations(
                    observations, query_class, "iupma", strategy=name
                )
                catalog.store_cost_model(site.name, outcome.model)
    return {name: catalog.export_models() for name, catalog in catalogs.items()}


def _make_workload(
    config: ExperimentConfig, rounds: int, per_round: int
) -> list[list[GlobalJoinQuery]]:
    """The identical per-round query batches every racer serves.

    The variable site is always the left side, so its local selection
    feeds the watched accuracy window every query.
    """
    rng = np.random.default_rng(config.seed + 77)
    workload = []
    for _ in range(rounds):
        batch = []
        for _ in range(per_round):
            left_table = TABLES[int(rng.integers(0, len(TABLES)))]
            remaining = [t for t in TABLES if t != left_table]
            right_table = remaining[int(rng.integers(0, len(remaining)))]
            batch.append(
                GlobalJoinQuery(
                    VAR_SITE,
                    left_table,
                    STEADY_SITE,
                    right_table,
                    "a4",
                    "a4",
                    (f"{left_table}.a1", f"{right_table}.a2"),
                    left_predicate=Comparison(
                        "a3", "<", int(rng.integers(600, 950))
                    ),
                    right_predicate=Comparison(
                        "a7", "<", int(rng.integers(35000, 48000))
                    ),
                )
            )
        workload.append(batch)
    return workload


def _run_strategy(
    strategy: str,
    config: ExperimentConfig,
    payload: dict,
    workload: list[list[GlobalJoinQuery]],
    calm_rounds: int,
    shifted_rounds: int,
    gap_seconds: float,
) -> StrategyRun:
    """One racer's ladder in its own cloned universe."""
    started = time.perf_counter()
    var, steady = _make_universe(config)
    tracker = AccuracyTracker(probe_window_size=8, export=False)
    # A sub-round probe TTL gives every round a fresh contention reading
    # (requests within the round share it) — the loadgen tuning.
    server = MDBSServer(accuracy=tracker, probe_ttl=gap_seconds / 4.0)
    for site in (var, steady):
        server.register_agent(MDBSAgent(site.database))
    server.catalog.import_models(payload)
    registry = server.catalog.registry

    online = resolve_strategy(strategy).supports_online_update
    if not online:
        # The paper's arm: drift detection + maintainer re-derivation is
        # the only recovery path.  Online arms get neither — their only
        # path is the per-query update inside execute().
        agent = server.agents[var.name]
        server.configure_maintenance(
            var.name,
            builder=CostModelBuilder(
                agent.database,
                probe=agent.probe,
                config=_builder_config(strategy),
            ),
            drift=_race_policy(gap_seconds),
        )
        for query_class in _MODEL_CLASSES:
            server.register_model_class(
                var.name,
                query_class,
                lambda n, s=var, qc=query_class: s.generator.queries_for(
                    qc, n, tables=TABLES
                ),
                sample_count=config.train_count(query_class.family),
                build_now=False,
                strategy=strategy,
            )

    per_round = len(workload[0]) if workload else 0
    # ~3 rounds of watched-class samples: long enough to be stable,
    # short enough that recovery shows while the shift is still serving.
    window = max(6, 3 * per_round)
    serving = ServingConfig(
        workers=1,
        queue_depth=max(16, per_round * 2),
        admission_policy="block",
        plan_cache=True,
    )
    rounds: list[RaceRound] = []
    run = StrategyRun(strategy=strategy, rounds=rounds, score=None)
    with ServingFrontEnd(server, serving) as frontend:
        for index in range(calm_rounds + shifted_rounds):
            phase = "calm" if index < calm_rounds else "shifted"
            if index == calm_rounds:
                var.load_builder.constant(SHIFTED_LEVEL)
            var.environment.advance(gap_seconds)
            steady.environment.advance(gap_seconds)
            for query in workload[index]:
                run.requests += 1
                ticket = frontend.serve([query])[0]
                if ticket.ok:
                    run.completed += 1
                else:
                    run.failed += 1
            if not online:
                server.maintain()
            stats = tracker.recent_stats(var.name, WATCHED_CLASS, window)
            rounds.append(
                RaceRound(
                    index=index,
                    phase=phase,
                    good_pct=stats.pct_good,
                    samples=stats.count,
                    queries=len(workload[index]),
                    active_version=registry.active_version(
                        var.name, WATCHED_CLASS
                    ).version,
                )
            )
        front_stats = frontend.stats()

    for site_name, label in registry.keys():
        entry = registry.active_version(site_name, label)
        if entry.provenance is not None:
            if entry.provenance.trigger is not None:
                run.rebuilds += 1
            run.online_updates += entry.provenance.online_updates
    run.plan_cache_hits = front_stats.plan_cache_hits
    run.plan_cache_misses = front_stats.plan_cache_misses
    referee = DriftDetector(_race_policy(gap_seconds))
    run.score = referee.score_recovery(
        [r.timeline_entry() for r in rounds], floor_pct=FLOOR_PCT
    )
    run.wall_seconds = time.perf_counter() - started
    return run


def run_model_race(
    config: ExperimentConfig | None = None,
    calm_rounds: int = 8,
    shifted_rounds: int = 14,
    queries_per_round: int = 3,
    gap_seconds: float = 600.0,
    strategies: tuple[str, ...] = RACE_STRATEGIES,
) -> ModelRaceResult:
    """Train once, then run every form over the identical ladder."""
    config = config or ExperimentConfig()
    payloads = _train_payloads(config)
    workload = _make_workload(
        config, calm_rounds + shifted_rounds, queries_per_round
    )
    result = ModelRaceResult(
        calm_rounds=calm_rounds,
        shifted_rounds=shifted_rounds,
        queries_per_round=queries_per_round,
        floor_pct=FLOOR_PCT,
    )
    for strategy in strategies:
        result.runs.append(
            _run_strategy(
                strategy,
                config,
                payloads[strategy],
                workload,
                calm_rounds,
                shifted_rounds,
                gap_seconds,
            )
        )
    return result


def render_model_race(result: ModelRaceResult) -> str:
    """The accuracy-vs-recovery frontier (deterministic; no wall clock)."""
    headers = [
        "form",
        "served",
        "failed",
        "calm good %",
        "degraded",
        "recovered",
        "queries to recover",
        "rebuilds",
        "online updates",
    ]
    rows = []
    for run in result.runs:
        score = run.score
        rows.append(
            (
                run.strategy,
                run.completed,
                run.failed,
                score.calm_good_pct,
                "-" if score.degraded_round is None else score.degraded_round,
                "never"
                if score.recovered_round is None
                else score.recovered_round,
                "-"
                if score.queries_to_recover is None
                else score.queries_to_recover,
                run.rebuilds,
                run.online_updates,
            )
        )
    table = format_table(
        headers,
        rows,
        title=(
            f"Model-form race: {result.calm_rounds} calm + "
            f"{result.shifted_rounds} shifted rounds, "
            f"{result.queries_per_round} queries/round, "
            f"floor {result.floor_pct:.0f}% good"
        ),
    )
    lines = [table, ""]
    baseline = result.ols_queries_to_recover
    if baseline is None:
        lines.append("mlr.ols never recovered within the ladder")
    else:
        lines.append(
            f"mlr.ols (re-derivation) recovered after {baseline} served queries"
        )
    winners = result.online_winners()
    if winners:
        lines.append(
            "online forms beating re-derivation: " + ", ".join(winners)
        )
    else:
        lines.append("no online form beat re-derivation")
    return "\n".join(lines)


def render_race_timings(result: ModelRaceResult) -> str:
    """Wall-clock diagnostics (NOT byte-stable across runs)."""
    return "\n".join(
        f"{run.strategy}: wall {run.wall_seconds:.2f}s  "
        f"cache {run.plan_cache_hits}h/{run.plan_cache_misses}m"
        for run in result.runs
    )


def model_race_payload(result: ModelRaceResult) -> dict:
    """The ``BENCH_model_race.json`` payload (see EXPERIMENTS.md)."""
    return {
        "bench": "model_race",
        "schema_version": 1,
        "calm_rounds": result.calm_rounds,
        "shifted_rounds": result.shifted_rounds,
        "queries_per_round": result.queries_per_round,
        "floor_pct": result.floor_pct,
        "ols_queries_to_recover": result.ols_queries_to_recover,
        "online_winners": result.online_winners(),
        "strategies": [
            {
                "strategy": run.strategy,
                "requests": run.requests,
                "completed": run.completed,
                "failed": run.failed,
                "rebuilds": run.rebuilds,
                "online_updates": run.online_updates,
                "plan_cache_hits": run.plan_cache_hits,
                "plan_cache_misses": run.plan_cache_misses,
                "wall_seconds": run.wall_seconds,
                "score": run.score.to_dict(),
                "rounds": [
                    {
                        "index": r.index,
                        "phase": r.phase,
                        "good_pct": r.good_pct,
                        "samples": r.samples,
                        "queries": r.queries,
                        "active_version": r.active_version,
                    }
                    for r in run.rounds
                ],
            }
            for run in result.runs
        ],
    }
