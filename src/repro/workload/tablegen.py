"""Synthetic local databases mirroring the paper's experimental setup.

§5: "each local database has 12 randomly-generated tables (R1 .. R12)
with cardinalities ranging from 3,000 to 250,000.  Each table has a
number of indexed columns and various selectivities for different
columns."  Figure 1's example table is ``R7(a1, ..., a9)`` with 50,000
tuples of random numbers.

We reproduce that shape: tables R1..R12 with nine integer columns
``a1..a9`` of uniformly random values, per-column value ranges chosen to
give a spread of distinct counts (hence selectivities), a non-clustered
index on ``a1``, and a clustered index on ``a2`` for every third table.
A ``scale`` knob shrinks cardinalities proportionally so tests and
benchmarks stay fast; experiments record the scale they used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine.database import LocalDatabase
from ..engine.profiles import DBMSProfile, ORACLE_LIKE
from ..engine.schema import Column
from ..engine.types import DataType
from ..env.environment import Environment

#: Paper-scale cardinalities for R1..R12 (3,000 – 250,000).
PAPER_CARDINALITIES = (
    3_000,
    5_000,
    8_000,
    12_000,
    20_000,
    30_000,
    50_000,
    75_000,
    100_000,
    150_000,
    200_000,
    250_000,
)

#: Value range of each column a1..a9 ("various selectivities for
#: different columns"); a1 scales with the cardinality so its index stays
#: selective, a4 is the narrow join column, a9 is nearly categorical.
COLUMN_RANGES = {
    "a1": None,  # cardinality-dependent
    "a2": 10_000,
    "a3": 1_000,
    "a4": 2_000,
    "a5": 100_000,
    "a6": 500,
    "a7": 50_000,
    "a8": 2_000,
    "a9": 10,
}

COLUMN_NAMES = tuple(COLUMN_RANGES)


@dataclass(frozen=True)
class TableSpec:
    """One randomly generated table."""

    name: str
    cardinality: int
    #: Column name -> exclusive upper bound on its uniform values.
    ranges: dict[str, int] = field(default_factory=dict)
    nonclustered_index_on: str | None = "a1"
    clustered_index_on: str | None = None

    def resolved_ranges(self) -> dict[str, int]:
        out = {}
        for col, rng in COLUMN_RANGES.items():
            if col in self.ranges:
                out[col] = self.ranges[col]
            elif rng is None:
                out[col] = max(1_000, self.cardinality)
            else:
                out[col] = rng
        return out


@dataclass(frozen=True)
class WorkloadSpec:
    """A full local database: its tables plus generation parameters."""

    tables: tuple[TableSpec, ...]
    seed: int = 0


def paper_workload(scale: float = 1.0, seed: int = 0) -> WorkloadSpec:
    """The R1..R12 schema at the given cardinality *scale*.

    ``scale=1.0`` reproduces the paper's 3,000–250,000 range; smaller
    scales shrink every table proportionally (minimum 200 rows).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    tables = []
    for i, cardinality in enumerate(PAPER_CARDINALITIES, start=1):
        rows = max(200, int(round(cardinality * scale)))
        tables.append(
            TableSpec(
                name=f"R{i}",
                cardinality=rows,
                # Every third table is clustered on a2, giving the
                # clustered-scan and sort-merge classes real members.
                clustered_index_on="a2" if i % 3 == 0 else None,
            )
        )
    return WorkloadSpec(tables=tuple(tables), seed=seed)


def small_workload(num_tables: int = 4, base_rows: int = 2_000, seed: int = 0) -> WorkloadSpec:
    """A compact workload for unit/integration tests."""
    if num_tables < 1:
        raise ValueError("num_tables must be at least 1")
    tables = tuple(
        TableSpec(
            name=f"R{i}",
            cardinality=base_rows * i,
            clustered_index_on="a2" if i % 3 == 0 else None,
        )
        for i in range(1, num_tables + 1)
    )
    return WorkloadSpec(tables=tables, seed=seed)


def generate_rows(spec: TableSpec, rng: np.random.Generator) -> list[tuple]:
    """Random rows for *spec* (uniform integers per column range)."""
    ranges = spec.resolved_ranges()
    matrix = np.column_stack(
        [
            rng.integers(0, ranges[col], size=spec.cardinality)
            for col in COLUMN_NAMES
        ]
    )
    return [tuple(int(v) for v in row) for row in matrix]


def populate_database(
    database: LocalDatabase, workload: WorkloadSpec
) -> LocalDatabase:
    """Create and load every table (plus indexes) of *workload*."""
    rng = np.random.default_rng(workload.seed)
    columns = [Column(name, DataType.INT) for name in COLUMN_NAMES]
    for spec in workload.tables:
        database.create_table(spec.name, columns, generate_rows(spec, rng))
        if spec.clustered_index_on:
            database.create_index(
                f"{spec.name}_c_{spec.clustered_index_on}",
                spec.name,
                spec.clustered_index_on,
                clustered=True,
            )
        if spec.nonclustered_index_on:
            database.create_index(
                f"{spec.name}_nc_{spec.nonclustered_index_on}",
                spec.name,
                spec.nonclustered_index_on,
                clustered=False,
            )
    database.analyze()
    return database


def build_local_database(
    name: str,
    profile: DBMSProfile = ORACLE_LIKE,
    environment: Environment | None = None,
    workload: WorkloadSpec | None = None,
    noise_sigma: float = 0.05,
    seed: int = 0,
) -> LocalDatabase:
    """Convenience: a fully populated local DBS in one call."""
    database = LocalDatabase(
        name,
        profile=profile,
        environment=environment,
        noise_sigma=noise_sigma,
        seed=seed,
    )
    return populate_database(database, workload or small_workload(seed=seed))
