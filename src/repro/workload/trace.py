"""Timed query workloads and replay against derived cost models.

The paper's motivation is operational: a global optimizer keeps using
the same derived models while the local site's load swings over hours.
This module makes that scenario directly testable — build a
:class:`WorkloadTrace` (queries with arrival times), replay it against a
live site, and record, query by query, the observed cost, the cost the
relevant multi-states model would have estimated *at that moment* (fresh
probing cost, current contention), and the estimate quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.classification import QueryClass, classify
from ..core.model import MultiStateCostModel
from ..core.probing import ProbingQuery
from ..core.validation import is_good, is_very_good, relative_error
from ..core.variables import extract_variables
from ..engine.database import LocalDatabase
from ..engine.query import Query
from .querygen import QueryGenerator


@dataclass(frozen=True)
class TraceEntry:
    """One query arrival."""

    at_time: float
    query: Query

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ValueError("arrival time must be non-negative")


@dataclass(frozen=True)
class WorkloadTrace:
    """A time-ordered sequence of query arrivals."""

    entries: tuple[TraceEntry, ...]

    def __post_init__(self) -> None:
        times = [e.at_time for e in self.entries]
        if times != sorted(times):
            raise ValueError("trace entries must be sorted by arrival time")

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def duration(self) -> float:
        return self.entries[-1].at_time if self.entries else 0.0

    @classmethod
    def mixed(
        cls,
        generator: QueryGenerator,
        class_counts: Mapping[QueryClass, int],
        duration_seconds: float,
        seed: int = 0,
        tables: Sequence[str] | None = None,
    ) -> "WorkloadTrace":
        """A random mix of classes with uniform arrival times.

        ``class_counts`` maps each query class to how many of its queries
        the trace contains; arrivals are shuffled together and spread
        uniformly over ``duration_seconds``.
        """
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        rng = np.random.default_rng(seed)
        queries: list[Query] = []
        for query_class, count in class_counts.items():
            queries.extend(generator.queries_for(query_class, count, tables=tables))
        order = rng.permutation(len(queries))
        times = np.sort(rng.uniform(0.0, duration_seconds, len(queries)))
        entries = tuple(
            TraceEntry(float(t), queries[int(i)]) for t, i in zip(times, order)
        )
        return cls(entries)


@dataclass
class ReplayRecord:
    """One replayed query's outcome."""

    at_time: float
    class_label: str
    contention_level: float
    probing_cost: float
    observed: float
    estimated: float | None  # None when no model covers the class

    @property
    def covered(self) -> bool:
        return self.estimated is not None

    @property
    def rel_error(self) -> float:
        if self.estimated is None:
            return float("nan")
        return relative_error(self.estimated, self.observed)


@dataclass
class ReplayReport:
    """Aggregated outcome of one trace replay."""

    records: list[ReplayRecord] = field(default_factory=list)

    @property
    def covered_records(self) -> list[ReplayRecord]:
        return [r for r in self.records if r.covered]

    @property
    def pct_very_good(self) -> float:
        covered = self.covered_records
        if not covered:
            return 0.0
        hits = sum(is_very_good(r.estimated, r.observed) for r in covered)
        return 100.0 * hits / len(covered)

    @property
    def pct_good(self) -> float:
        covered = self.covered_records
        if not covered:
            return 0.0
        hits = sum(is_good(r.estimated, r.observed) for r in covered)
        return 100.0 * hits / len(covered)

    def by_class(self) -> dict[str, list[ReplayRecord]]:
        out: dict[str, list[ReplayRecord]] = {}
        for record in self.records:
            out.setdefault(record.class_label, []).append(record)
        return out


def replay_trace(
    database: LocalDatabase,
    trace: WorkloadTrace,
    models: Mapping[str, MultiStateCostModel],
    probe: ProbingQuery,
) -> ReplayReport:
    """Replay *trace* on *database*, estimating each query just-in-time.

    The simulated clock advances to each arrival; the probe runs to
    resolve the contention state; the query executes; the class's model
    (if any) produces the estimate the optimizer *would* have used.
    """
    report = ReplayReport()
    env = database.environment
    for entry in trace.entries:
        if entry.at_time > env.now:
            env.advance(entry.at_time - env.now)
        query_class = classify(database, entry.query)
        probing_cost = probe.observe()
        result = database.execute(entry.query)
        model = models.get(query_class.label)
        estimated = (
            model.predict(extract_variables(result), probing_cost)
            if model is not None
            else None
        )
        report.records.append(
            ReplayRecord(
                at_time=entry.at_time,
                class_label=query_class.label,
                contention_level=result.contention_level,
                probing_cost=probing_cost,
                observed=result.elapsed,
                estimated=estimated,
            )
        )
    return report
