"""Canned experimental sites: database + environment + generator bundles.

The §5 experiments need the same local database observed under different
environments (static for Static Approach 1, dynamic-uniform for the main
results, dynamic-clustered for Table 6).  A :class:`Site` bundles one
local DBS with its environment, load builder, and query generator, and
the factory functions build the standard configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.database import LocalDatabase
from ..engine.profiles import DB2_LIKE, DBMSProfile, ORACLE_LIKE
from ..env.environment import (
    Environment,
    dynamic_clustered_environment,
    dynamic_uniform_environment,
    static_environment,
)
from ..env.loadbuilder import LoadBuilder
from ..env.monitor import EnvironmentMonitor
from .querygen import QueryGenerator
from .tablegen import WorkloadSpec, paper_workload, populate_database

ENVIRONMENT_KINDS = ("static", "uniform", "clustered")

#: Named contention scripts the load-generation harness cycles over a
#: shard fleet (:mod:`repro.loadgen`).  Each is a *scenario*: a recipe
#: for what one site's contention trace does over a served timeline.
SCENARIO_KINDS = ("calm", "random_walk", "clustered", "regime_shift")

#: The restrained range models are derived (and calm scenarios served)
#: under — mirrors the drift-detection experiment's baseline regime.
SCENARIO_CALM_RANGE = (0.0, 0.45)
#: Where the ``regime_shift`` scenario pins contention: outside every
#: calm-derived [Cmin, Cmax] range, so the drift loop must react.
SCENARIO_SHIFTED_LEVEL = 0.9


def scenario_shift_round(total_rounds: int, fraction: float = 1.0 / 3.0) -> int:
    """The served round at which ``regime_shift`` leaves the calm regime."""
    return max(1, int(total_rounds * fraction))


def install_scenario_trace(
    load_builder: LoadBuilder,
    kind: str,
    round_index: int,
    total_rounds: int,
    calm: tuple[float, float] = SCENARIO_CALM_RANGE,
    shifted_level: float = SCENARIO_SHIFTED_LEVEL,
) -> bool:
    """Install the contention trace *kind* prescribes at *round_index*.

    Determinism comes from the load builder's seed: re-installing the
    same scenario on the same builder reproduces the same trace.  The
    harness calls this at round 0, at the ``regime_shift`` boundary, and
    whenever an injected fault clears and the scenario's own trace must
    come back.  Returns True when the regime-shift disturbance is in
    effect at this round (the onset signal the drift loop is measured
    against).
    """
    if kind == "calm":
        load_builder.uniform(*calm)
        return False
    if kind == "random_walk":
        load_builder.random_walk(step=0.08, start=0.35)
        return False
    if kind == "clustered":
        load_builder.clustered()
        return False
    if kind == "regime_shift":
        if round_index >= scenario_shift_round(total_rounds):
            load_builder.constant(shifted_level)
            return True
        load_builder.uniform(*calm)
        return False
    raise ValueError(
        f"unknown scenario kind {kind!r}; pick from {SCENARIO_KINDS}"
    )


@dataclass
class Site:
    """One local site of the multidatabase system, ready to experiment on."""

    database: LocalDatabase
    environment: Environment
    load_builder: LoadBuilder
    monitor: EnvironmentMonitor
    generator: QueryGenerator

    @property
    def name(self) -> str:
        return self.database.name


def make_environment(kind: str, seed: int = 0) -> Environment:
    """Build one of the three standard environments."""
    if kind == "static":
        return static_environment()
    if kind == "uniform":
        return dynamic_uniform_environment(seed=seed)
    if kind == "clustered":
        return dynamic_clustered_environment(seed=seed)
    raise ValueError(f"unknown environment kind {kind!r}; pick from {ENVIRONMENT_KINDS}")


def make_site(
    name: str,
    profile: DBMSProfile = ORACLE_LIKE,
    environment_kind: str = "uniform",
    workload: WorkloadSpec | None = None,
    scale: float = 0.05,
    seed: int = 0,
    noise_sigma: float = 0.05,
    buffer_pages: int | None = None,
) -> Site:
    """Assemble a populated site.

    ``scale`` shrinks the paper's 3,000–250,000-row tables so that full
    pipelines stay laptop-fast; experiments record the scale used.
    ``buffer_pages`` enables the simulated buffer pool (sized in pages);
    sites with a pool expose the buffer-hit state as an extra
    qualitative variable.
    """
    environment = make_environment(environment_kind, seed=seed)
    database = LocalDatabase(
        name,
        profile=profile,
        environment=environment,
        noise_sigma=noise_sigma,
        seed=seed,
        buffer_pages=buffer_pages,
    )
    populate_database(database, workload or paper_workload(scale=scale, seed=seed))
    return Site(
        database=database,
        environment=environment,
        load_builder=LoadBuilder(environment, seed=seed),
        monitor=EnvironmentMonitor(environment),
        generator=QueryGenerator(database, seed=seed + 1),
    )


def make_two_site_universe(
    *,
    names: tuple[str, str],
    profiles: tuple[DBMSProfile, DBMSProfile],
    seeds: tuple[int, int],
    scale: float,
    calm_range: tuple[float, float] | None = None,
    environment_kind: str = "uniform",
) -> tuple[Site, Site]:
    """The seeded two-site universe every serving experiment builds.

    The drift-detection experiment, the serving-throughput bench and the
    loadgen shards all construct the same shape — two :func:`make_site`
    calls differing only in names, profiles, and seed offsets, optionally
    pinned to a calm uniform contention range before model derivation.
    Centralizing it keeps their universes byte-identical for a given
    (names, profiles, seeds, scale) tuple no matter which harness asks.
    """
    first = make_site(
        names[0],
        profile=profiles[0],
        environment_kind=environment_kind,
        scale=scale,
        seed=seeds[0],
    )
    second = make_site(
        names[1],
        profile=profiles[1],
        environment_kind=environment_kind,
        scale=scale,
        seed=seeds[1],
    )
    if calm_range is not None:
        first.load_builder.uniform(*calm_range)
        second.load_builder.uniform(*calm_range)
    return first, second


def paper_sites(
    environment_kind: str = "uniform", scale: float = 0.05, seed: int = 0
) -> tuple[Site, Site]:
    """The paper's two local systems: an Oracle-like and a DB2-like site."""
    oracle = make_site(
        "oracle_site",
        profile=ORACLE_LIKE,
        environment_kind=environment_kind,
        scale=scale,
        seed=seed,
    )
    db2 = make_site(
        "db2_site",
        profile=DB2_LIKE,
        environment_kind=environment_kind,
        scale=scale,
        seed=seed + 100,
    )
    return oracle, db2
