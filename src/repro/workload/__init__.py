"""Synthetic databases, query generation, and canned experimental sites."""

from .querygen import (
    CLASS_SELECTIVITY,
    GenerationError,
    QueryGenerator,
    SelectivityRange,
)
from .scenarios import (
    ENVIRONMENT_KINDS,
    Site,
    make_environment,
    make_site,
    paper_sites,
)
from .tablegen import (
    COLUMN_NAMES,
    COLUMN_RANGES,
    PAPER_CARDINALITIES,
    TableSpec,
    WorkloadSpec,
    build_local_database,
    generate_rows,
    paper_workload,
    populate_database,
    small_workload,
)
from .trace import (
    ReplayRecord,
    ReplayReport,
    TraceEntry,
    WorkloadTrace,
    replay_trace,
)

__all__ = [
    "CLASS_SELECTIVITY",
    "COLUMN_NAMES",
    "COLUMN_RANGES",
    "ENVIRONMENT_KINDS",
    "GenerationError",
    "PAPER_CARDINALITIES",
    "QueryGenerator",
    "ReplayRecord",
    "ReplayReport",
    "SelectivityRange",
    "Site",
    "TableSpec",
    "TraceEntry",
    "WorkloadSpec",
    "WorkloadTrace",
    "build_local_database",
    "generate_rows",
    "make_environment",
    "make_site",
    "paper_sites",
    "paper_workload",
    "populate_database",
    "replay_trace",
    "small_workload",
]
