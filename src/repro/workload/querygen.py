"""Random query generation per query class.

Sample and test queries are drawn the way the static method prescribes:
random operand tables, random projections, and range predicates whose
constants are chosen to hit a target selectivity spread — wide for
scan-based classes (so result sizes span the Figures 4–9 x-axis), narrow
for index-based classes (so the index stays "usable").

Every generated query is verified against
:func:`repro.core.classification.classify` (rejection sampling), so a
sample drawn for class G2 really is a G2 sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.classification import QueryClass, classify
from ..engine.database import LocalDatabase
from ..engine.errors import EngineError
from ..engine.predicate import And, Comparison, Predicate, TRUE
from ..engine.query import JoinQuery, Query, SelectQuery
from ..engine.table import Table


class GenerationError(EngineError):
    """The generator could not produce a query of the requested class."""


@dataclass(frozen=True)
class SelectivityRange:
    """Target selectivity interval for generated predicates."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 < self.low <= self.high <= 1.0:
            raise ValueError("need 0 < low <= high <= 1")

    def draw(self, rng: np.random.Generator) -> float:
        # Log-uniform: spreads result sizes over orders of magnitude,
        # like the paper's test-query scatter.
        return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))


#: Per-class selectivity targets for the driving predicate.
CLASS_SELECTIVITY = {
    "G1": SelectivityRange(0.01, 0.95),
    "G2": SelectivityRange(0.003, 0.10),
    "GC": SelectivityRange(0.01, 0.60),
    "G3": SelectivityRange(0.05, 0.80),
    "G4": SelectivityRange(0.005, 0.06),
    "G5": SelectivityRange(0.05, 0.80),
    "G6": SelectivityRange(0.05, 0.80),
}

#: Columns never indexed by the standard workload — safe for G1/G3
#: predicates and join keys.
UNINDEXED_COLUMNS = ("a3", "a5", "a6", "a7", "a8")

#: The standard workload's non-clustered-index column and join column.
INDEXED_COLUMN = "a1"
JOIN_COLUMN = "a4"
CLUSTERED_COLUMN = "a2"


class QueryGenerator:
    """Draws random queries of a requested class from one local database."""

    def __init__(
        self, database: LocalDatabase, seed: int = 0, max_attempts: int = 200
    ) -> None:
        self.database = database
        self.rng = np.random.default_rng(seed)
        self.max_attempts = max_attempts

    # -- public API --------------------------------------------------------

    def queries_for(
        self,
        query_class: QueryClass,
        count: int,
        tables: Sequence[str] | None = None,
    ) -> list[Query]:
        """Draw *count* queries that classify into *query_class*."""
        makers: dict[str, Callable[[list[Table]], Query]] = {
            "G1": self._make_g1,
            "G2": self._make_g2,
            "GC": self._make_gc,
            "G3": self._make_g3,
            "G4": self._make_g4,
            "G5": self._make_g5,
        }
        if query_class.label not in makers:
            raise GenerationError(f"no generator for class {query_class.label}")
        pool = self._table_pool(query_class, tables)
        maker = makers[query_class.label]
        out: list[Query] = []
        for _ in range(count):
            out.append(self._rejection_sample(maker, pool, query_class))
        return out

    # -- helpers -------------------------------------------------------------

    def _table_pool(
        self, query_class: QueryClass, names: Sequence[str] | None
    ) -> list[Table]:
        catalog = self.database.catalog
        if names is None:
            tables = list(catalog.tables())
        else:
            tables = [catalog.table(n) for n in names]
        if query_class.label == "GC":
            tables = [t for t in tables if t.clustered_on == CLUSTERED_COLUMN]
        if query_class.label == "G5":
            tables = [t for t in tables if t.clustered_on == CLUSTERED_COLUMN]
        if query_class.label == "G2":
            tables = [
                t
                for t in tables
                if catalog.index_on(t.name, INDEXED_COLUMN) is not None
            ]
        minimum = 2 if query_class.family == "join" else 1
        if len(tables) < minimum:
            raise GenerationError(
                f"workload has no suitable tables for class {query_class.label}"
            )
        return tables

    def _rejection_sample(self, maker, pool, query_class) -> Query:
        for _ in range(self.max_attempts):
            query = maker(pool)
            if classify(self.database, query) == query_class:
                return query
        raise GenerationError(
            f"could not generate a {query_class.label} query in "
            f"{self.max_attempts} attempts"
        )

    def _pick_table(self, pool: list[Table]) -> Table:
        return pool[int(self.rng.integers(0, len(pool)))]

    def _pick_two_tables(self, pool: list[Table]) -> tuple[Table, Table]:
        i, j = self.rng.choice(len(pool), size=2, replace=False)
        return pool[int(i)], pool[int(j)]

    def _projection(self, table: Table) -> tuple[str, ...]:
        names = table.schema.column_names
        k = int(self.rng.integers(1, len(names) + 1))
        chosen = self.rng.choice(len(names), size=k, replace=False)
        return tuple(names[int(i)] for i in sorted(chosen))

    def _range_predicate(
        self, table: Table, column: str, selectivity: float
    ) -> Predicate:
        """A one- or two-sided range predicate targeting *selectivity*."""
        stats = table.statistics.column(column)
        lo, hi = stats.minimum, stats.maximum
        if lo is None or hi is None or hi <= lo:
            return TRUE
        span = hi - lo
        if self.rng.random() < 0.5:
            # One-sided: col <= cut or col >= cut.
            if self.rng.random() < 0.5:
                cut = lo + selectivity * span
                return Comparison(column, "<=", int(round(cut)))
            cut = hi - selectivity * span
            return Comparison(column, ">=", int(round(cut)))
        # Two-sided window of width selectivity * span at a random spot.
        width = selectivity * span
        start = lo + self.rng.random() * max(0.0, span - width)
        return And(
            Comparison(column, ">=", int(round(start))),
            Comparison(column, "<=", int(round(start + width))),
        )

    def _unindexed_column(self) -> str:
        return UNINDEXED_COLUMNS[int(self.rng.integers(0, len(UNINDEXED_COLUMNS)))]

    # -- unary classes -------------------------------------------------------

    def _make_g1(self, pool: list[Table]) -> SelectQuery:
        """Unary, no usable index: predicates on unindexed columns only."""
        table = self._pick_table(pool)
        sel = CLASS_SELECTIVITY["G1"].draw(self.rng)
        predicate = self._range_predicate(table, self._unindexed_column(), sel)
        if self.rng.random() < 0.4:
            extra = self._range_predicate(
                table, self._unindexed_column(), float(self.rng.uniform(0.3, 0.95))
            )
            predicate = And(predicate, extra)
        return SelectQuery(table.name, self._projection(table), predicate)

    def _make_g2(self, pool: list[Table]) -> SelectQuery:
        """Unary, usable non-clustered range index on a1."""
        table = self._pick_table(pool)
        sel = CLASS_SELECTIVITY["G2"].draw(self.rng)
        predicate = self._range_predicate(table, INDEXED_COLUMN, sel)
        if self.rng.random() < 0.4:
            residual = self._range_predicate(
                table, self._unindexed_column(), float(self.rng.uniform(0.3, 0.95))
            )
            predicate = And(predicate, residual)
        return SelectQuery(table.name, self._projection(table), predicate)

    def _make_gc(self, pool: list[Table]) -> SelectQuery:
        """Unary over a table clustered on a2, range on the clustered key."""
        table = self._pick_table(pool)
        sel = CLASS_SELECTIVITY["GC"].draw(self.rng)
        predicate = self._range_predicate(table, CLUSTERED_COLUMN, sel)
        return SelectQuery(table.name, self._projection(table), predicate)

    # -- join classes ------------------------------------------------------------

    def _join_projection(self, left: Table, right: Table) -> tuple[str, ...]:
        cols = []
        for table in (left, right):
            names = table.schema.column_names
            k = int(self.rng.integers(1, 4))
            chosen = self.rng.choice(len(names), size=k, replace=False)
            cols.extend(f"{table.name}.{names[int(i)]}" for i in sorted(chosen))
        return tuple(cols)

    def _make_g3(self, pool: list[Table]) -> JoinQuery:
        """Join on the unindexed a4 column (hash join)."""
        left, right = self._pick_two_tables(pool)
        sel_range = CLASS_SELECTIVITY["G3"]
        return JoinQuery(
            left.name,
            right.name,
            JOIN_COLUMN,
            JOIN_COLUMN,
            self._join_projection(left, right),
            self._range_predicate(left, self._unindexed_column(), sel_range.draw(self.rng)),
            self._range_predicate(right, self._unindexed_column(), sel_range.draw(self.rng)),
        )

    def _make_g4(self, pool: list[Table]) -> JoinQuery:
        """Index nested-loop join: selective outer, indexed inner (a1)."""
        a, b = self._pick_two_tables(pool)
        outer, inner = (a, b) if a.cardinality <= b.cardinality else (b, a)
        # Keep the estimated outer intermediate below the optimizer's
        # INLJ threshold for the inner's cardinality.
        max_sel = 0.08 * inner.cardinality / max(1, outer.cardinality)
        sel_range = CLASS_SELECTIVITY["G4"]
        sel = min(sel_range.draw(self.rng), max(1e-4, max_sel))
        return JoinQuery(
            outer.name,
            inner.name,
            INDEXED_COLUMN,
            INDEXED_COLUMN,
            self._join_projection(outer, inner),
            self._range_predicate(outer, self._unindexed_column(), sel),
            TRUE,
        )

    def _make_g5(self, pool: list[Table]) -> JoinQuery:
        """Sort-merge join over operands clustered on the join column (a2)."""
        left, right = self._pick_two_tables(pool)
        sel_range = CLASS_SELECTIVITY["G5"]
        return JoinQuery(
            left.name,
            right.name,
            CLUSTERED_COLUMN,
            CLUSTERED_COLUMN,
            self._join_projection(left, right),
            self._range_predicate(left, self._unindexed_column(), sel_range.draw(self.rng)),
            self._range_predicate(right, self._unindexed_column(), sel_range.draw(self.rng)),
        )
