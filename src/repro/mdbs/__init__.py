"""The multidatabase layer: agents, global catalog, global optimization.

Mirrors the paper's CORDS-MDBS architecture (Figure 3): a global server
talks to autonomous local DBSs through per-site MDBS agents; derived cost
models live in the global catalog — as versioned artifacts in a
:class:`~repro.mdbs.registry.CostModelRegistry` — and drive inter-site
plan choice, with probing centralized in the
:class:`~repro.mdbs.probing_service.ProbingService`.
"""

from .agent import MDBSAgent
from .catalog import GlobalCatalog, GlobalCatalogError, MODEL_SCHEMA_VERSION, TableFacts
from .gquery import ComponentQueries, GlobalJoinQuery, decompose
from .multiway import (
    JoinLink,
    MultiJoinQuery,
    MultiwayExecution,
    MultiwayExecutor,
    MultiwayOptimizer,
    MultiwayPlan,
    MultiwayStep,
    Operand,
)
from .network import NetworkModel
from .optimizer import (
    CostEstimate,
    GlobalPlan,
    GlobalQueryOptimizer,
    estimate_join_variables,
    estimate_unary_variables,
    facts_to_statistics,
)
from .probing_service import PROBE_SOURCES, ProbeReading, ProbingService
from .registry import (
    CostModelRegistry,
    CostModelRegistryError,
    ModelProvenance,
    ModelVersion,
    config_fingerprint,
    describe_registry,
)
from .server import GlobalExecution, MDBSServer, StepTiming

__all__ = [
    "ComponentQueries",
    "CostEstimate",
    "CostModelRegistry",
    "CostModelRegistryError",
    "GlobalCatalog",
    "GlobalCatalogError",
    "GlobalExecution",
    "GlobalJoinQuery",
    "GlobalPlan",
    "GlobalQueryOptimizer",
    "JoinLink",
    "MDBSAgent",
    "MDBSServer",
    "MODEL_SCHEMA_VERSION",
    "ModelProvenance",
    "ModelVersion",
    "MultiJoinQuery",
    "MultiwayExecution",
    "MultiwayExecutor",
    "MultiwayOptimizer",
    "MultiwayPlan",
    "MultiwayStep",
    "NetworkModel",
    "Operand",
    "PROBE_SOURCES",
    "ProbeReading",
    "ProbingService",
    "StepTiming",
    "TableFacts",
    "config_fingerprint",
    "decompose",
    "describe_registry",
    "estimate_join_variables",
    "estimate_unary_variables",
    "facts_to_statistics",
]
