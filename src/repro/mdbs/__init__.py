"""The multidatabase layer: agents, global catalog, global optimization.

Mirrors the paper's CORDS-MDBS architecture (Figure 3): a global server
talks to autonomous local DBSs through per-site MDBS agents; derived cost
models live in the global catalog and drive inter-site plan choice.
"""

from .agent import MDBSAgent
from .catalog import GlobalCatalog, GlobalCatalogError, TableFacts
from .gquery import ComponentQueries, GlobalJoinQuery, decompose
from .multiway import (
    JoinLink,
    MultiJoinQuery,
    MultiwayExecution,
    MultiwayExecutor,
    MultiwayOptimizer,
    MultiwayPlan,
    MultiwayStep,
    Operand,
)
from .network import NetworkModel
from .optimizer import (
    CostEstimate,
    GlobalPlan,
    GlobalQueryOptimizer,
    estimate_join_variables,
    estimate_unary_variables,
    facts_to_statistics,
)
from .server import GlobalExecution, MDBSServer, StepTiming

__all__ = [
    "ComponentQueries",
    "CostEstimate",
    "GlobalCatalog",
    "GlobalCatalogError",
    "GlobalExecution",
    "GlobalJoinQuery",
    "GlobalPlan",
    "GlobalQueryOptimizer",
    "JoinLink",
    "MDBSAgent",
    "MDBSServer",
    "MultiJoinQuery",
    "MultiwayExecution",
    "MultiwayExecutor",
    "MultiwayOptimizer",
    "MultiwayPlan",
    "MultiwayStep",
    "NetworkModel",
    "Operand",
    "StepTiming",
    "TableFacts",
    "decompose",
    "estimate_join_variables",
    "estimate_unary_variables",
    "facts_to_statistics",
]
