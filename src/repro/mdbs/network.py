"""A simple network model for inter-site data shipping.

The paper treats network factors as out of scope ("some of them were
considered in [15]") and its experiments run on a LAN; we model the
network as a *steady* factor — fixed latency plus fixed bandwidth — so
the dynamic behaviour under study stays local to the sites.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point shipping cost between two sites."""

    #: Per-message fixed overhead in seconds.
    latency_seconds: float = 0.01
    #: Sustained throughput in bytes per second (10 MB/s LAN default).
    bytes_per_second: float = 10e6

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        if self.bytes_per_second <= 0:
            raise ValueError("bytes_per_second must be positive")

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to ship *num_bytes* from one site to another."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency_seconds + num_bytes / self.bytes_per_second
