"""The global query optimizer: cost-model-driven site selection.

"Based on the estimated local costs, the global query optimizer chooses
a good execution plan for a global query" (§1).  For a two-site join the
optimizer enumerates the *join site* (left or right), estimates each
candidate's total cost as

    local selection at A  +  local selection at B
    + shipping the remote intermediate to the join site
    + the join at the join site,

with every local cost estimated by the *active* derived multi-states
cost model of the query's class at that site, resolved to the current
contention state by a probing cost obtained through the
:class:`~repro.mdbs.probing_service.ProbingService` (one probe per site
per optimization; cached within the service's TTL).  Explanatory-variable
values come from global-catalog statistics only (cardinalities, tuple
lengths, selectivity estimates) — nothing that local autonomy would hide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..core.classification import QueryClass, class_by_label
from ..core.model import MultiStateCostModel
from ..engine.predicate import Comparison, extract_key_range
from ..engine.query import SelectQuery
from ..engine.schema import ColumnStatistics, TableStatistics
from .agent import MDBSAgent
from .catalog import GlobalCatalog, GlobalCatalogError, TableFacts
from .gquery import ComponentQueries, GlobalJoinQuery, decompose
from .network import NetworkModel
from .probing_service import ProbingService


def facts_to_statistics(facts: TableFacts) -> TableStatistics:
    """Rebuild engine-style statistics from exported catalog facts."""
    stats = TableStatistics(cardinality=facts.cardinality)
    for name, (minimum, maximum, distinct) in facts.column_stats.items():
        stats.columns[name] = ColumnStatistics(minimum, maximum, distinct)
    return stats


def estimate_unary_variables(
    facts: TableFacts, query: SelectQuery, query_class: QueryClass
) -> dict[str, float]:
    """Estimate the Table-3 unary variables from catalog facts alone."""
    stats = facts_to_statistics(facts)
    no = float(facts.cardinality)
    selectivity = query.predicate.selectivity(stats)
    nr = no * selectivity

    ni = no
    if query_class.access_method in ("nonclustered_index_scan", "clustered_index_scan"):
        index_column = _index_column_for(facts, query_class)
        if index_column is not None:
            key_range, _ = extract_key_range(query.predicate, index_column)
            if key_range is not None and key_range.is_bounded:
                ni = no * _range_selectivity(stats, index_column, key_range)

    lo = float(facts.tuple_length)
    out_columns = query.columns or tuple(facts.column_widths)
    lr = float(sum(facts.column_widths[c] for c in out_columns))
    return {
        "no": no,
        "ni": ni,
        "nr": nr,
        "lo": lo,
        "lr": lr,
        "tlo": no * lo,
        "tlr": nr * lr,
    }


def _index_column_for(facts: TableFacts, query_class: QueryClass) -> str | None:
    wanted = (
        "clustered"
        if query_class.access_method == "clustered_index_scan"
        else "nonclustered"
    )
    for column, kind in sorted(facts.indexed_columns.items()):
        if kind == wanted:
            return column
    return None


def _range_selectivity(stats: TableStatistics, column: str, key_range) -> float:
    selectivity = 1.0
    if key_range.low is not None:
        op = ">=" if key_range.low_inclusive else ">"
        selectivity *= Comparison(column, op, key_range.low).selectivity(stats)
    if key_range.high is not None:
        op = "<=" if key_range.high_inclusive else "<"
        selectivity *= Comparison(column, op, key_range.high).selectivity(stats)
    if key_range.is_point:
        selectivity = Comparison(column, "=", key_range.low).selectivity(stats)
    return selectivity


def estimate_join_variables(
    n1: float,
    n2: float,
    l1: float,
    l2: float,
    ndv1: int,
    ndv2: int,
) -> dict[str, float]:
    """Join variables for an intermediate-by-intermediate equijoin.

    The shipped intermediates carry no predicates of their own, so
    ``ni = n``; the result estimate uses the standard
    |L|·|R| / max(ndv_L, ndv_R) equijoin formula.
    """
    ndv1_eff = max(1.0, min(float(ndv1), n1))
    ndv2_eff = max(1.0, min(float(ndv2), n2))
    nr = n1 * n2 / max(ndv1_eff, ndv2_eff)
    lr = l1 + l2
    return {
        "n1": n1,
        "n2": n2,
        "ni1": n1,
        "ni2": n2,
        "nr": nr,
        "nixni": n1 * n2,
        "l1": l1,
        "l2": l2,
        "lr": lr,
        "tl1": n1 * l1,
        "tl2": n2 * l2,
        "tlr": nr * lr,
    }


@dataclass(frozen=True)
class CostEstimate:
    """One component's estimated cost and the model that produced it."""

    description: str
    seconds: float
    class_label: str | None = None
    state: int | None = None
    #: Site whose cost model produced the estimate (None for estimates
    #: with no model behind them, e.g. network shipping).  Lets the
    #: accuracy tracker attribute each estimate-vs-actual pair to the
    #: (site, class, state) window that produced the prediction.
    site: str | None = None
    #: Explanatory-variable values behind the estimate.  Online model
    #: forms rebuild the design row from these to fold the served
    #: estimate-vs-actual sample back into the model.
    values: dict | None = field(default=None, compare=False, hash=False)


@dataclass
class GlobalPlan:
    """A candidate execution strategy for a global join."""

    query: GlobalJoinQuery
    components: ComponentQueries
    join_site: str  # "left" or "right"
    estimates: list[CostEstimate] = field(default_factory=list)

    @property
    def estimated_seconds(self) -> float:
        return sum(e.seconds for e in self.estimates)

    def describe(self) -> str:
        lines = [f"join at {self.join_site} site — est {self.estimated_seconds:.2f}s"]
        lines += [f"  {e.description}: {e.seconds:.3f}s" for e in self.estimates]
        return "\n".join(lines)


class GlobalQueryOptimizer:
    """Chooses where to execute the inter-site join."""

    def __init__(
        self,
        catalog: GlobalCatalog,
        agents: dict[str, MDBSAgent],
        network: NetworkModel | None = None,
        prefer_estimated_probing: bool = False,
        probing: ProbingService | None = None,
    ) -> None:
        self.catalog = catalog
        self.agents = agents
        self.network = network or NetworkModel()
        self.prefer_estimated_probing = prefer_estimated_probing
        # A private ttl=0 service reproduces the pre-lifecycle behavior
        # exactly: every optimization probes each involved site afresh.
        self.probing = probing or ProbingService(agents)

    # -- probing + model resolution -----------------------------------------

    def probing_cost(self, site: str) -> float | None:
        """This optimization's probing cost for *site* (None = degraded)."""
        return self.probing.probing_cost(
            site, prefer_estimated=self.prefer_estimated_probing
        )

    def _model_for(self, site: str, query_class: QueryClass) -> MultiStateCostModel:
        """The active model for the class — or a same-family stand-in.

        A site can transiently lack a model for a class (not yet derived,
        or dropped by maintenance).  Classes in the same family share the
        explanatory-variable set, so any same-family model at the site
        can still produce an order-of-magnitude estimate; that beats
        aborting the whole plan enumeration.
        """
        try:
            return self.catalog.cost_model(site, query_class.label)
        except GlobalCatalogError:
            for model in self.catalog.cost_models_at(site):
                if model.family == query_class.family:
                    obs.inc("mdbs.optimizer.class_fallback")
                    return model
            raise

    @staticmethod
    def _resolve(
        model: MultiStateCostModel,
        values: dict[str, float],
        probing_cost: float | None,
    ) -> tuple[int, float]:
        """(state, seconds) — static middle-state prediction when no
        probing cost could be determined (the chain's last fallback)."""
        if probing_cost is None:
            obs.inc("mdbs.optimizer.static_predictions")
            state = model.num_states // 2
        else:
            state = model.state_for(probing_cost)
        return state, max(0.0, model.predict_in_state(values, state))

    # -- local estimation ----------------------------------------------------

    def estimate_select(
        self, site: str, query: SelectQuery, probing_cost: float | None = None
    ) -> tuple[CostEstimate, dict[str, float]]:
        """Estimated cost + variables of a local selection at *site*."""
        agent = self.agents[site]
        query_class = agent.classify(query)
        facts = self.catalog.table(site, query.table)
        values = estimate_unary_variables(facts, query, query_class)
        model = self._model_for(site, query_class)
        if probing_cost is None:
            probing_cost = self.probing_cost(site)
        state, seconds = self._resolve(model, values, probing_cost)
        return (
            CostEstimate(
                f"select {query.table} at {site} ({query_class.label}, s{state})",
                seconds,
                query_class.label,
                state,
                site,
                values=values,
            ),
            values,
        )

    def estimate_join(
        self,
        site: str,
        values: dict[str, float],
        probing_cost: float | None,
        join_class_label: str = "G3",
    ) -> CostEstimate:
        """Estimated cost of an intermediate-by-intermediate join at *site*."""
        model = self._model_for(site, class_by_label(join_class_label))
        state, seconds = self._resolve(model, values, probing_cost)
        return CostEstimate(
            f"join at {site} ({join_class_label}, s{state})",
            seconds,
            join_class_label,
            state,
            site,
            values=values,
        )

    # -- plan enumeration --------------------------------------------------------

    def plans(self, query: GlobalJoinQuery) -> list[GlobalPlan]:
        """Both join-site candidates, with full cost breakdowns."""
        left_facts = self.catalog.table(query.left_site, query.left_table)
        right_facts = self.catalog.table(query.right_site, query.right_table)
        components = decompose(
            query, tuple(left_facts.column_widths), tuple(right_facts.column_widths)
        )

        # One probing cost per site per optimization, shared across the
        # candidate plans (the contention state is a property of the site,
        # not of the plan).  The service additionally caches readings
        # across optimizations when its TTL is non-zero.
        left_probe = self.probing_cost(query.left_site)
        right_probe = (
            left_probe
            if query.right_site == query.left_site
            else self.probing_cost(query.right_site)
        )

        left_est, left_vars = self.estimate_select(
            query.left_site, components.left, left_probe
        )
        right_est, right_vars = self.estimate_select(
            query.right_site, components.right, right_probe
        )

        l1 = float(
            sum(left_facts.column_widths[c] for c in components.left.columns)
        )
        l2 = float(
            sum(right_facts.column_widths[c] for c in components.right.columns)
        )
        ndv1 = left_facts.column_stats.get(query.left_join_column, (None, None, 1))[2]
        ndv2 = right_facts.column_stats.get(query.right_join_column, (None, None, 1))[2]
        join_values = estimate_join_variables(
            left_vars["nr"], right_vars["nr"], l1, l2, ndv1, ndv2
        )

        plans = []
        for join_site_key, shipped_rows, shipped_width, probe in (
            ("right", left_vars["nr"], l1, right_probe),
            ("left", right_vars["nr"], l2, left_probe),
        ):
            site = query.right_site if join_site_key == "right" else query.left_site
            ship = CostEstimate(
                f"ship {int(shipped_rows)} tuples to {site}",
                self.network.transfer_seconds(shipped_rows * shipped_width),
            )
            join_est = self.estimate_join(site, join_values, probe)
            plans.append(
                GlobalPlan(
                    query=query,
                    components=components,
                    join_site=join_site_key,
                    estimates=[left_est, right_est, ship, join_est],
                )
            )
        return plans

    def choose(self, query: GlobalJoinQuery) -> GlobalPlan:
        """The minimum-estimated-cost plan."""
        candidates = self.plans(query)
        return min(candidates, key=lambda p: p.estimated_seconds)
