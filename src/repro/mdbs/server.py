"""The MDBS global server: the CORDS-style front end of Figure 3.

Registers per-site agents, maintains the global catalog (schema facts +
a versioned cost-model registry), optimizes global queries with the
:class:`~repro.mdbs.optimizer.GlobalQueryOptimizer`, and executes the
chosen plan for real: local component selections at each site, shipping
of one intermediate over the modeled network, and the join over
materialized temporaries at the join site.

The server also owns the two serving-side lifecycle components:

* a :class:`~repro.mdbs.probing_service.ProbingService` shared by every
  optimizer it hands out (``probe_ttl`` controls the cache; 0 = always
  probe afresh, the pre-lifecycle behavior);
* per-site :class:`~repro.core.maintenance.ModelMaintainer` instances
  (:meth:`configure_maintenance` / :meth:`register_model_class`), whose
  re-derived models :meth:`maintain` publishes into the registry as new
  versions — old versions stay available for :meth:`rollback_model`.

Every execution additionally feeds the model-quality telemetry: each
plan component's (estimate, observed) pair lands in the server's
:class:`~repro.obs.quality.AccuracyTracker` keyed by (site, class,
contention state), and :meth:`configure_maintenance` accepts a
``drift=`` policy whose :class:`~repro.obs.quality.DriftDetector` can
force a targeted re-derivation when accuracy degrades or probing costs
escape a model's partitioned state range — the triggering
:class:`~repro.obs.quality.DriftEvent` is recorded in the new version's
provenance.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .. import obs
from ..core.builder import BuildOutcome, CostModelBuilder
from ..core.classification import QueryClass
from ..core.maintenance import ChangeDetector, ModelMaintainer
from ..core.model import MultiStateCostModel
from ..core.strategy import CostModelStrategy, OnlineSample, model_form, strategy_for
from ..engine.query import JoinQuery, Query
from ..obs.quality import AccuracyTracker, DriftDetector, DriftEvent, DriftPolicy
from .agent import MDBSAgent
from .catalog import GlobalCatalog
from .gquery import GlobalJoinQuery
from .network import NetworkModel
from .optimizer import CostEstimate, GlobalPlan, GlobalQueryOptimizer
from .probing_service import ProbingService
from .registry import (
    CostModelRegistryError,
    ModelProvenance,
    ModelVersion,
    config_fingerprint,
)

_TEMP_LEFT = "_g_left"
_TEMP_RIGHT = "_g_right"


def _estimate_at(plan: GlobalPlan, index: int) -> CostEstimate | None:
    """The plan component estimate a step at *index* realizes, if any."""
    estimates = plan.estimates
    return estimates[index] if index < len(estimates) else None


@dataclass
class StepTiming:
    """Observed elapsed time of one plan step."""

    description: str
    seconds: float


@dataclass
class _OnlineFormState:
    """Per-(site, class) serving-time state of an online model form."""

    version: int
    strategy: CostModelStrategy
    #: The warm-started online estimator; None when the active version's
    #: form does not update online (cached to skip re-resolution).
    updater: object | None


@dataclass
class GlobalExecution:
    """Result of executing one global query."""

    plan: GlobalPlan
    column_names: tuple[str, ...]
    rows: list[tuple]
    steps: list[StepTiming] = field(default_factory=list)

    @property
    def observed_seconds(self) -> float:
        return sum(s.seconds for s in self.steps)

    @property
    def estimated_seconds(self) -> float:
        return self.plan.estimated_seconds

    @property
    def cardinality(self) -> int:
        return len(self.rows)


class MDBSServer:
    """The global level of the multidatabase system."""

    def __init__(
        self,
        network: NetworkModel | None = None,
        probe_ttl: float = 0.0,
        accuracy: AccuracyTracker | None = None,
    ) -> None:
        self.catalog = GlobalCatalog()
        self.agents: dict[str, MDBSAgent] = {}
        self.network = network or NetworkModel()
        #: Estimate-vs-actual accuracy windows, fed by every execution
        #: (and every executed probe, via the probing service).  Defaults
        #: to the process-global tracker so obs snapshots include it.
        self.accuracy = accuracy if accuracy is not None else obs.get_tracker()
        #: One re-entrant lock per site: everything that advances a
        #: site's simulated clock or touches its engine state (plan
        #: steps, temp tables, probing queries) runs under its lock, so
        #: serving-layer worker threads interleave safely.  Shared with
        #: the probing service, whose single-flight probes take the same
        #: locks.
        self.site_locks: dict[str, threading.RLock] = {}
        #: Shared by every optimizer this server hands out; ttl=0 keeps
        #: the pre-lifecycle always-fresh-probe behavior.
        self.probing = ProbingService(
            self.agents, ttl=probe_ttl, tracker=self.accuracy,
            locks=self.site_locks,
        )
        self.maintainers: dict[str, ModelMaintainer] = {}
        #: Drift policy per site (:meth:`configure_maintenance`'s
        #: ``drift=``); consulted by :meth:`maintain` after the §2 pass.
        self.drift_detectors: dict[str, DriftDetector] = {}
        #: Every drift event ever raised, oldest first.
        self.drift_events: list[DriftEvent] = []
        #: Triggers awaiting consumption by :meth:`_publish_outcome`,
        #: keyed (site, class_label) — how a drift-forced rebuild gets
        #: its event recorded in the published version's provenance.
        self._pending_trigger: dict[tuple[str, str], str] = {}
        #: Serving-time online-form state per (site, class): the warm
        #: estimator that folds each served estimate-vs-actual sample
        #: back into the active model when its form updates online.
        self._online: dict[tuple[str, str], _OnlineFormState] = {}

    # -- registration ----------------------------------------------------

    def register_agent(self, agent: MDBSAgent) -> None:
        """Attach a local site and import its globally visible facts."""
        self.agents[agent.site] = agent
        self.site_locks.setdefault(agent.site, threading.RLock())
        self.catalog.register_site(agent.site)
        for facts in agent.export_table_facts():
            self.catalog.register_table(facts)

    def refresh_site_facts(self, site: str) -> None:
        """Re-import a site's schema facts (occasionally-changing factors)."""
        for facts in self.agents[site].export_table_facts():
            self.catalog.register_table(facts)

    def store_cost_model(self, site: str, model: MultiStateCostModel) -> None:
        self.catalog.store_cost_model(site, model)

    # -- model lifecycle --------------------------------------------------

    def configure_maintenance(
        self,
        site: str,
        builder: CostModelBuilder | None = None,
        detector: ChangeDetector | None = None,
        rebuild_period_seconds: float | None = None,
        drift: DriftPolicy | DriftDetector | None = None,
    ) -> ModelMaintainer:
        """Attach a §2 maintenance policy to *site*.

        Every model the maintainer derives — the initial builds of
        registered classes and all later rebuilds — is published into
        the catalog's registry as a new active version, with provenance
        taken from the builder and the site's simulated clock.

        *drift* additionally arms model-quality drift detection for the
        site: each :meth:`maintain` run evaluates the policy's rules
        against the accuracy tracker, and any event raised forces a
        targeted re-derivation of the offending class, published with
        the event in its provenance.  Pass a
        :class:`~repro.obs.quality.DriftPolicy` (thresholds only) or a
        pre-built :class:`~repro.obs.quality.DriftDetector`.
        """
        agent = self.agents[site]
        builder = builder or CostModelBuilder(agent.database, probe=agent.probe)
        maintainer = ModelMaintainer(
            builder,
            detector,
            rebuild_period_seconds,
            on_rebuild=lambda label, outcome: self._publish_outcome(site, outcome),
        )
        self.maintainers[site] = maintainer
        if drift is not None:
            self.drift_detectors[site] = (
                drift if isinstance(drift, DriftDetector) else DriftDetector(drift)
            )
        return maintainer

    def register_model_class(
        self,
        site: str,
        query_class: QueryClass,
        query_source: Callable[[int], Sequence[Query]],
        sample_count: int | None = None,
        algorithm: str = "iupma",
        build_now: bool = True,
        strategy: str | None = None,
    ) -> ModelVersion:
        """Derive + publish the model for *query_class* and keep it maintained.

        ``strategy`` pins a model-form strategy (``"mlr.rls"``, ...) for
        this class's derivations and drift rebuilds; None uses the
        builder's configured default.

        ``build_now=False`` registers the class for future rebuilds
        without an initial derivation — the load-generation pattern: a
        worker imports coordinator-trained models through the registry
        payload and only needs the maintainer wired up so drift events
        can force re-derivations.  The registry must already hold an
        active version for the class (e.g. via
        :meth:`~repro.mdbs.catalog.GlobalCatalog.import_models`).
        """
        maintainer = self.maintainers.get(site) or self.configure_maintenance(site)
        maintainer.register(
            query_class,
            query_source,
            sample_count=sample_count,
            algorithm=algorithm,
            build_now=build_now,
            strategy=strategy,
        )
        return self.catalog.registry.active_version(site, query_class.label)

    def maintain(self) -> dict[str, dict[str, BuildOutcome]]:
        """Run §2 maintenance at every configured site.

        Each site's :class:`~repro.core.maintenance.ChangeDetector` is
        consulted and every due class re-derived; fresh models are
        published as new registry versions (the superseded versions stay
        available for rollback), schema facts are re-imported, and the
        site's cached probing reading is invalidated so the next
        optimization sees the post-maintenance environment.

        Sites armed with a ``drift=`` policy get a second pass: the
        :class:`~repro.obs.quality.DriftDetector` is evaluated against
        the accuracy tracker and every event raised forces a targeted
        re-derivation of the offending class (published with the event
        in its provenance), after which that class's accuracy windows
        reset so recovery is measured fresh.
        """
        results: dict[str, dict[str, BuildOutcome]] = {}
        with obs.span("mdbs.maintain") as sp:
            for site in sorted(self.maintainers):
                rebuilt = self.maintainers[site].maintain()
                results[site] = rebuilt
                if rebuilt:
                    self.refresh_site_facts(site)
                    self.probing.invalidate(site)
            for site, rebuilt in self._maintain_drift().items():
                results.setdefault(site, {}).update(rebuilt)
            if sp.recording:
                sp.set_attribute(
                    "rebuilt",
                    {site: sorted(rebuilt) for site, rebuilt in results.items()},
                )
        obs.inc("mdbs.maintenance_runs")
        return results

    def _maintain_drift(self) -> dict[str, dict[str, BuildOutcome]]:
        """Evaluate armed drift policies; rebuild every flagged class."""
        results: dict[str, dict[str, BuildOutcome]] = {}
        registry = self.catalog.registry
        for site in sorted(self.drift_detectors):
            detector = self.drift_detectors[site]
            states_by_class = {
                label: registry.active_model(s, label).states
                for (s, label) in registry.keys()
                if s == site and registry.has_model(s, label)
            }
            now = self.agents[site].database.environment.now
            events = detector.check(self.accuracy, site, states_by_class, now=now)
            if not events:
                continue
            maintainer = self.maintainers.get(site)
            rebuilt: dict[str, BuildOutcome] = {}
            for event in events:
                self.drift_events.append(event)
                self.accuracy.record_drift_event(event)
                obs.inc("mdbs.drift.events")
                obs.inc(f"mdbs.drift.rule.{event.rule}")
                label = event.class_label
                if (
                    maintainer is None
                    or label not in maintainer.registered_labels()
                ):
                    # Detected but not repairable here (class derived
                    # out-of-band); the event still lands in telemetry.
                    obs.inc("mdbs.drift.events_unhandled")
                    continue
                self._pending_trigger[(site, label)] = event.describe()
                rebuilt[label] = maintainer.rebuild(
                    label, reasons=(event.describe(),)
                )
                # Post-rebuild accuracy measures the *new* model only.
                self.accuracy.reset(site, label)
            if rebuilt:
                results[site] = rebuilt
                self.refresh_site_facts(site)
                self.probing.invalidate(site)
        return results

    def rollback_model(self, site: str, class_label: str) -> ModelVersion:
        """Serve the previously active model version again."""
        return self.catalog.rollback_cost_model(site, class_label)

    def _publish_outcome(self, site: str, outcome: BuildOutcome) -> ModelVersion:
        maintainer = self.maintainers[site]
        provenance = ModelProvenance.from_model(
            outcome.model,
            derived_at=self.agents[site].database.environment.now,
            config_hash=config_fingerprint(maintainer.builder.config),
            trigger=self._pending_trigger.pop(
                (site, outcome.model.class_label), None
            ),
        )
        return self.catalog.publish_cost_model(site, outcome.model, provenance)

    # -- optimization -----------------------------------------------------------

    def optimizer(self, prefer_estimated_probing: bool = False) -> GlobalQueryOptimizer:
        return GlobalQueryOptimizer(
            self.catalog,
            self.agents,
            self.network,
            prefer_estimated_probing=prefer_estimated_probing,
            probing=self.probing,
        )

    def optimize(self, query: GlobalJoinQuery) -> GlobalPlan:
        """Pick the cheapest join site for *query*."""
        with obs.span("mdbs.optimize") as sp:
            plan = self.optimizer().choose(query)
            if sp.recording:
                sp.set_attributes(
                    join_site=plan.join_site,
                    estimated_seconds=plan.estimated_seconds,
                )
        return plan

    # -- execution -----------------------------------------------------------------

    def execute(
        self, query: GlobalJoinQuery, plan: GlobalPlan | None = None
    ) -> GlobalExecution:
        """Execute *query* (optimizing first unless a plan is supplied)."""
        with obs.span(
            "mdbs.execute",
            left=f"{query.left_site}.{query.left_table}",
            right=f"{query.right_site}.{query.right_table}",
        ) as root:
            plan = plan or self.optimize(query)
            with self._locked_sites(query.left_site, query.right_site):
                execution = self._execute_plan(query, plan)
            self._record_accuracy(plan, execution)
            obs.inc("mdbs.global_queries")
            obs.set_gauge("mdbs.last_estimated_seconds", execution.estimated_seconds)
            obs.set_gauge("mdbs.last_observed_seconds", execution.observed_seconds)
            if root.recording:
                root.set_attributes(
                    join_site=plan.join_site,
                    estimated_seconds=execution.estimated_seconds,
                    observed_seconds=execution.observed_seconds,
                    cardinality=execution.cardinality,
                )
        return execution

    def _locked_sites(self, *sites: str) -> ExitStack:
        """Acquire the named sites' locks in sorted order (dedup'd).

        Sorted acquisition is the deadlock-freedom argument: every code
        path that takes more than one site lock (only plan execution
        does; probes take exactly one) takes them in the same global
        order, and the locks are re-entrant so a worker may probe a site
        it already holds for execution.
        """
        stack = ExitStack()
        for site in sorted(set(sites)):
            stack.enter_context(
                self.site_locks.setdefault(site, threading.RLock())
            )
        return stack

    def _record_accuracy(self, plan: GlobalPlan, execution: GlobalExecution) -> None:
        """Feed each model-backed estimate/observation pair to the tracker.

        ``plan.estimates`` and ``execution.steps`` are built in the same
        component order (left select, right select, ship, join); the
        ship component carries no cost model (``class_label is None``)
        and is skipped.  Plan-level error goes to a registry histogram —
        it aggregates several models, so it has no (site, class, state)
        window of its own.

        When the call runs under a traced request, the current trace id
        rides along: each sample lands in the tracker *linked* to its
        trace (so out-of-band samples flag the trace for keeping and the
        worst exemplars point back at it), and the plan-level error
        histogram records the trace id as its exemplar.
        """
        with obs.span("mdbs.accuracy") as sp:
            trace_id = obs.current_trace_id()
            recorded = 0
            states: list[str] = []
            if len(plan.estimates) == len(execution.steps):
                for estimate, step in zip(plan.estimates, execution.steps):
                    if estimate.class_label is None or estimate.site is None:
                        continue
                    if estimate.state is None:
                        continue
                    agent = self.agents[estimate.site]
                    state_key: int | tuple = estimate.state
                    hit_state = agent.buffer_hit_state()
                    if hit_state is not None:
                        # Sites simulating a memory hierarchy key their
                        # accuracy windows on the composite (contention,
                        # buffer-hit) state, so drift in either
                        # qualitative variable is visible.
                        state_key = (estimate.state, hit_state)
                    self.accuracy.record(
                        estimate.site,
                        estimate.class_label,
                        state_key,
                        predicted=estimate.seconds,
                        actual=step.seconds,
                        at_time=agent.database.environment.now,
                        trace_id=trace_id,
                    )
                    recorded += 1
                    if sp.recording:
                        states.append(
                            f"{estimate.site}/{estimate.class_label}={state_key}"
                        )
                    # The same (estimate, observation) pair the tracker
                    # windows is what online model forms learn from:
                    # RLS/SGD models fold it into their coefficients
                    # right here, per served query.
                    self._online_update(
                        estimate, step.seconds, at_time=agent.database.environment.now
                    )
            observed = execution.observed_seconds
            if observed > 0.0:
                obs.observe(
                    "mdbs.plan.rel_error",
                    abs(execution.estimated_seconds - observed) / observed,
                    exemplar=trace_id,
                )
            if sp.recording:
                sp.set_attributes(samples=recorded, states=",".join(states))

    def model_tag(self, site: str, class_label: str) -> tuple | None:
        """(version, model form) of the active model for (site, class).

        The plan cache folds this into its keys so plans scored by one
        model form or version are never served against another — racing
        strategy deployments cannot cross-contaminate through the cache.
        """
        try:
            entry = self.catalog.registry.active_version(site, class_label)
        except CostModelRegistryError:
            return None
        return (entry.version, model_form(entry.model))

    def _online_update(
        self, estimate: CostEstimate, actual: float, at_time: float
    ) -> None:
        """Fold one served estimate-vs-actual sample into an online form.

        No-op for the default batch-OLS form.  For ``mlr.rls`` /
        ``mlr.sgd`` models this updates the *active* model's
        coefficients in place (every optimizer sees the adapted form on
        the next estimate) and records the update in the version's
        provenance log.
        """
        site, label = estimate.site, estimate.class_label
        registry = self.catalog.registry
        if estimate.values is None or estimate.state is None:
            return
        if site is None or label is None or not registry.has_model(site, label):
            return
        entry = registry.active_version(site, label)
        key = (site, label)
        state = self._online.get(key)
        if state is None or state.version != entry.version:
            strategy = strategy_for(entry.model)
            state = _OnlineFormState(
                version=entry.version,
                strategy=strategy,
                updater=(
                    strategy.make_updater(entry.model)
                    if strategy.supports_online_update
                    else None
                ),
            )
            self._online[key] = state
        if state.updater is None:
            return
        sample = OnlineSample(
            values=estimate.values,
            state=estimate.state,
            actual=actual,
            predicted=estimate.seconds,
        )
        error = state.strategy.update(entry.model, sample, state.updater)
        if error is None:
            return
        registry.record_online_update(
            site,
            label,
            entry.version,
            {
                "at_time": float(at_time),
                "state": int(estimate.state),
                "predicted": float(estimate.seconds),
                "actual": float(actual),
                "error": float(error),
            },
        )
        obs.inc("mdbs.online.updates")

    def _execute_plan(
        self, query: GlobalJoinQuery, plan: GlobalPlan
    ) -> GlobalExecution:
        components = plan.components
        left_agent = self.agents[query.left_site]
        right_agent = self.agents[query.right_site]

        steps: list[StepTiming] = []
        with obs.span("mdbs.step.select", site=query.left_site) as sp:
            left_result = left_agent.execute(components.left)
            self._record_step(
                steps,
                sp,
                f"select {query.left_table} at {query.left_site}",
                left_result.elapsed,
                _estimate_at(plan, 0),
            )
        with obs.span("mdbs.step.select", site=query.right_site) as sp:
            right_result = right_agent.execute(components.right)
            self._record_step(
                steps,
                sp,
                f"select {query.right_table} at {query.right_site}",
                right_result.elapsed,
                _estimate_at(plan, 1),
            )

        if plan.join_site == "right":
            join_agent, shipped, local = right_agent, left_result, right_result
        else:
            join_agent, shipped, local = left_agent, right_result, left_result
        with obs.span("mdbs.step.ship", to_site=join_agent.site) as sp:
            transfer = self.network.transfer_seconds(shipped.result.table_length)
            self._record_step(
                steps,
                sp,
                f"ship {shipped.result.cardinality} tuples to {join_agent.site}",
                transfer,
                _estimate_at(plan, 2),
            )

        left_facts = self.catalog.table(query.left_site, query.left_table)
        right_facts = self.catalog.table(query.right_site, query.right_table)
        left_widths = [left_facts.column_widths[c] for c in components.left.columns]
        right_widths = [right_facts.column_widths[c] for c in components.right.columns]
        left_rows = left_result.result.rows
        right_rows = right_result.result.rows
        join_agent.create_temp_table(
            _TEMP_LEFT, components.left.columns, left_widths, left_rows
        )
        join_agent.create_temp_table(
            _TEMP_RIGHT, components.right.columns, right_widths, right_rows
        )
        try:
            join_query = JoinQuery(
                _TEMP_LEFT,
                _TEMP_RIGHT,
                components.left.columns[components.left_join_position],
                components.right.columns[components.right_join_position],
            )
            with obs.span("mdbs.step.join", site=join_agent.site) as sp:
                join_result = join_agent.execute(join_query)
                self._record_step(
                    steps,
                    sp,
                    f"join at {join_agent.site}",
                    join_result.elapsed,
                    _estimate_at(plan, 3),
                )
            column_names, rows = self._project_output(
                query, components, join_result
            )
        finally:
            join_agent.drop_temp_table(_TEMP_LEFT)
            join_agent.drop_temp_table(_TEMP_RIGHT)

        return GlobalExecution(
            plan=plan, column_names=column_names, rows=rows, steps=steps
        )

    @staticmethod
    def _record_step(
        steps: list[StepTiming],
        span,
        description: str,
        seconds: float,
        estimate: CostEstimate | None = None,
    ) -> None:
        """One plan step: a StepTiming for callers, span attributes for
        the trace, and a histogram point for the registry.

        The span's own duration is real wall-clock work; *seconds* is the
        step's *simulated* elapsed time (what the cost models predict).
        *estimate* is the plan component the step realizes — its
        estimated seconds and contention state land on the span, so a
        trace shows estimate-vs-actual per step, not just per plan.
        """
        steps.append(StepTiming(description, seconds))
        if span.recording:
            span.set_attributes(description=description, simulated_seconds=seconds)
            if estimate is not None:
                span.set_attribute("estimated_seconds", estimate.seconds)
                if estimate.state is not None:
                    span.set_attribute("state", estimate.state)
        obs.observe("mdbs.step_seconds", seconds)

    def _project_output(self, query, components, join_result):
        """Map temp-qualified join output back to the requested columns."""
        produced = list(join_result.result.column_names)
        if query.columns:
            wanted = list(query.columns)
        else:
            wanted = [f"{query.left_table}.{c}" for c in components.left.columns] + [
                f"{query.right_table}.{c}" for c in components.right.columns
            ]
        positions = []
        for qualified in wanted:
            table, _, column = qualified.partition(".")
            temp = _TEMP_LEFT if table == query.left_table else _TEMP_RIGHT
            positions.append(produced.index(f"{temp}.{column}"))
        rows = [tuple(row[p] for p in positions) for row in join_result.result.rows]
        return tuple(wanted), rows
