"""The MDBS global catalog.

"The cost model parameters are kept in the MDBS catalog and utilized
during query optimization" (§1).  The global catalog stores, per local
site: the globally visible schema facts (table cardinalities, tuple
lengths, column statistics, index definitions) and the derived
multi-states cost models, keyed by query class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.model import MultiStateCostModel


class GlobalCatalogError(KeyError):
    """A requested site, table, or cost model is not in the catalog."""


@dataclass
class TableFacts:
    """Globally visible facts about one local table."""

    site: str
    name: str
    cardinality: int
    tuple_length: int
    column_widths: dict[str, int]
    #: column -> (min, max, distinct_count); None values when unanalyzed.
    column_stats: dict[str, tuple] = field(default_factory=dict)
    indexed_columns: dict[str, str] = field(default_factory=dict)  # column -> kind
    clustered_on: str | None = None


class GlobalCatalog:
    """Site registry + schema facts + cost-model store."""

    def __init__(self) -> None:
        self._sites: list[str] = []
        self._tables: dict[tuple[str, str], TableFacts] = {}
        self._models: dict[tuple[str, str], MultiStateCostModel] = {}

    # -- sites ---------------------------------------------------------

    def register_site(self, site: str) -> None:
        if site not in self._sites:
            self._sites.append(site)

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._sites)

    def _require_site(self, site: str) -> None:
        if site not in self._sites:
            raise GlobalCatalogError(f"unknown site {site!r}")

    # -- schema facts ------------------------------------------------------

    def register_table(self, facts: TableFacts) -> None:
        self._require_site(facts.site)
        self._tables[(facts.site, facts.name)] = facts

    def table(self, site: str, name: str) -> TableFacts:
        try:
            return self._tables[(site, name)]
        except KeyError:
            raise GlobalCatalogError(f"no table {name!r} at site {site!r}") from None

    def tables_at(self, site: str) -> list[TableFacts]:
        self._require_site(site)
        return [f for (s, _), f in sorted(self._tables.items()) if s == site]

    def locate(self, table_name: str) -> list[str]:
        """Sites hosting a table with this name."""
        return sorted(s for (s, t) in self._tables if t == table_name)

    # -- cost models --------------------------------------------------------

    def store_cost_model(self, site: str, model: MultiStateCostModel) -> None:
        self._require_site(site)
        self._models[(site, model.class_label)] = model

    def cost_model(self, site: str, class_label: str) -> MultiStateCostModel:
        try:
            return self._models[(site, class_label)]
        except KeyError:
            raise GlobalCatalogError(
                f"no cost model for class {class_label!r} at site {site!r}"
            ) from None

    def has_cost_model(self, site: str, class_label: str) -> bool:
        return (site, class_label) in self._models

    def cost_models_at(self, site: str) -> list[MultiStateCostModel]:
        self._require_site(site)
        return [m for (s, _), m in sorted(self._models.items()) if s == site]

    # -- persistence ---------------------------------------------------------

    def export_models(self) -> dict:
        """Serializable snapshot of every stored cost model."""
        return {
            f"{site}/{label}": model.to_dict()
            for (site, label), model in sorted(self._models.items())
        }

    def import_models(self, payload: dict, sites: Iterable[str] = ()) -> None:
        for site in sites:
            self.register_site(site)
        for key, model_dict in payload.items():
            site, _, _ = key.partition("/")
            self.register_site(site)
            self.store_cost_model(site, MultiStateCostModel.from_dict(model_dict))

    def save_models(self, path) -> None:
        """Persist every stored cost model as JSON at *path*.

        The derived models are the expensive artifact of the whole
        method — a production MDBS derives them offline and reloads them
        at server start, exactly like the paper's "kept in the MDBS
        catalog and utilized during query optimization".
        """
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.export_models(), indent=2))

    def load_models(self, path) -> int:
        """Load cost models previously saved with :meth:`save_models`.

        Returns the number of models loaded.  Sites named in the file are
        registered as needed.
        """
        import json
        from pathlib import Path

        payload = json.loads(Path(path).read_text())
        self.import_models(payload)
        return len(payload)
