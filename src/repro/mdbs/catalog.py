"""The MDBS global catalog.

"The cost model parameters are kept in the MDBS catalog and utilized
during query optimization" (§1).  The global catalog stores, per local
site: the globally visible schema facts (table cardinalities, tuple
lengths, column statistics, index definitions) and the derived
multi-states cost models, keyed by query class.

Cost models are held in a versioned
:class:`~repro.mdbs.registry.CostModelRegistry`; the flat
``store_cost_model`` / ``cost_model`` surface below serves the *active*
version of each ``(site, class)``, so pre-lifecycle callers keep working
unchanged while maintenance can publish, activate, and roll back
versions underneath them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..core.model import MultiStateCostModel
from .registry import (
    CostModelRegistry,
    CostModelRegistryError,
    ModelProvenance,
    ModelVersion,
)

#: Version of the on-disk cost-model payload this code writes.
#: v3 adds the model-form strategy and its online-update log to each
#: version's provenance (:class:`~repro.mdbs.registry.ModelProvenance`).
MODEL_SCHEMA_VERSION = 3

#: Payload versions :meth:`GlobalCatalog.import_models` can read.  v2
#: predates pluggable model forms; its provenance fields default to the
#: paper's batch OLS on load.  The legacy flat format is implicit v1.
SUPPORTED_MODEL_SCHEMA_VERSIONS = (2, 3)


class GlobalCatalogError(KeyError):
    """A requested site, table, or cost model is not in the catalog."""


@dataclass
class TableFacts:
    """Globally visible facts about one local table."""

    site: str
    name: str
    cardinality: int
    tuple_length: int
    column_widths: dict[str, int]
    #: column -> (min, max, distinct_count); None values when unanalyzed.
    column_stats: dict[str, tuple] = field(default_factory=dict)
    indexed_columns: dict[str, str] = field(default_factory=dict)  # column -> kind
    clustered_on: str | None = None


class GlobalCatalog:
    """Site registry + schema facts + versioned cost-model store."""

    def __init__(self) -> None:
        self._sites: list[str] = []
        self._tables: dict[tuple[str, str], TableFacts] = {}
        self.registry = CostModelRegistry()

    # -- sites ---------------------------------------------------------

    def register_site(self, site: str) -> None:
        if site not in self._sites:
            self._sites.append(site)

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._sites)

    def _require_site(self, site: str) -> None:
        if site not in self._sites:
            raise GlobalCatalogError(f"unknown site {site!r}")

    # -- schema facts ------------------------------------------------------

    def register_table(self, facts: TableFacts) -> None:
        self._require_site(facts.site)
        self._tables[(facts.site, facts.name)] = facts

    def table(self, site: str, name: str) -> TableFacts:
        try:
            return self._tables[(site, name)]
        except KeyError:
            raise GlobalCatalogError(f"no table {name!r} at site {site!r}") from None

    def tables_at(self, site: str) -> list[TableFacts]:
        self._require_site(site)
        return [f for (s, _), f in sorted(self._tables.items()) if s == site]

    def locate(self, table_name: str) -> list[str]:
        """Sites hosting a table with this name."""
        return sorted(s for (s, t) in self._tables if t == table_name)

    # -- cost models --------------------------------------------------------

    def store_cost_model(self, site: str, model: MultiStateCostModel) -> None:
        """Publish *model* as a new active version (legacy flat surface)."""
        self.publish_cost_model(site, model)

    def publish_cost_model(
        self,
        site: str,
        model: MultiStateCostModel,
        provenance: ModelProvenance | None = None,
        activate: bool = True,
    ) -> ModelVersion:
        """Publish *model* into the registry; returns the new version."""
        self._require_site(site)
        return self.registry.publish(site, model, provenance, activate=activate)

    def cost_model(self, site: str, class_label: str) -> MultiStateCostModel:
        """The *active* model version for (site, class)."""
        try:
            return self.registry.active_model(site, class_label)
        except CostModelRegistryError:
            raise GlobalCatalogError(
                f"no cost model for class {class_label!r} at site {site!r}"
            ) from None

    def rollback_cost_model(self, site: str, class_label: str) -> ModelVersion:
        """Re-activate the previously active version for (site, class)."""
        try:
            return self.registry.rollback(site, class_label)
        except CostModelRegistryError as exc:
            raise GlobalCatalogError(str(exc)) from None

    def cost_model_history(self, site: str, class_label: str) -> list[ModelVersion]:
        return self.registry.history(site, class_label)

    def has_cost_model(self, site: str, class_label: str) -> bool:
        return self.registry.has_model(site, class_label)

    def cost_models_at(self, site: str) -> list[MultiStateCostModel]:
        self._require_site(site)
        return self.registry.active_models_at(site)

    # -- persistence ---------------------------------------------------------

    def export_models(self) -> dict:
        """Serializable snapshot of every stored cost-model version."""
        return {
            "schema_version": MODEL_SCHEMA_VERSION,
            "models": self.registry.export(),
        }

    def import_models(self, payload: dict, sites: Iterable[str] = ()) -> int:
        """Load an :meth:`export_models` payload; returns models loaded.

        Accepts the current versioned format (``schema_version`` 3), the
        previous versioned format (2, read with form defaults), and the
        legacy flat ``{"site/label": model_dict}`` format (implicit
        version 1).  Unknown schema versions are rejected — silently
        misreading a future payload as models would corrupt the serving
        path.
        """
        for site in sites:
            self.register_site(site)
        if "schema_version" not in payload:
            records = payload  # legacy flat v1 payload
            for key, model_dict in records.items():
                site, _, _ = key.partition("/")
                self.register_site(site)
                self.registry.publish(
                    site, MultiStateCostModel.from_dict(model_dict)
                )
            return len(records)
        version = payload["schema_version"]
        if version not in SUPPORTED_MODEL_SCHEMA_VERSIONS:
            supported = ", ".join(str(v) for v in SUPPORTED_MODEL_SCHEMA_VERSIONS)
            raise GlobalCatalogError(
                f"unsupported cost-model schema_version {version!r} "
                f"(this build reads {supported} and the legacy flat format)"
            )
        records = payload["models"]
        for key in records:
            self.register_site(key.partition("/")[0])
        return self.registry.import_payload(records)

    def save_models(self, path) -> None:
        """Persist every stored cost-model version as JSON at *path*.

        The derived models are the expensive artifact of the whole
        method — a production MDBS derives them offline and reloads them
        at server start, exactly like the paper's "kept in the MDBS
        catalog and utilized during query optimization".
        """
        Path(path).write_text(json.dumps(self.export_models(), indent=2))

    def load_models(self, path) -> int:
        """Load cost models previously saved with :meth:`save_models`.

        Returns the number of (site, class) models loaded.  Sites named
        in the file are registered as needed.
        """
        payload = json.loads(Path(path).read_text())
        return self.import_models(payload)
