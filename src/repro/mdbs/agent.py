"""The MDBS agent: the per-site component of the multidatabase system.

Paper Figure 3 / §5: "Local queries are submitted to a local DBS via an
MDBS agent.  The MDBS agent provides a uniform relational ODBC interface
for the global server.  It also contains a load builder which generates
dynamic loads to simulate dynamic application environments", and "may
also have an environment monitor which collects system statistics used
for estimating the probing query costs".

The agent is the only path from the global level into a local DBS: it
executes queries, reports globally visible schema facts, runs the probing
query, and (optionally) estimates the probing cost from monitor
statistics instead of executing the probe.
"""

from __future__ import annotations

from typing import Any, Sequence

from .. import obs
from ..core.classification import QueryClass, classify
from ..core.probing import ProbingCostEstimator, ProbingQuery, default_probing_query
from ..engine.database import LocalDatabase, QueryResult
from ..engine.query import Query
from ..engine.schema import Column
from ..engine.types import DataType
from ..env.loadbuilder import LoadBuilder
from ..env.monitor import EnvironmentMonitor
from .catalog import TableFacts


class MDBSAgent:
    """Uniform interface to one autonomous local database system."""

    def __init__(
        self,
        database: LocalDatabase,
        probe: ProbingQuery | None = None,
        estimator: ProbingCostEstimator | None = None,
    ) -> None:
        self.database = database
        self.load_builder = LoadBuilder(database.environment)
        self.monitor = EnvironmentMonitor(database.environment)
        self.probe = probe or default_probing_query(database)
        self.estimator = estimator

    @property
    def site(self) -> str:
        return self.database.name

    # -- buffer-pool state (a qualitative variable) ------------------------

    def buffer_hit_rate(self) -> float | None:
        """The local pool's lifetime hit rate, or None without a pool."""
        pool = self.database.buffer_pool
        return pool.hit_rate if pool is not None else None

    def buffer_hit_state(self) -> str | None:
        """Qualitative cache state (``cold``/``warm``/``hot``), or None.

        Globally observable without breaching local autonomy: it derives
        from the agent's own executions, not from DBMS internals.  The
        server keys accuracy windows on it alongside the contention
        state when the site simulates a memory hierarchy.
        """
        pool = self.database.buffer_pool
        return pool.hit_state() if pool is not None else None

    # -- the "ODBC" surface ------------------------------------------------

    def execute(self, query: Query | str) -> QueryResult:
        """Run a local query and return rows + observed elapsed time."""
        with obs.span("mdbs.agent.execute", site=self.site) as sp:
            result = self.database.execute(query)
            if sp.recording:
                sp.set_attribute("simulated_seconds", result.elapsed)
        return result

    def classify(self, query: Query | str) -> QueryClass:
        """Predict the query class the local system will use."""
        return classify(self.database, query)

    # -- probing -------------------------------------------------------------

    def observed_probing_cost(self) -> float:
        """Execute the probing query; its cost gauges the contention level."""
        with obs.span("mdbs.probe", site=self.site, mode="observed") as sp:
            cost = self.probe.observe()
            if sp.recording:
                sp.set_attribute("probing_cost", cost)
        obs.inc("mdbs.probes.observed")
        return cost

    def estimated_probing_cost(self) -> float:
        """Estimate the probing cost from system statistics (paper eq. (2)).

        Requires a calibrated :class:`ProbingCostEstimator`; cheaper than
        executing the probe, at the price of estimation error.
        """
        if self.estimator is None or not self.estimator.is_calibrated:
            raise RuntimeError(
                f"agent for {self.site} has no calibrated probing-cost estimator"
            )
        with obs.span("mdbs.probe", site=self.site, mode="estimated") as sp:
            cost = self.estimator.estimate(self.monitor.statistics())
            if sp.recording:
                sp.set_attribute("probing_cost", cost)
        obs.inc("mdbs.probes.estimated")
        return cost

    def probing_cost(self, prefer_estimated: bool = False) -> float:
        """Current probing cost, estimated when requested and possible."""
        if (
            prefer_estimated
            and self.estimator is not None
            and self.estimator.is_calibrated
        ):
            return self.estimated_probing_cost()
        return self.observed_probing_cost()

    def calibrate_estimator(
        self,
        samples: int = 60,
        interval_seconds: float = 20.0,
        estimator: ProbingCostEstimator | None = None,
    ) -> ProbingCostEstimator:
        """Calibrate (or re-calibrate) the probing-cost estimator."""
        self.estimator = estimator or self.estimator or ProbingCostEstimator()
        self.estimator.calibrate(
            self.probe, self.monitor, samples=samples, interval_seconds=interval_seconds
        )
        return self.estimator

    # -- globally visible schema facts -----------------------------------------

    def export_table_facts(self) -> list[TableFacts]:
        """Schema facts the global catalog is allowed to see."""
        facts = []
        catalog = self.database.catalog
        for table in catalog.tables():
            stats = table.statistics
            column_stats = {
                name: (cs.minimum, cs.maximum, cs.distinct_count)
                for name, cs in stats.columns.items()
            }
            indexed = {
                index.column_name: index.kind.value
                for index in catalog.indexes_for(table.name)
            }
            facts.append(
                TableFacts(
                    site=self.site,
                    name=table.name,
                    cardinality=table.cardinality,
                    tuple_length=table.tuple_length,
                    column_widths={
                        c.name: c.width for c in table.schema.columns
                    },
                    column_stats=column_stats,
                    indexed_columns=indexed,
                    clustered_on=table.clustered_on,
                )
            )
        return facts

    # -- temporary tables (for shipped intermediate results) ----------------------

    def create_temp_table(
        self,
        name: str,
        column_names: Sequence[str],
        column_widths: Sequence[int],
        rows: Sequence[Sequence[Any]],
    ) -> None:
        """Materialize shipped rows as a local temporary table.

        Incoming values are stored as-is; columns are typed from the first
        row (INT/FLOAT/STR), defaulting to FLOAT for empty shipments.
        """
        if self.database.catalog.has_table(name):
            self.drop_temp_table(name)
        columns = []
        for i, (col, width) in enumerate(zip(column_names, column_widths)):
            dtype = DataType.FLOAT
            if rows:
                value = rows[0][i]
                if isinstance(value, bool):
                    raise TypeError("boolean values are not supported")
                if isinstance(value, int):
                    dtype = DataType.INT
                elif isinstance(value, str):
                    dtype = DataType.STR
            columns.append(Column(col, dtype, width))
        self.database.create_table(name, columns, rows)
        self.database.catalog.table(name).analyze()

    def drop_temp_table(self, name: str) -> None:
        self.database.catalog.drop_table(name)
