"""Versioned cost-model registry: the training-side/serving-side seam.

The paper keeps derived multi-states cost models "in the MDBS catalog"
(§5) and prescribes periodic re-derivation when occasionally-changing
factors drift (§2).  Re-derivation only pays off if the serving side can
adopt a fresh model — and abandon it again when it turns out worse than
its predecessor.  This module supplies that lifecycle layer:

* :class:`ModelProvenance` — where a model artifact came from: the
  builder-config fingerprint, sample size, validation statistics
  (R², SEE), the simulated time of derivation, and the source
  state-determination algorithm;
* :class:`ModelVersion` — one immutable published artifact, numbered
  per ``(site, class)``;
* :class:`CostModelRegistry` — the versioned store itself, with an
  active-version pointer per ``(site, class)`` and
  ``publish`` / ``activate`` / ``rollback`` / ``history`` operations,
  plus a JSON payload format that round-trips every version.

:class:`~repro.mdbs.catalog.GlobalCatalog` delegates its cost-model
surface here, so every existing caller transparently serves the active
version.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, replace
from typing import Callable, Iterator

from .. import obs
from ..core.model import MultiStateCostModel
from ..core.strategy import DEFAULT_STRATEGY, model_form as _model_form


class CostModelRegistryError(KeyError):
    """A requested model, version, or rollback target does not exist."""


def config_fingerprint(config: object) -> str:
    """A short stable fingerprint of a builder configuration.

    Dataclass ``repr`` output is deterministic for the plain
    numeric/enum fields a :class:`~repro.core.builder.BuilderConfig`
    holds, which makes it a serviceable canonical form without pulling
    in a schema.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ModelProvenance:
    """How one published model version was derived."""

    #: Simulated time at derivation (None when unknown, e.g. imports
    #: from a legacy payload).
    derived_at: float | None = None
    #: State-determination algorithm ("iupma" | "icma" | "static").
    algorithm: str = "unknown"
    #: Number of sample queries behind the fit.
    sample_size: int = 0
    #: Validation statistics of the training fit.
    r_squared: float = float("nan")
    standard_error: float = float("nan")
    #: Fingerprint of the builder config that produced the model
    #: (:func:`config_fingerprint`); None when not derived in-process.
    config_hash: str | None = None
    #: What prompted the derivation — None for ordinary §2 maintenance
    #: and manual publishes, or a :meth:`DriftEvent.describe` string when
    #: a drift rule forced the re-derivation, so the registry records
    #: *why* each version exists.
    trigger: str | None = None
    #: Qualitative variables the model conditions on.  Every multi-states
    #: model carries the paper's contention state; sites simulating a
    #: memory hierarchy add the observed ``buffer_hit_state``.
    qualitative_variables: tuple[str, ...] = ("contention_state",)
    #: Model-form strategy the version was derived with (schema v3; see
    #: :mod:`repro.core.strategy`).  ``mlr.ols`` is the paper's batch form.
    model_form: str = DEFAULT_STRATEGY
    #: Total served-sample updates folded into this version online.
    online_updates: int = 0
    #: Recent online-update summaries, oldest first (capped; the count
    #: above is authoritative).  Each entry is a JSON-compatible dict.
    update_log: tuple = ()

    @classmethod
    def from_model(
        cls,
        model: MultiStateCostModel,
        derived_at: float | None = None,
        config_hash: str | None = None,
        trigger: str | None = None,
    ) -> "ModelProvenance":
        """Provenance recoverable from the model artifact itself."""
        stats = model.validation_stats()
        qualitative = tuple(
            model.metadata.get("qualitative_variables", ("contention_state",))
        )
        return cls(
            derived_at=derived_at,
            algorithm=model.algorithm,
            sample_size=int(stats["n_observations"]),
            r_squared=float(stats["r_squared"]),
            standard_error=float(stats["standard_error"]),
            config_hash=config_hash,
            trigger=trigger,
            qualitative_variables=qualitative,
            model_form=_model_form(model),
        )

    def to_dict(self) -> dict:
        return {
            "derived_at": self.derived_at,
            "algorithm": self.algorithm,
            "sample_size": self.sample_size,
            "r_squared": self.r_squared,
            "standard_error": self.standard_error,
            "config_hash": self.config_hash,
            "trigger": self.trigger,
            "qualitative_variables": list(self.qualitative_variables),
            "model_form": self.model_form,
            "online_updates": self.online_updates,
            "update_log": [dict(entry) for entry in self.update_log],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModelProvenance":
        return cls(
            derived_at=payload.get("derived_at"),
            algorithm=payload.get("algorithm", "unknown"),
            sample_size=int(payload.get("sample_size", 0)),
            r_squared=float(payload.get("r_squared", float("nan"))),
            standard_error=float(payload.get("standard_error", float("nan"))),
            config_hash=payload.get("config_hash"),
            trigger=payload.get("trigger"),
            qualitative_variables=tuple(
                payload.get("qualitative_variables", ("contention_state",))
            ),
            # Schema v2 payloads predate pluggable forms; default to the
            # paper's batch OLS (the only form that existed then).
            model_form=payload.get("model_form", DEFAULT_STRATEGY),
            online_updates=int(payload.get("online_updates", 0)),
            update_log=tuple(dict(e) for e in payload.get("update_log", ())),
        )


@dataclass(frozen=True)
class ModelVersion:
    """One published, immutable model artifact."""

    site: str
    class_label: str
    version: int
    model: MultiStateCostModel
    provenance: ModelProvenance

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "provenance": self.provenance.to_dict(),
            "model": self.model.to_dict(),
        }

    @classmethod
    def from_dict(cls, site: str, class_label: str, payload: dict) -> "ModelVersion":
        return cls(
            site=site,
            class_label=class_label,
            version=int(payload["version"]),
            model=MultiStateCostModel.from_dict(payload["model"]),
            provenance=ModelProvenance.from_dict(payload.get("provenance", {})),
        )


class CostModelRegistry:
    """Versioned model artifacts with an active pointer per (site, class).

    ``publish`` appends a new version (and, by default, activates it,
    remembering the previously active version so ``rollback`` can
    restore it).  All read paths — and therefore the whole serving side
    of the MDBS — go through :meth:`active_model`.

    Serving-side consumers can :meth:`subscribe` to the write path: every
    publish / activate / rollback / drop fires
    ``callback(action, site, class_label, version)`` after the change is
    applied, which is how the plan cache evicts exactly the entries a
    model-version change invalidates.  Writes are serialized behind a
    lock; reads stay lock-free (versions are append-only and the active
    pointer is a single atomic dict write), so worker threads can resolve
    models while maintenance publishes.
    """

    def __init__(self) -> None:
        self._versions: dict[tuple[str, str], list[ModelVersion]] = {}
        #: Active version number per key; absent = nothing active.
        self._active: dict[tuple[str, str], int] = {}
        #: Previously active version numbers, newest last (rollback stack).
        self._previous: dict[tuple[str, str], list[int]] = {}
        #: Write-path serialization (reads are lock-free, see class doc).
        self._write_lock = threading.RLock()
        self._subscribers: list[Callable[[str, str, str, int], None]] = []

    # -- change notification ---------------------------------------------

    def subscribe(self, callback: Callable[[str, str, str, int], None]) -> None:
        """Call ``callback(action, site, class_label, version)`` after
        every write (actions: "publish", "activate", "rollback", "drop")."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[str, str, str, int], None]) -> None:
        """Stop notifying *callback* (no-op when not subscribed)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def _notify(self, action: str, site: str, class_label: str, version: int) -> None:
        for callback in list(self._subscribers):
            callback(action, site, class_label, version)

    # -- write path ------------------------------------------------------

    def publish(
        self,
        site: str,
        model: MultiStateCostModel,
        provenance: ModelProvenance | None = None,
        activate: bool = True,
    ) -> ModelVersion:
        """Append *model* as the next version for its (site, class)."""
        key = (site, model.class_label)
        with self._write_lock:
            versions = self._versions.setdefault(key, [])
            number = versions[-1].version + 1 if versions else 1
            entry = ModelVersion(
                site=site,
                class_label=model.class_label,
                version=number,
                model=model,
                provenance=provenance or ModelProvenance.from_model(model),
            )
            versions.append(entry)
            obs.inc("mdbs.registry.published")
            self._notify("publish", site, model.class_label, number)
            if activate:
                self.activate(site, model.class_label, number)
            self._update_gauges()
        return entry

    def activate(self, site: str, class_label: str, version: int) -> ModelVersion:
        """Make *version* the one :meth:`active_model` serves."""
        key = (site, class_label)
        with self._write_lock:
            entry = self.version(site, class_label, version)
            current = self._active.get(key)
            if current is not None and current != version:
                self._previous.setdefault(key, []).append(current)
            self._active[key] = version
            obs.inc("mdbs.registry.activations")
            self._notify("activate", site, class_label, version)
        return entry

    def rollback(self, site: str, class_label: str) -> ModelVersion:
        """Re-activate the previously active version.

        Falls back to the next-lower version number when no activation
        history exists (e.g. right after an import).
        """
        key = (site, class_label)
        with self._write_lock:
            current = self._active.get(key)
            if current is None:
                raise CostModelRegistryError(
                    f"no active cost model for {class_label!r} at {site!r}"
                )
            stack = self._previous.get(key, [])
            if stack:
                target = stack.pop()
            else:
                older = [v.version for v in self._versions[key] if v.version < current]
                if not older:
                    raise CostModelRegistryError(
                        f"no earlier version of {class_label!r} at {site!r} "
                        "to roll back to"
                    )
                target = max(older)
            self._active[key] = target
            obs.inc("mdbs.registry.rollbacks")
            self._notify("rollback", site, class_label, target)
        return self.version(site, class_label, target)

    def record_online_update(
        self,
        site: str,
        class_label: str,
        version: int,
        entry: dict,
        max_log: int = 64,
    ) -> ModelVersion:
        """Log one served-sample update folded into *version* online.

        Online strategies (``mlr.rls`` / ``mlr.sgd``) mutate the served
        model's coefficients in place; this records that mutation in the
        version's provenance so exports (schema v3) carry the form's
        update history.  The log keeps the most recent *max_log* entries;
        ``online_updates`` counts all of them.
        """
        with self._write_lock:
            current = self.version(site, class_label, version)
            provenance = current.provenance
            log = provenance.update_log + (dict(entry),)
            if len(log) > max_log:
                log = log[-max_log:]
            updated = replace(
                current,
                provenance=replace(
                    provenance,
                    update_log=log,
                    online_updates=provenance.online_updates + 1,
                ),
            )
            versions = self._versions[(site, class_label)]
            for index, candidate in enumerate(versions):
                if candidate.version == version:
                    versions[index] = updated
                    break
            obs.inc("mdbs.registry.online_updates")
        return updated

    def drop_site(self, site: str) -> None:
        """Forget every version for *site* (e.g. a deregistered site)."""
        with self._write_lock:
            for key in [k for k in self._versions if k[0] == site]:
                dropped = self._active.get(key, 0)
                self._versions.pop(key, None)
                self._active.pop(key, None)
                self._previous.pop(key, None)
                self._notify("drop", key[0], key[1], dropped)
            self._update_gauges()

    # -- read path -------------------------------------------------------

    def has_model(self, site: str, class_label: str) -> bool:
        return (site, class_label) in self._active

    def active_version(self, site: str, class_label: str) -> ModelVersion:
        """The currently served version for (site, class)."""
        key = (site, class_label)
        try:
            number = self._active[key]
        except KeyError:
            raise CostModelRegistryError(
                f"no active cost model for {class_label!r} at {site!r}"
            ) from None
        return self.version(site, class_label, number)

    def active_model(self, site: str, class_label: str) -> MultiStateCostModel:
        return self.active_version(site, class_label).model

    def version(self, site: str, class_label: str, version: int) -> ModelVersion:
        for entry in self._versions.get((site, class_label), ()):
            if entry.version == version:
                return entry
        raise CostModelRegistryError(
            f"no version {version} of {class_label!r} at {site!r}"
        )

    def history(self, site: str, class_label: str) -> list[ModelVersion]:
        """Every published version for (site, class), oldest first."""
        return list(self._versions.get((site, class_label), ()))

    def active_models_at(self, site: str) -> list[MultiStateCostModel]:
        return [
            self.active_model(s, label)
            for (s, label) in sorted(self._active)
            if s == site
        ]

    def keys(self) -> list[tuple[str, str]]:
        return sorted(self._versions)

    def __iter__(self) -> Iterator[ModelVersion]:
        for key in sorted(self._versions):
            yield from self._versions[key]

    def __len__(self) -> int:
        """Total number of published versions across all keys."""
        return sum(len(v) for v in self._versions.values())

    # -- persistence -----------------------------------------------------

    def export(self) -> dict:
        """JSON-compatible payload carrying every version + active pointers."""
        return {
            f"{site}/{label}": {
                "active": self._active.get((site, label)),
                "versions": [
                    entry.to_dict() for entry in self._versions[(site, label)]
                ],
            }
            for (site, label) in sorted(self._versions)
        }

    def import_payload(self, payload: dict) -> int:
        """Load an :meth:`export` payload; returns the number of keys loaded.

        Versions and active pointers round-trip; the rollback stack does
        not (after an import, :meth:`rollback` falls back to the
        next-lower version number).
        """
        with self._write_lock:
            for key, record in payload.items():
                site, _, label = key.partition("/")
                versions = [
                    ModelVersion.from_dict(site, label, entry)
                    for entry in record["versions"]
                ]
                versions.sort(key=lambda entry: entry.version)
                self._versions[(site, label)] = versions
                active = record.get("active")
                if active is None and versions:
                    active = versions[-1].version
                if active is not None:
                    self._active[(site, label)] = int(active)
                    self._notify("activate", site, label, int(active))
                self._previous.pop((site, label), None)
            self._update_gauges()
        return len(payload)

    # -- observability ---------------------------------------------------

    def _update_gauges(self) -> None:
        obs.set_gauge("mdbs.registry.models", len(self._versions))
        obs.set_gauge("mdbs.registry.versions", len(self))


@dataclass(frozen=True)
class _ProvenanceSummaryRow:
    """One line of :func:`describe_registry` (kept for tooling reuse)."""

    site: str
    class_label: str
    active: int
    versions: int
    algorithm: str
    r_squared: float


def describe_registry(registry: CostModelRegistry) -> str:
    """A compact human-readable listing of the registry's contents."""
    lines = ["site/class            active  versions  algorithm  R²"]
    for site, label in registry.keys():
        entry = registry.active_version(site, label)
        row = _ProvenanceSummaryRow(
            site=site,
            class_label=label,
            active=entry.version,
            versions=len(registry.history(site, label)),
            algorithm=entry.provenance.algorithm,
            r_squared=entry.provenance.r_squared,
        )
        lines.append(
            f"{row.site}/{row.class_label:<12} v{row.active:<6} {row.versions:<9} "
            f"{row.algorithm:<10} {row.r_squared:.4f}"
        )
    return "\n".join(lines)
