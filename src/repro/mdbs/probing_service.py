"""The probing service: cached, coalesced, degradation-tolerant probing.

The multi-states method resolves a model's contention state from a
*current* probing cost (§3.3), which in the seed architecture meant the
global optimizer executed probing queries straight through the agents.
This service centralizes that serving-side concern:

* **cache** — one probing-cost reading per site, keyed on the site's
  *simulated* time with a configurable TTL.  ``ttl=0`` disables caching
  entirely, reproducing the always-fresh-probe behavior byte for byte.
  TTL semantics are a **closed interval**: a reading whose age satisfies
  ``0 <= age <= ttl`` is a hit — a probe exactly at ``age == ttl`` is
  still served from cache (tests pin this boundary);
* **coalescing** — callers fetch a site's reading once per optimization
  and share it across candidate plans, so one ``choose()`` executes at
  most one probing query per site.  *Across* requests, a per-site
  single-flight lock extends the same guarantee to concurrent
  optimizations: when many pool workers need the same site's reading
  within one TTL window, exactly one executes the probe and the rest
  wait and share it (``mdbs.probing.coalesced`` counts the sharers).
  Because only the executing acquisition feeds the accuracy tracker,
  a shared probe lands in the tracker's probe window exactly once — no
  double-counted samples however many requests it served;
* **graceful degradation** — when a probe cannot be executed the
  service falls back, in order: observed probe → monitor-estimated
  probe (paper eq. (2)) → last-known reading → *no reading*
  (``cost=None``), which the optimizer turns into a static one-state
  prediction.  Every fallback level taken is counted in
  ``mdbs.probing.source.*``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .. import obs
from .agent import MDBSAgent

#: Fallback levels, in degradation order.
PROBE_SOURCES = ("observed", "estimated", "last_known", "static")


@dataclass(frozen=True)
class ProbeReading:
    """One probing-cost determination for a site.

    ``cost`` is None only at the last fallback level ("static"): no
    probe could be executed and no previous reading exists, so the
    consumer must fall back to a contention-agnostic prediction.
    """

    cost: float | None
    source: str  # one of PROBE_SOURCES
    at_time: float  # simulated time of the determination


class ProbingService:
    """Per-site probing costs with a simulated-time TTL cache.

    *locks* optionally shares a per-site lock table with the owning
    server: the same lock then serializes a site's probe execution with
    plan execution at that site, keeping the simulated clock and the
    engine single-writer per site.  When omitted the service keeps a
    private table (single-flight behavior is identical either way).
    """

    def __init__(
        self,
        agents: dict[str, MDBSAgent],
        ttl: float = 0.0,
        prefer_estimated: bool = False,
        tracker=None,
        locks: dict[str, threading.RLock] | None = None,
    ) -> None:
        if ttl < 0:
            raise ValueError("ttl must be >= 0 (0 disables the cache)")
        #: Live mapping shared with the owner (e.g. the MDBS server), so
        #: sites registered later are immediately probe-able.
        self.agents = agents
        self.ttl = float(ttl)
        self.prefer_estimated = prefer_estimated
        #: Optional :class:`~repro.obs.quality.AccuracyTracker` fed every
        #: executed reading, so drift rules can watch the probing-cost
        #: distribution against the models' partitioned state ranges.
        #: Cache hits and coalesced sharers do NOT re-feed the tracker:
        #: one executed probe = one tracker sample, idempotent however
        #: many concurrent requests share the reading.
        self.tracker = tracker
        self._cache: dict[str, ProbeReading] = {}
        #: Per-site single-flight locks (possibly shared with the server).
        self._locks = locks if locks is not None else {}
        #: Probes actually executed (observed or estimated), per site —
        #: local bookkeeping for experiments; obs counters carry the
        #: global view.
        self.probes_executed: dict[str, int] = {}
        self.cache_hits = 0
        #: Cache hits served to callers that blocked on the site lock
        #: while another request refreshed the reading — cross-request
        #: probe sharing at work.
        self.coalesced = 0

    # -- the serving API -------------------------------------------------

    def probing_cost(self, site: str, prefer_estimated: bool | None = None) -> float | None:
        """Current probing cost for *site* (None = degrade to static)."""
        return self.probe(site, prefer_estimated).cost

    def probe(self, site: str, prefer_estimated: bool | None = None) -> ProbeReading:
        """Current :class:`ProbeReading` for *site*, cached within the TTL.

        A cached reading is served while ``0 <= now - at_time <= ttl``
        (closed interval: ``age == ttl`` is a hit).  Concurrent callers
        single-flight behind a per-site lock, so at most one probing
        query per site is in flight at any moment.
        """
        try:
            agent = self.agents[site]
        except KeyError:
            raise KeyError(f"no agent registered for site {site!r}") from None
        # Fast path: a fresh reading needs no lock (dict reads are atomic
        # under the GIL, and readings are immutable).
        before = self._cache.get(site)
        reading = self._fresh(before, agent.database.environment.now)
        if reading is not None:
            self.cache_hits += 1
            obs.inc("mdbs.probing.cache_hits")
            return reading
        # The span opens *before* the lock: its duration includes any
        # single-flight wait, so traces attribute time blocked behind
        # another request's probe as probe time (outcome says which).
        # The lock-free fresh-cache fast path above stays span-free.
        with obs.span("mdbs.probe.service", site=site) as sp, self._site_lock(site):
            now = agent.database.environment.now
            cached = self._cache.get(site)
            reading = self._fresh(cached, now)
            if reading is not None:
                # Refreshed while we waited for the lock: this caller
                # shares the probe another request just executed.
                self.cache_hits += 1
                obs.inc("mdbs.probing.cache_hits")
                if cached is not before:
                    self.coalesced += 1
                    obs.inc("mdbs.probing.coalesced")
                    if sp.recording:
                        sp.set_attributes(outcome="coalesced")
                elif sp.recording:
                    sp.set_attributes(outcome="cached")
                if sp.recording:
                    sp.set_attributes(source=reading.source, cost=reading.cost)
                return reading
            obs.inc("mdbs.probing.cache_misses")
            reading = self._acquire(agent, now, prefer_estimated)
            if sp.recording:
                sp.set_attributes(
                    outcome="executed", source=reading.source, cost=reading.cost
                )
            if reading.cost is not None:
                self._cache[site] = reading
            obs.set_gauge("mdbs.probing.cache_size", len(self._cache))
            return reading

    def invalidate(self, site: str | None = None) -> None:
        """Drop cached readings (one site, or all of them)."""
        if site is None:
            self._cache.clear()
        else:
            self._cache.pop(site, None)
        obs.set_gauge("mdbs.probing.cache_size", len(self._cache))

    # -- acquisition + degradation chain ---------------------------------

    def _fresh(self, cached: ProbeReading | None, now: float) -> ProbeReading | None:
        """*cached* if it is servable at simulated time *now*, else None."""
        if (
            cached is not None
            and self.ttl > 0
            and 0.0 <= now - cached.at_time <= self.ttl
        ):
            return cached
        return None

    def _site_lock(self, site: str) -> threading.RLock:
        # dict.setdefault is atomic under the GIL, so concurrent first
        # probes of a site agree on one lock without a meta-lock.
        return self._locks.setdefault(site, threading.RLock())

    def _acquire(
        self, agent: MDBSAgent, now: float, prefer_estimated: bool | None
    ) -> ProbeReading:
        prefer = self.prefer_estimated if prefer_estimated is None else prefer_estimated
        modes = ("estimated", "observed") if prefer else ("observed", "estimated")
        for mode in modes:
            try:
                if mode == "observed":
                    cost = agent.observed_probing_cost()
                else:
                    cost = agent.estimated_probing_cost()
            except Exception:
                # Degradation is the contract here: a failed probe (the
                # probe table vanished, the estimator is uncalibrated)
                # must not fail the optimization that asked for it.
                continue
            self.probes_executed[agent.site] = (
                self.probes_executed.get(agent.site, 0) + 1
            )
            obs.inc(f"mdbs.probing.executed.{agent.site}")
            obs.inc(f"mdbs.probing.source.{mode}")
            if self.tracker is not None:
                self.tracker.record_probe(agent.site, cost, at_time=now)
            return ProbeReading(cost, mode, now)
        last = self._cache.get(agent.site)
        if last is not None and last.cost is not None:
            obs.inc("mdbs.probing.source.last_known")
            return ProbeReading(last.cost, "last_known", now)
        obs.inc("mdbs.probing.source.static")
        return ProbeReading(None, "static", now)
