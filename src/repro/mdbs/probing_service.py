"""The probing service: cached, coalesced, degradation-tolerant probing.

The multi-states method resolves a model's contention state from a
*current* probing cost (§3.3), which in the seed architecture meant the
global optimizer executed probing queries straight through the agents.
This service centralizes that serving-side concern:

* **cache** — one probing-cost reading per site, keyed on the site's
  *simulated* time with a configurable TTL.  ``ttl=0`` disables caching
  entirely, reproducing the always-fresh-probe behavior byte for byte;
* **coalescing** — callers fetch a site's reading once per optimization
  and share it across candidate plans, so one ``choose()`` executes at
  most one probing query per site;
* **graceful degradation** — when a probe cannot be executed the
  service falls back, in order: observed probe → monitor-estimated
  probe (paper eq. (2)) → last-known reading → *no reading*
  (``cost=None``), which the optimizer turns into a static one-state
  prediction.  Every fallback level taken is counted in
  ``mdbs.probing.source.*``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from .agent import MDBSAgent

#: Fallback levels, in degradation order.
PROBE_SOURCES = ("observed", "estimated", "last_known", "static")


@dataclass(frozen=True)
class ProbeReading:
    """One probing-cost determination for a site.

    ``cost`` is None only at the last fallback level ("static"): no
    probe could be executed and no previous reading exists, so the
    consumer must fall back to a contention-agnostic prediction.
    """

    cost: float | None
    source: str  # one of PROBE_SOURCES
    at_time: float  # simulated time of the determination


class ProbingService:
    """Per-site probing costs with a simulated-time TTL cache."""

    def __init__(
        self,
        agents: dict[str, MDBSAgent],
        ttl: float = 0.0,
        prefer_estimated: bool = False,
        tracker=None,
    ) -> None:
        if ttl < 0:
            raise ValueError("ttl must be >= 0 (0 disables the cache)")
        #: Live mapping shared with the owner (e.g. the MDBS server), so
        #: sites registered later are immediately probe-able.
        self.agents = agents
        self.ttl = float(ttl)
        self.prefer_estimated = prefer_estimated
        #: Optional :class:`~repro.obs.quality.AccuracyTracker` fed every
        #: executed reading, so drift rules can watch the probing-cost
        #: distribution against the models' partitioned state ranges.
        self.tracker = tracker
        self._cache: dict[str, ProbeReading] = {}
        #: Probes actually executed (observed or estimated), per site —
        #: local bookkeeping for experiments; obs counters carry the
        #: global view.
        self.probes_executed: dict[str, int] = {}
        self.cache_hits = 0

    # -- the serving API -------------------------------------------------

    def probing_cost(self, site: str, prefer_estimated: bool | None = None) -> float | None:
        """Current probing cost for *site* (None = degrade to static)."""
        return self.probe(site, prefer_estimated).cost

    def probe(self, site: str, prefer_estimated: bool | None = None) -> ProbeReading:
        """Current :class:`ProbeReading` for *site*, cached within the TTL."""
        try:
            agent = self.agents[site]
        except KeyError:
            raise KeyError(f"no agent registered for site {site!r}") from None
        now = agent.database.environment.now
        cached = self._cache.get(site)
        if (
            cached is not None
            and self.ttl > 0
            and 0.0 <= now - cached.at_time <= self.ttl
        ):
            self.cache_hits += 1
            obs.inc("mdbs.probing.cache_hits")
            return cached
        obs.inc("mdbs.probing.cache_misses")
        reading = self._acquire(agent, now, prefer_estimated)
        if reading.cost is not None:
            self._cache[site] = reading
        obs.set_gauge("mdbs.probing.cache_size", len(self._cache))
        return reading

    def invalidate(self, site: str | None = None) -> None:
        """Drop cached readings (one site, or all of them)."""
        if site is None:
            self._cache.clear()
        else:
            self._cache.pop(site, None)
        obs.set_gauge("mdbs.probing.cache_size", len(self._cache))

    # -- acquisition + degradation chain ---------------------------------

    def _acquire(
        self, agent: MDBSAgent, now: float, prefer_estimated: bool | None
    ) -> ProbeReading:
        prefer = self.prefer_estimated if prefer_estimated is None else prefer_estimated
        modes = ("estimated", "observed") if prefer else ("observed", "estimated")
        for mode in modes:
            try:
                if mode == "observed":
                    cost = agent.observed_probing_cost()
                else:
                    cost = agent.estimated_probing_cost()
            except Exception:
                # Degradation is the contract here: a failed probe (the
                # probe table vanished, the estimator is uncalibrated)
                # must not fail the optimization that asked for it.
                continue
            self.probes_executed[agent.site] = (
                self.probes_executed.get(agent.site, 0) + 1
            )
            obs.inc(f"mdbs.probing.executed.{agent.site}")
            obs.inc(f"mdbs.probing.source.{mode}")
            if self.tracker is not None:
                self.tracker.record_probe(agent.site, cost, at_time=now)
            return ProbeReading(cost, mode, now)
        last = self._cache.get(agent.site)
        if last is not None and last.cost is not None:
            obs.inc("mdbs.probing.source.last_known")
            return ProbeReading(last.cost, "last_known", now)
        obs.inc("mdbs.probing.source.static")
        return ProbeReading(None, "static", now)
