"""Multi-way global queries: chains of joins across many sites.

The paper frames global query optimization as deciding "how to decompose
a global query into local (component) queries and where to execute the
local queries".  The two-site machinery in :mod:`repro.mdbs.optimizer`
covers the basic case; this module generalizes it to N operands joined
in a chain, each possibly at a different site:

    σ(T1) ⋈ σ(T2) ⋈ ... ⋈ σ(Tn)

Planning is greedy left-to-right: the accumulated intermediate lives at
some site; for each next operand the planner compares *join here* (ship
the operand's reduced table over) against *join there* (ship the
accumulator), costing each option with the sites' derived cost models —
local selections via the operand's unary class model, intermediate joins
via the join-class (G3) model — plus the network model for shipping.

Execution mirrors the plan exactly: local component selections run at
their sites, intermediates are materialized as temporary tables at the
chosen join sites, and every step's observed elapsed time is recorded
next to its estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..engine.errors import QueryError
from ..engine.predicate import Predicate, TRUE
from ..engine.query import JoinQuery, SelectQuery
from .catalog import GlobalCatalog
from .network import NetworkModel
from .optimizer import CostEstimate, estimate_join_variables
from .server import MDBSServer, StepTiming


@dataclass(frozen=True)
class Operand:
    """One base table of a multi-way global query."""

    site: str
    table: str
    predicate: Predicate = field(default_factory=lambda: TRUE)


@dataclass(frozen=True)
class JoinLink:
    """Equijoin condition between an earlier operand and the next one.

    ``left_table`` must be the table of some *earlier* operand in the
    chain; ``right_table`` is the operand the link introduces.
    """

    left_table: str
    left_column: str
    right_table: str
    right_column: str


@dataclass(frozen=True)
class MultiJoinQuery:
    """An N-way chain join over tables at (possibly) different sites."""

    operands: tuple[Operand, ...]
    links: tuple[JoinLink, ...]
    columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise QueryError("a multi-way query needs at least two operands")
        if len(self.links) != len(self.operands) - 1:
            raise QueryError(
                f"{len(self.operands)} operands need {len(self.operands) - 1} "
                f"join links, got {len(self.links)}"
            )
        tables = [op.table for op in self.operands]
        if len(set(tables)) != len(tables):
            raise QueryError("operand tables must be distinct")
        seen = {tables[0]}
        for i, link in enumerate(self.links):
            if link.right_table != tables[i + 1]:
                raise QueryError(
                    f"link {i} must introduce operand {tables[i + 1]!r}, "
                    f"introduces {link.right_table!r}"
                )
            if link.left_table not in seen:
                raise QueryError(
                    f"link {i} references {link.left_table!r} before it is joined"
                )
            seen.add(link.right_table)
        for qualified in self.columns:
            table, _, column = qualified.partition(".")
            if not column or table not in seen:
                raise QueryError(f"output column {qualified!r} is not qualified "
                                 "with an operand table")

    def operand_for(self, table: str) -> Operand:
        for operand in self.operands:
            if operand.table == table:
                return operand
        raise KeyError(table)

    def needed_columns(self, table: str, all_columns: Sequence[str]) -> list[str]:
        """Columns of *table* the execution must carry: requested output
        columns plus every join column any link needs from it."""
        if self.columns:
            wanted = [
                c.partition(".")[2] for c in self.columns
                if c.partition(".")[0] == table
            ]
        else:
            wanted = list(all_columns)
        for link in self.links:
            if link.left_table == table and link.left_column not in wanted:
                wanted.append(link.left_column)
            if link.right_table == table and link.right_column not in wanted:
                wanted.append(link.right_column)
        return wanted


@dataclass
class MultiwayStep:
    """One planned join step."""

    introduces: str  # table joined in at this step
    join_site: str
    ship_description: str
    estimates: list[CostEstimate] = field(default_factory=list)

    @property
    def estimated_seconds(self) -> float:
        return sum(e.seconds for e in self.estimates)


@dataclass
class MultiwayPlan:
    """A fully decided execution strategy for a multi-way query."""

    query: MultiJoinQuery
    component_queries: dict[str, SelectQuery]
    select_estimates: list[CostEstimate]
    steps: list[MultiwayStep]

    @property
    def estimated_seconds(self) -> float:
        return sum(e.seconds for e in self.select_estimates) + sum(
            s.estimated_seconds for s in self.steps
        )

    def describe(self) -> str:
        lines = [f"multi-way plan — est {self.estimated_seconds:.2f}s"]
        for estimate in self.select_estimates:
            lines.append(f"  {estimate.description}: {estimate.seconds:.3f}s")
        for step in self.steps:
            lines.append(
                f"  join {step.introduces} at {step.join_site} "
                f"({step.ship_description}): {step.estimated_seconds:.3f}s"
            )
        return "\n".join(lines)


@dataclass
class MultiwayExecution:
    """Observed outcome of a multi-way plan."""

    plan: MultiwayPlan
    column_names: tuple[str, ...]
    rows: list[tuple]
    steps: list[StepTiming] = field(default_factory=list)

    @property
    def observed_seconds(self) -> float:
        return sum(s.seconds for s in self.steps)

    @property
    def estimated_seconds(self) -> float:
        return self.plan.estimated_seconds

    @property
    def cardinality(self) -> int:
        return len(self.rows)


class MultiwayOptimizer:
    """Greedy site selection for multi-way chain joins."""

    def __init__(self, server: MDBSServer, join_class_label: str = "G3") -> None:
        self.server = server
        self.join_class_label = join_class_label

    @property
    def catalog(self) -> GlobalCatalog:
        return self.server.catalog

    @property
    def network(self) -> NetworkModel:
        return self.server.network

    def plan(self, query: MultiJoinQuery) -> MultiwayPlan:
        optimizer = self.server.optimizer()
        # Per-site probing costs, sampled at most once per site per
        # optimization (coalesced through the probing service).
        probes: dict[str, float | None] = {}
        for operand in query.operands:
            if operand.site not in probes:
                probes[operand.site] = optimizer.probing_cost(operand.site)

        # Local component selections and their estimates.
        component_queries: dict[str, SelectQuery] = {}
        select_estimates: list[CostEstimate] = []
        operand_stats: dict[str, dict] = {}
        for operand in query.operands:
            facts = self.catalog.table(operand.site, operand.table)
            needed = query.needed_columns(operand.table, tuple(facts.column_widths))
            component = SelectQuery(operand.table, tuple(needed), operand.predicate)
            component_queries[operand.table] = component
            estimate, values = optimizer.estimate_select(
                operand.site, component, probes[operand.site]
            )
            select_estimates.append(estimate)
            width = float(sum(facts.column_widths[c] for c in needed))
            ndv = {
                column: facts.column_stats.get(column, (None, None, 1))[2]
                for column in needed
            }
            operand_stats[operand.table] = {
                "rows": values["nr"],
                "width": width,
                "site": operand.site,
                "ndv": ndv,
            }

        # Greedy chain: decide each join's site.
        first = query.operands[0]
        acc_rows = operand_stats[first.table]["rows"]
        acc_width = operand_stats[first.table]["width"]
        acc_site = first.site
        # NDVs keyed by qualified name: the accumulator carries columns
        # from several tables, and e.g. "a4" may exist in all of them.
        acc_ndv = {
            f"{first.table}.{column}": ndv
            for column, ndv in operand_stats[first.table]["ndv"].items()
        }
        steps: list[MultiwayStep] = []
        for link in query.links:
            nxt = operand_stats[link.right_table]
            join_values = estimate_join_variables(
                acc_rows,
                nxt["rows"],
                acc_width,
                nxt["width"],
                int(acc_ndv.get(f"{link.left_table}.{link.left_column}", 1) or 1),
                int(nxt["ndv"].get(link.right_column, 1) or 1),
            )
            options = []
            for join_site, shipped_rows, shipped_width, what in (
                (acc_site, nxt["rows"], nxt["width"], f"ship {link.right_table}"),
                (nxt["site"], acc_rows, acc_width, "ship accumulator"),
            ):
                ship = CostEstimate(
                    f"{what} to {join_site}",
                    self.network.transfer_seconds(shipped_rows * shipped_width),
                )
                if join_site not in probes:
                    # A join site that hosts no operand (possible after
                    # temp-table shipping) still needs a contention read.
                    probes[join_site] = optimizer.probing_cost(join_site)
                join_est = optimizer.estimate_join(
                    join_site, join_values, probes[join_site], self.join_class_label
                )
                options.append((join_site, what, [ship, join_est]))
            join_site, what, estimates = min(
                options, key=lambda option: sum(e.seconds for e in option[2])
            )
            steps.append(
                MultiwayStep(
                    introduces=link.right_table,
                    join_site=join_site,
                    ship_description=what,
                    estimates=estimates,
                )
            )
            # Update the accumulator's estimated shape.
            acc_rows = join_values["nr"]
            acc_width = acc_width + nxt["width"]
            acc_site = join_site
            acc_ndv.update(
                {
                    f"{link.right_table}.{column}": ndv
                    for column, ndv in nxt["ndv"].items()
                }
            )
        return MultiwayPlan(
            query=query,
            component_queries=component_queries,
            select_estimates=select_estimates,
            steps=steps,
        )


class MultiwayExecutor:
    """Executes a multi-way plan across the registered sites."""

    def __init__(self, server: MDBSServer) -> None:
        self.server = server

    def execute(
        self, query: MultiJoinQuery, plan: MultiwayPlan | None = None
    ) -> MultiwayExecution:
        plan = plan or MultiwayOptimizer(self.server).plan(query)
        timings: list[StepTiming] = []

        # 1. Local component selections.
        results = {}
        for operand in query.operands:
            agent = self.server.agents[operand.site]
            result = agent.execute(plan.component_queries[operand.table])
            results[operand.table] = result
            timings.append(
                StepTiming(
                    f"select {operand.table} at {operand.site}", result.elapsed
                )
            )

        # 2. Accumulator: qualified column names + rows + per-column widths.
        first = query.operands[0]
        first_facts = self.server.catalog.table(first.site, first.table)
        acc_columns = [
            f"{first.table}.{c}"
            for c in plan.component_queries[first.table].columns
        ]
        acc_widths = [
            first_facts.column_widths[c]
            for c in plan.component_queries[first.table].columns
        ]
        acc_rows = list(results[first.table].result.rows)
        acc_site = first.site

        for link, step in zip(query.links, plan.steps):
            operand = query.operand_for(link.right_table)
            facts = self.server.catalog.table(operand.site, operand.table)
            next_columns = [
                f"{operand.table}.{c}"
                for c in plan.component_queries[operand.table].columns
            ]
            next_widths = [
                facts.column_widths[c]
                for c in plan.component_queries[operand.table].columns
            ]
            next_rows = list(results[operand.table].result.rows)

            # Shipping cost of whichever side moves.
            if step.join_site == acc_site:
                shipped_bytes = len(next_rows) * sum(next_widths)
                what = f"ship {operand.table} to {step.join_site}"
            else:
                shipped_bytes = len(acc_rows) * sum(acc_widths)
                what = f"ship accumulator to {step.join_site}"
            timings.append(
                StepTiming(what, self.server.network.transfer_seconds(shipped_bytes))
            )

            agent = self.server.agents[step.join_site]
            safe_acc = [f"c{i}" for i in range(len(acc_columns))]
            safe_next = [f"d{i}" for i in range(len(next_columns))]
            agent.create_temp_table("_m_acc", safe_acc, acc_widths, acc_rows)
            agent.create_temp_table("_m_next", safe_next, next_widths, next_rows)
            try:
                join_query = JoinQuery(
                    "_m_acc",
                    "_m_next",
                    safe_acc[acc_columns.index(f"{link.left_table}.{link.left_column}")],
                    safe_next[
                        next_columns.index(f"{link.right_table}.{link.right_column}")
                    ],
                )
                join_result = agent.execute(join_query)
            finally:
                agent.drop_temp_table("_m_acc")
                agent.drop_temp_table("_m_next")
            timings.append(
                StepTiming(
                    f"join {operand.table} at {step.join_site}", join_result.elapsed
                )
            )
            acc_columns = acc_columns + next_columns
            acc_widths = acc_widths + next_widths
            acc_rows = join_result.result.rows
            acc_site = step.join_site

        # 3. Final projection onto the requested columns.
        wanted = list(query.columns) if query.columns else acc_columns
        positions = [acc_columns.index(c) for c in wanted]
        rows = [tuple(row[p] for p in positions) for row in acc_rows]
        return MultiwayExecution(
            plan=plan, column_names=tuple(wanted), rows=rows, steps=timings
        )
