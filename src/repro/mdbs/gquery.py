"""Global queries and their decomposition into local component queries.

A global user query joins tables that live at *different* sites.  The
global optimizer decomposes it into one local selection per site plus an
inter-site join, then decides where the join runs ("how to decompose a
global query into local queries and where to execute the local queries",
§1).  Single-site global queries pass straight through to the agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..engine.errors import QueryError
from ..engine.predicate import Predicate, TRUE
from ..engine.query import SelectQuery


@dataclass(frozen=True)
class GlobalJoinQuery:
    """An equijoin between tables at two (possibly different) sites.

    Output columns are ``table.column``-qualified names; an empty tuple
    selects all columns of both operands.
    """

    left_site: str
    left_table: str
    right_site: str
    right_table: str
    left_join_column: str
    right_join_column: str
    columns: tuple[str, ...] = ()
    left_predicate: Predicate = field(default_factory=lambda: TRUE)
    right_predicate: Predicate = field(default_factory=lambda: TRUE)

    def __post_init__(self) -> None:
        if (self.left_site, self.left_table) == (self.right_site, self.right_table):
            raise QueryError("global self-joins are not supported")
        for qualified in self.columns:
            table, _, column = qualified.partition(".")
            if not column or table not in (self.left_table, self.right_table):
                raise QueryError(
                    f"output column {qualified!r} must be qualified with an "
                    "operand table name"
                )

    def requested_columns(self, side: str) -> tuple[str, ...]:
        """Unqualified output columns belonging to one operand."""
        table = self.left_table if side == "left" else self.right_table
        return tuple(
            c.partition(".")[2] for c in self.columns if c.partition(".")[0] == table
        )

    def __str__(self) -> str:
        cols = ", ".join(self.columns) if self.columns else "*"
        return (
            f"SELECT {cols} FROM {self.left_site}:{self.left_table} JOIN "
            f"{self.right_site}:{self.right_table} ON "
            f"{self.left_table}.{self.left_join_column} = "
            f"{self.right_table}.{self.right_join_column}"
        )


@dataclass(frozen=True)
class ComponentQueries:
    """The local selections a global join decomposes into."""

    left: SelectQuery
    right: SelectQuery
    #: Positions of the join columns within each component's select list.
    left_join_position: int
    right_join_position: int


def decompose(
    query: GlobalJoinQuery,
    left_all_columns: Sequence[str],
    right_all_columns: Sequence[str],
) -> ComponentQueries:
    """Split a global join into its two local component selections.

    Each component projects the output columns requested from its table
    plus (always) its join column, and applies that operand's local
    selection — shipping only what the join and the final projection need.
    """

    def component(table, predicate, join_column, requested, all_columns):
        wanted = list(requested) if requested else list(all_columns)
        if join_column not in wanted:
            wanted.append(join_column)
        return SelectQuery(table, tuple(wanted), predicate), wanted.index(join_column)

    left_requested = query.requested_columns("left") if query.columns else ()
    right_requested = query.requested_columns("right") if query.columns else ()
    left_query, left_pos = component(
        query.left_table,
        query.left_predicate,
        query.left_join_column,
        left_requested,
        left_all_columns,
    )
    right_query, right_pos = component(
        query.right_table,
        query.right_predicate,
        query.right_join_column,
        right_requested,
        right_all_columns,
    )
    return ComponentQueries(
        left=left_query,
        right=right_query,
        left_join_position=left_pos,
        right_join_position=right_pos,
    )
