"""The load-generation coordinator: train once, fan shards out, merge.

The coordinator owns the three phases of a run:

1. **train** — derive the G1/G3 models once, on its own copy of the
   shard universe, and export them through the catalog's registry
   payload (:func:`~repro.loadgen.worker.train_models`);
2. **fan out** — hand every :class:`~repro.loadgen.worker.ShardTask`
   plus the payload to a process pool.  The *shard list* is fixed by the
   experiment config; ``workers`` only sets how many run concurrently,
   so the work is identical at any parallelism.  Pool workers get fresh
   observability state via the parallel runner's
   :func:`~repro.experiments.runner.hermetic_worker_obs` initializer;
   ``workers=1`` runs every shard in-process — the reference ordering
   the pool must reproduce;
3. **merge** — reassemble shard reports in index order and aggregate
   (:func:`~repro.loadgen.report.aggregate_reports`).  The aggregate's
   canonical JSON is byte-identical across worker counts; wall-clock
   throughput lives beside it, clearly nondeterministic.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from ..core.strategy import DEFAULT_STRATEGY
from ..experiments.config import ExperimentConfig
from ..experiments.runner import hermetic_worker_obs
from ..workload.scenarios import SCENARIO_KINDS
from .faults import FaultSchedule, named_fault_plan
from .report import aggregate_reports, deterministic_json, percentile
from .worker import ShardReport, ShardTask, run_shard, train_model_payloads

#: Default simulated seconds between served rounds (matches the
#: drift-detection experiment's cadence).
DEFAULT_GAP_SECONDS = 600.0


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one load-generation run (picklable, fully declarative)."""

    experiment: ExperimentConfig
    shards: int
    rounds: int
    gap_seconds: float = DEFAULT_GAP_SECONDS
    #: Scenario per shard, cycled when fewer named than shards.
    scenario_mix: tuple[str, ...] = SCENARIO_KINDS
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    queries_per_round: int = 3
    #: Recovery criterion fed to the drift-loop measurement.
    recover_floor_pct: float = 50.0
    recover_min_samples: int = 3
    #: Model-form strategy per shard, cycled like ``scenario_mix``.  The
    #: default keeps every shard on the paper's OLS form (zero extra
    #: training); a mix like ``("mlr.ols", "mlr.rls")`` races forms
    #: across the fleet.
    strategy_mix: tuple[str, ...] = (DEFAULT_STRATEGY,)
    #: Per-shard trace sampling rate (0 = tracing off, the pre-tracing
    #: behavior).  Sampling is deterministic per trace id, so the merged
    #: trace is byte-identical at any worker count.
    trace_sample_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not self.scenario_mix:
            raise ValueError("scenario_mix must name at least one scenario")
        if not self.strategy_mix:
            raise ValueError("strategy_mix must name at least one strategy")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be within [0, 1]")

    def scenario_for(self, shard: int) -> str:
        return self.scenario_mix[shard % len(self.scenario_mix)]

    def strategy_for(self, shard: int) -> str:
        return self.strategy_mix[shard % len(self.strategy_mix)]

    def strategies(self) -> tuple[str, ...]:
        """Distinct strategies the fleet needs, in first-use order."""
        seen: list[str] = []
        for index in range(self.shards):
            name = self.strategy_for(index)
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def tasks(self) -> list[ShardTask]:
        return [
            ShardTask(
                index=index,
                scenario=self.scenario_for(index),
                rounds=self.rounds,
                gap_seconds=self.gap_seconds,
                config=self.experiment,
                faults=self.faults.for_shard(index),
                queries_per_round=self.queries_per_round,
                strategy=self.strategy_for(index),
                trace_sample_rate=self.trace_sample_rate,
            )
            for index in range(self.shards)
        ]


def default_loadgen_config(
    experiment: ExperimentConfig,
    fault_plan: str = "mixed",
    shards: int | None = None,
    rounds: int | None = None,
) -> LoadGenConfig:
    """The standard run shape: config-sized fleet, named fault plan."""
    shards = shards if shards is not None else experiment.loadgen_shards
    rounds = rounds if rounds is not None else experiment.loadgen_rounds
    return LoadGenConfig(
        experiment=experiment,
        shards=shards,
        rounds=rounds,
        faults=named_fault_plan(
            fault_plan, shards, rounds, DEFAULT_GAP_SECONDS
        ),
    )


@dataclass
class LoadGenReport:
    """Everything one coordinator run produced."""

    config: LoadGenConfig
    workers: int
    shard_reports: list[ShardReport]
    wall_seconds: float = 0.0

    def aggregate(self) -> dict:
        """The deterministic cross-shard payload (worker-count invariant)."""
        return aggregate_reports(
            self.shard_reports,
            self.config.gap_seconds,
            floor_pct=self.config.recover_floor_pct,
            min_samples=self.config.recover_min_samples,
        )

    def deterministic_payload(self) -> str:
        return deterministic_json(self.aggregate())

    def merged_trace(self) -> str:
        """Every shard's sampled spans as one JSONL document.

        Shards merge in index order and each span renders as canonical
        JSON (sorted keys, compact separators), so the merged trace is
        byte-identical at any ``--workers`` count — the same determinism
        contract as :meth:`deterministic_payload`.
        """
        lines = []
        for report in self.shard_reports:  # already in index order
            for span in report.trace_spans:
                lines.append(json.dumps(span, sort_keys=True, separators=(",", ":")))
        return "".join(line + "\n" for line in lines)

    def write_merged_trace(self, path: str | Path) -> int:
        """Write :meth:`merged_trace` to *path*; returns the span count."""
        Path(path).write_text(self.merged_trace(), encoding="utf-8")
        return sum(len(r.trace_spans) for r in self.shard_reports)

    def trace_stats(self) -> dict:
        """Fleet-wide tracing health (deterministic)."""
        return {
            "sampled": sum(r.trace_sampled for r in self.shard_reports),
            "dropped": sum(r.trace_dropped for r in self.shard_reports),
            "spans": sum(len(r.trace_spans) for r in self.shard_reports),
        }

    def wall_stats(self) -> dict:
        """Real wall-clock throughput/latency (NOT deterministic)."""
        latencies = sorted(
            value
            for report in self.shard_reports
            for value in report.wall_latencies
        )
        requests = sum(r.requests for r in self.shard_reports)
        return {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "qps": requests / self.wall_seconds if self.wall_seconds else 0.0,
            "latency_wall_seconds": {
                "count": len(latencies),
                "p50": percentile(latencies, 0.50),
                "p95": percentile(latencies, 0.95),
                "p99": percentile(latencies, 0.99),
            },
        }


class Coordinator:
    """Runs one :class:`LoadGenConfig` at a chosen parallelism."""

    def __init__(self, config: LoadGenConfig, payload: dict | None = None) -> None:
        self.config = config
        #: Trained registry payloads, one per model-form strategy in the
        #: mix.  Pass ``payload`` (a single registry export) to share
        #: training across runs (the scale bench trains once for the
        #: whole worker ladder); it seeds the default-strategy slot.
        self.payloads: dict[str, dict] = {}
        if payload is not None:
            self.payloads[DEFAULT_STRATEGY] = payload

    @property
    def payload(self) -> dict | None:
        """The default-strategy payload (back-compat accessor)."""
        return self.payloads.get(DEFAULT_STRATEGY)

    def train(self) -> dict:
        """Derive the shared models (idempotent; cached on the instance).

        One derivation pass per *distinct* strategy in the mix — the
        default single-strategy mix trains exactly once, as before.
        Returns the first strategy's payload.
        """
        strategies = self.config.strategies()
        missing = tuple(s for s in strategies if s not in self.payloads)
        if missing:
            self.payloads.update(
                train_model_payloads(self.config.experiment, missing)
            )
        return self.payloads[strategies[0]]

    def run(self, workers: int = 1) -> LoadGenReport:
        """Execute every shard with *workers* processes and merge."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.train()
        tasks = self.config.tasks()
        started = time.perf_counter()
        if workers == 1 or len(tasks) == 1:
            reports = [
                run_shard(task, self.payloads[task.strategy]) for task in tasks
            ]
        else:
            by_index: dict[int, ShardReport] = {}
            with ProcessPoolExecutor(
                max_workers=min(workers, len(tasks)),
                initializer=hermetic_worker_obs,
            ) as pool:
                futures = {
                    pool.submit(
                        run_shard, task, self.payloads[task.strategy]
                    ): task.index
                    for task in tasks
                }
                for future, index in futures.items():
                    by_index[index] = future.result()
            reports = [by_index[task.index] for task in tasks]
        return LoadGenReport(
            config=self.config,
            workers=workers,
            shard_reports=reports,
            wall_seconds=time.perf_counter() - started,
        )
