"""Distributed load generation: coordinator, shard workers, faults.

The harness behind the ``loadgen_scale`` bench: a
:class:`~repro.loadgen.coordinator.Coordinator` trains the shared cost
models once, fans a fixed set of scenario **shards** out to a process
pool, injects scripted site faults
(:class:`~repro.loadgen.faults.FaultSchedule`), and merges the shard
reports into one aggregate whose canonical JSON is byte-identical at
any ``--workers`` count.
"""

from .coordinator import (
    DEFAULT_GAP_SECONDS,
    Coordinator,
    LoadGenConfig,
    LoadGenReport,
    default_loadgen_config,
)
from .faults import (
    FAULT_KINDS,
    FAULT_PLANS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    SiteOutageError,
    UnavailableProbe,
    named_fault_plan,
)
from .report import (
    DriftLoopStats,
    aggregate_reports,
    deterministic_json,
    measure_drift_loop,
    percentile,
)
from .worker import (
    STEADY_SITE,
    VAR_SITE,
    WATCHED_CLASS,
    RoundRecord,
    ShardReport,
    ShardTask,
    loadgen_builder_config,
    loadgen_drift_policy,
    loadgen_tables,
    make_universe,
    run_shard,
    train_model_payloads,
    train_models,
    universe_seed,
)

__all__ = [
    "DEFAULT_GAP_SECONDS",
    "FAULT_KINDS",
    "FAULT_PLANS",
    "Coordinator",
    "DriftLoopStats",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LoadGenConfig",
    "LoadGenReport",
    "RoundRecord",
    "STEADY_SITE",
    "ShardReport",
    "ShardTask",
    "SiteOutageError",
    "UnavailableProbe",
    "VAR_SITE",
    "WATCHED_CLASS",
    "aggregate_reports",
    "default_loadgen_config",
    "deterministic_json",
    "loadgen_builder_config",
    "loadgen_drift_policy",
    "loadgen_tables",
    "make_universe",
    "measure_drift_loop",
    "named_fault_plan",
    "percentile",
    "run_shard",
    "train_model_payloads",
    "train_models",
    "universe_seed",
]
