"""One load-generation shard: a self-contained MDBS universe under load.

A **shard** is the unit of determinism.  Given its :class:`ShardTask`
and the coordinator's trained-model payload, :func:`run_shard` is a pure
function: it builds a fresh two-site universe from seeds derived only
from (config seed, shard index), imports the models through the registry
payload, and serves a scripted timeline of global joins through its own
single-worker serving front end — so the report it returns is
byte-identical whether the shard runs in the coordinator's process, in a
pool worker, or alone in a test.

Per round the shard:

1. advances both sites' simulated clocks by the round gap;
2. steps its :class:`~repro.loadgen.faults.FaultInjector` (outages and
   slowdowns activate/clear on the simulated clock);
3. re-installs the scenario's contention trace at the ``regime_shift``
   boundary (unless a fault currently owns the trace);
4. serves its queries through the front end (plan cache on, so registry
   publishes from drift rebuilds invalidate exactly the stale plans);
5. runs :meth:`~repro.mdbs.server.MDBSServer.maintain`, which is where
   the armed drift policy turns bad accuracy windows into targeted
   re-derivations.

The shard's models are **imported, not trained**: classes register with
``build_now=False`` so the maintainer can rebuild them on drift without
repeating the coordinator's initial derivation in every worker.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import asdict, dataclass, field

import numpy as np

from .. import obs

from ..core.builder import BuilderConfig, CostModelBuilder
from ..core.classification import G1, G3
from ..core.iupma import StatesConfig
from ..core.strategy import DEFAULT_STRATEGY
from ..engine.predicate import Comparison
from ..engine.profiles import DB2_LIKE, ORACLE_LIKE
from ..env.loadbuilder import LoadBuilder
from ..experiments.config import ExperimentConfig
from ..experiments.harness import stable_rng, stable_seed
from ..mdbs.agent import MDBSAgent
from ..mdbs.catalog import GlobalCatalog
from ..mdbs.gquery import GlobalJoinQuery
from ..mdbs.server import MDBSServer
from ..obs.quality import AccuracyTracker, DriftPolicy
from ..serving.config import ServingConfig
from ..serving.frontend import ServingFrontEnd
from ..workload.scenarios import (
    SCENARIO_CALM_RANGE,
    Site,
    install_scenario_trace,
    make_two_site_universe,
    scenario_shift_round,
)
from .faults import FaultEvent, FaultInjector

#: The two sites every shard (and the coordinator's trainer) builds.
VAR_SITE = "var_site"
STEADY_SITE = "steady_site"

#: The class whose accuracy window the drift loop is measured on: the
#: variable site's local selection executes every round no matter which
#: join site the optimizer picks (same reasoning as the drift-detection
#: experiment).
WATCHED_CLASS = G1.label

_MODEL_CLASSES = (G1, G3)


def universe_seed(config: ExperimentConfig) -> int:
    """The seed the loadgen universe derives from — shared by *every*
    shard, so the coordinator-trained models import cleanly into
    byte-identical site copies."""
    return stable_seed(config.seed, "loadgen")


def loadgen_tables(config: ExperimentConfig) -> list[str]:
    return list(config.join_tables or ("R1", "R2", "R3", "R4"))


def loadgen_builder_config(strategy: str = DEFAULT_STRATEGY) -> BuilderConfig:
    """Fewer, better-identified states (the drift experiment's tuning).

    *strategy* picks the model-form strategy the shard's builds and
    drift rebuilds go through (``"mlr.ols"`` reproduces the pre-strategy
    behavior byte for byte).
    """
    return BuilderConfig(
        states=StatesConfig(max_states=4, min_obs_per_state=25),
        strategy=strategy,
    )


def loadgen_drift_policy(gap_seconds: float) -> DriftPolicy:
    """Drift thresholds tuned to ~2 accuracy samples per served round.

    The fault window is only a handful of rounds at smoke scale, so the
    accuracy rules must look at a short recent window or pre-fault good
    samples dilute the misses past the floor — but short enough windows
    misfire on a healthy model's occasional bad stretch.  At the default
    three queries (three watched-class samples) per round, a 9-sample
    window fires about two rounds into a real fault while a misfire
    needs 5+ bad estimates among the last 9 on calm load.  The bias rule
    is disabled: ``good_band`` and ``probe_escape`` are the two signals
    left armed (the fault tests assert detection, not which of the two
    fired first).
    """
    return DriftPolicy(
        recent_window=9,
        min_samples=6,
        good_band_floor_pct=50.0,
        bias_limit=None,
        probe_escape_fraction=0.5,
        probe_min_readings=4,
        # Calm contention dips near zero, and micro training runs leave
        # Cmin well above it; a wide margin keeps those dips from
        # reading as escapes while pinned faults (whose probing costs
        # inflate several-fold) still escape decisively.
        probe_margin=0.5,
        cooldown_seconds=2.0 * gap_seconds,
    )


@dataclass(frozen=True)
class ShardTask:
    """Everything one shard needs, picklable for the process pool."""

    index: int
    scenario: str
    rounds: int
    gap_seconds: float
    config: ExperimentConfig
    faults: tuple[FaultEvent, ...] = ()
    queries_per_round: int = 3
    #: Model-form strategy this shard serves and rebuilds with.
    strategy: str = DEFAULT_STRATEGY
    #: Fraction of traces kept by the shard's deterministic sampler;
    #: 0 (the default) disables tracing entirely — the pre-tracing path.
    trace_sample_rate: float = 0.0


@dataclass
class RoundRecord:
    """One served round of a shard's timeline (simulated facts only)."""

    index: int
    sim_time: float
    #: A fault is active or the regime shift is in effect.
    disturbed: bool
    #: Fault transitions this round ("outage:applied", ...).
    fault_notes: list[str] = field(default_factory=list)
    #: True only on the round the scenario's regime shift begins.
    shift_started: bool = False
    #: Drift events raised by this round's maintain() pass.
    drift_events: list[dict] = field(default_factory=list)
    #: Watched-class aggregate after this round (post-rebuild windows
    #: start fresh, so this measures the *serving* model).
    good_pct: float = 0.0
    samples: int = 0
    active_version: int = 1


@dataclass
class ShardReport:
    """What one shard hands back to the coordinator.

    Everything except ``wall_latencies`` / ``wall_seconds`` is a pure
    function of (task, payload) — the coordinator's determinism guarantee
    merges only those fields.
    """

    index: int
    scenario: str
    rounds: list[RoundRecord]
    #: Model-form strategy the shard served with (see ShardTask).
    strategy: str = DEFAULT_STRATEGY
    requests: int = 0
    completed: int = 0
    failed: int = 0
    #: Simulated seconds per completed query, submission order.
    latencies: list[float] = field(default_factory=list)
    #: Real wall-clock seconds per request (nondeterministic).
    wall_latencies: list[float] = field(default_factory=list)
    drift_events: list[dict] = field(default_factory=list)
    #: (site, class, version, trigger) of drift-published versions.
    published: list[tuple] = field(default_factory=list)
    plan_sources: dict = field(default_factory=dict)
    plan_cache: dict = field(default_factory=dict)
    probes_executed: dict = field(default_factory=dict)
    accuracy: dict = field(default_factory=dict)
    fault_log: list[tuple] = field(default_factory=list)
    models_imported: int = 0
    wall_seconds: float = 0.0
    #: Sampled span dicts (simulated-clock, shard-local span ids) —
    #: a pure function of the task, like the rest of the report, but
    #: excluded from ``deterministic_dict`` so committed bench payloads
    #: predating tracing stay schema-identical.
    trace_spans: list[dict] = field(default_factory=list)
    trace_sampled: int = 0
    trace_dropped: int = 0

    def deterministic_dict(self) -> dict:
        """The shard's report minus every wall-clock field."""
        payload = asdict(self)
        payload.pop("wall_latencies")
        payload.pop("wall_seconds")
        payload.pop("trace_spans")
        payload.pop("trace_sampled")
        payload.pop("trace_dropped")
        return payload


# ---------------------------------------------------------------------------
# Universe construction + one-time training (coordinator side)
# ---------------------------------------------------------------------------


def make_universe(config: ExperimentConfig) -> tuple[Site, Site]:
    """The standard loadgen universe: a variable and a steady site.

    Seeded from :func:`universe_seed` only, so the coordinator (which
    trains on one copy) and every shard (which serves on its own copy)
    hold byte-identical databases and generators.
    """
    useed = universe_seed(config)
    return make_two_site_universe(
        names=(VAR_SITE, STEADY_SITE),
        profiles=(ORACLE_LIKE, DB2_LIKE),
        seeds=(useed + 81, useed + 82),
        scale=config.scale,
        calm_range=SCENARIO_CALM_RANGE,
    )


def train_models(config: ExperimentConfig) -> dict:
    """Derive G1/G3 at both sites under the calm regime; export them.

    Runs once in the coordinator; shards import the payload and register
    their classes with ``build_now=False``.
    """
    return train_model_payloads(config, (DEFAULT_STRATEGY,))[DEFAULT_STRATEGY]


def train_model_payloads(
    config: ExperimentConfig, strategies: tuple[str, ...]
) -> dict[str, dict]:
    """One registry payload per model-form strategy, trained on one pass.

    Sampling the training queries is the expensive part; the observation
    set is collected once per (site, class) and every strategy derives
    its form from the same observations — so racing forms differ only in
    how they fit, never in what they saw.
    """
    var, steady = make_universe(config)
    tables = loadgen_tables(config)
    catalogs = {name: GlobalCatalog() for name in strategies}
    for site in (var, steady):
        for catalog in catalogs.values():
            catalog.register_site(site.name)
        builder = CostModelBuilder(
            site.database, config=loadgen_builder_config()
        )
        for query_class in _MODEL_CLASSES:
            queries = site.generator.queries_for(
                query_class,
                config.train_count(query_class.family),
                tables=tables,
            )
            observations = builder.collect(queries)
            for name, catalog in catalogs.items():
                outcome = builder.build_from_observations(
                    observations, query_class, "iupma", strategy=name
                )
                catalog.store_cost_model(site.name, outcome.model)
    return {name: catalog.export_models() for name, catalog in catalogs.items()}


# ---------------------------------------------------------------------------
# The shard itself (worker side)
# ---------------------------------------------------------------------------


def _round_query(
    var: Site, steady: Site, tables: list[str], rng: np.random.Generator
) -> GlobalJoinQuery:
    """One global join with the variable site on the left, so its local
    selection feeds the watched accuracy window every round."""
    left_table = tables[int(rng.integers(0, len(tables)))]
    remaining = [t for t in tables if t != left_table]
    right_table = remaining[int(rng.integers(0, len(remaining)))]
    return GlobalJoinQuery(
        var.name,
        left_table,
        steady.name,
        right_table,
        "a4",
        "a4",
        (f"{left_table}.a1", f"{right_table}.a2"),
        left_predicate=Comparison("a3", "<", int(rng.integers(600, 950))),
        right_predicate=Comparison("a7", "<", int(rng.integers(35000, 48000))),
    )


def run_shard(task: ShardTask, payload: dict) -> ShardReport:
    """Serve one shard's full timeline; see the module docstring."""
    started = time.perf_counter()
    config = task.config
    var, steady = make_universe(config)
    tables = loadgen_tables(config)

    # A private tracker keeps pool workers hermetic and gives each shard
    # its own drift bookkeeping; export=False keeps the hot path off the
    # global metrics registry.
    tracker = AccuracyTracker(probe_window_size=8, export=False)
    # A sub-round probe TTL makes each round contribute ONE executed
    # probe (requests within the round share it), so the escape rule's
    # window spans independent contention epochs instead of filling
    # with copies of a single draw.
    server = MDBSServer(accuracy=tracker, probe_ttl=task.gap_seconds / 4.0)
    for site in (var, steady):
        server.register_agent(MDBSAgent(site.database))
    imported = server.catalog.import_models(payload)

    agent = server.agents[var.name]
    server.configure_maintenance(
        var.name,
        # The builder captures the *original* probe object, so drift
        # rebuilds keep working while an outage has swapped agent.probe.
        builder=CostModelBuilder(
            agent.database,
            probe=agent.probe,
            config=loadgen_builder_config(task.strategy),
        ),
        drift=loadgen_drift_policy(task.gap_seconds),
    )
    for query_class in _MODEL_CLASSES:
        server.register_model_class(
            var.name,
            query_class,
            lambda n, s=var, qc=query_class: s.generator.queries_for(
                qc, n, tables=tables
            ),
            sample_count=config.train_count(query_class.family),
            build_now=False,
            strategy=task.strategy,
        )

    # Per-shard variety comes from two derived streams only: the query
    # stream and the contention trace (a fresh builder with a per-shard
    # seed replaces make_site's shared-seed one).
    stream = stable_rng(config.seed, f"loadgen/shard{task.index}/stream")
    trace_builder = LoadBuilder(
        var.environment,
        seed=stable_seed(config.seed, f"loadgen/shard{task.index}/trace"),
    )
    current_round = [0]

    def restore_trace() -> None:
        install_scenario_trace(
            trace_builder, task.scenario, current_round[0], task.rounds
        )

    restore_trace()
    injector = FaultInjector(task.faults, agent, trace_builder, restore_trace)

    report = ShardReport(
        index=task.index,
        scenario=task.scenario,
        rounds=[],
        strategy=task.strategy,
        models_imported=imported,
    )
    registry = server.catalog.registry
    shift_round = scenario_shift_round(task.rounds)
    shift_seen = False

    serving = ServingConfig(
        workers=1,
        queue_depth=max(16, task.queries_per_round * 2),
        admission_policy="block",
        plan_cache=True,
        trace_sample_rate=task.trace_sample_rate,
        trace_seed=stable_seed(config.seed, "loadgen/trace"),
        trace_id_prefix=f"s{task.index:03d}-",
    )
    tracer: obs.Tracer | None = None
    scope = ExitStack()
    if task.trace_sample_rate > 0.0:
        # Spans clock on the shard's *simulated* time with shard-local
        # span ids, so the exported spans — like the rest of the report
        # — are a pure function of (task, payload), whatever process or
        # worker count runs the shard.
        tracer = scope.enter_context(
            obs.recording(clock=lambda: var.environment.now, local_ids=True)
        )
    with scope, ServingFrontEnd(server, serving) as frontend:
        for r in range(task.rounds):
            current_round[0] = r
            var.environment.advance(task.gap_seconds)
            steady.environment.advance(task.gap_seconds)
            notes = injector.step(var.environment.now)
            shift_active = (
                task.scenario == "regime_shift" and r >= shift_round
            )
            shift_started = shift_active and not shift_seen
            if shift_started:
                shift_seen = True
                if injector.active is None:
                    # The fault layer owns the trace while active; the
                    # restore callback re-applies the shift on clear.
                    restore_trace()

            for _ in range(task.queries_per_round):
                query = _round_query(var, steady, tables, stream)
                report.requests += 1
                ticket = frontend.serve([query])[0]
                report.wall_latencies.append(ticket.latency_seconds or 0.0)
                if ticket.ok:
                    report.completed += 1
                    report.latencies.append(ticket.execution.observed_seconds)
                    source = ticket.plan_source or "unknown"
                    report.plan_sources[source] = (
                        report.plan_sources.get(source, 0) + 1
                    )
                else:
                    report.failed += 1

            before = len(server.drift_events)
            server.maintain()
            fresh = [e.to_dict() for e in server.drift_events[before:]]
            report.drift_events.extend(fresh)

            stats = tracker.stats(var.name, WATCHED_CLASS)
            report.rounds.append(
                RoundRecord(
                    index=r,
                    sim_time=round(var.environment.now, 6),
                    disturbed=injector.active is not None or shift_active,
                    fault_notes=notes,
                    shift_started=shift_started,
                    drift_events=fresh,
                    good_pct=stats.pct_good,
                    samples=stats.count,
                    active_version=registry.active_version(
                        var.name, WATCHED_CLASS
                    ).version,
                )
            )
        front_stats = frontend.stats()

    for site_name, label in registry.keys():
        entry = registry.active_version(site_name, label)
        if entry.provenance is not None and entry.provenance.trigger is not None:
            report.published.append(
                (site_name, label, entry.version, entry.provenance.trigger)
            )
    report.plan_cache = {
        "hits": front_stats.plan_cache_hits,
        "misses": front_stats.plan_cache_misses,
        "evictions": front_stats.plan_cache_evictions,
        "invalidated": front_stats.plan_cache_invalidated,
    }
    report.probes_executed = dict(sorted(server.probing.probes_executed.items()))
    report.accuracy = tracker.snapshot()
    if tracer is not None:
        report.trace_spans = [
            obs.span_to_dict(s)
            for s in sorted(tracer.finished(), key=lambda s: s.span_id)
            if s.trace_id is not None
        ]
        report.trace_sampled = frontend.sampler.sampled
        report.trace_dropped = frontend.sampler.dropped
    report.fault_log = [
        (round(at, 6), note) for at, note in injector.transitions
    ]
    report.wall_seconds = time.perf_counter() - started
    return report
