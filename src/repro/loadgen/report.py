"""Measurement and aggregation over shard reports.

Two concerns live here:

* :func:`measure_drift_loop` — turn one shard's round timeline into the
  drift-loop numbers the bench reports: when the disturbance started,
  when the detector fired, when the fault cleared, and when accuracy was
  back in the §5 good band.  Everything is counted in served rounds (and
  converted to simulated seconds), so the numbers are deterministic;
* :func:`aggregate_reports` — merge every shard's deterministic facts
  into one payload.  Shards merge in index order regardless of which
  worker ran them, which is the whole determinism argument for
  ``--workers N``: :func:`deterministic_json` of the aggregate is
  byte-identical for any worker count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..obs.quality import merge_accuracy_snapshots

#: Aggregate-payload schema version (BENCH_loadgen_scale.json).
REPORT_SCHEMA_VERSION = 1


def _field(record, name, default=None):
    """Read *name* from a RoundRecord or its asdict() form."""
    if isinstance(record, dict):
        return record.get(name, default)
    return getattr(record, name, default)


@dataclass(frozen=True)
class DriftLoopStats:
    """One shard's detect/recover timeline, in rounds and sim-seconds."""

    #: First round the disturbance was in effect (fault applied or the
    #: scenario's regime shift began); None = timeline was never disturbed.
    onset_round: int | None
    #: First round at/after onset whose maintain() pass raised an event.
    detect_round: int | None
    #: Round the fault cleared (None: still active at end, or the
    #: disturbance was a regime shift, which never clears).
    cleared_round: int | None
    #: First round at/after both detection and the clear (or onset, for
    #: shifts) with accuracy back in the good band.
    recover_round: int | None
    gap_seconds: float

    @property
    def detected(self) -> bool:
        return self.detect_round is not None

    @property
    def recovered(self) -> bool:
        return self.recover_round is not None

    @property
    def detect_latency_rounds(self) -> int | None:
        if self.onset_round is None or self.detect_round is None:
            return None
        return self.detect_round - self.onset_round

    @property
    def recover_latency_rounds(self) -> int | None:
        if self.detect_round is None or self.recover_round is None:
            return None
        return self.recover_round - self.detect_round

    def _seconds(self, rounds: int | None) -> float | None:
        return None if rounds is None else rounds * self.gap_seconds

    def to_dict(self) -> dict:
        return {
            "onset_round": self.onset_round,
            "detect_round": self.detect_round,
            "cleared_round": self.cleared_round,
            "recover_round": self.recover_round,
            "detect_latency_rounds": self.detect_latency_rounds,
            "recover_latency_rounds": self.recover_latency_rounds,
            "detect_latency_seconds": self._seconds(self.detect_latency_rounds),
            "recover_latency_seconds": self._seconds(self.recover_latency_rounds),
        }


def measure_drift_loop(
    rounds,
    gap_seconds: float,
    floor_pct: float = 50.0,
    min_samples: int = 3,
) -> DriftLoopStats:
    """Extract one shard's drift-loop timeline from its round records.

    Recovery means the watched class's *post-rebuild* accuracy window
    (the server resets it at each drift rebuild) holds at least
    *min_samples* samples with the good fraction at/above *floor_pct*,
    at a round no earlier than detection and no earlier than the clear
    (disturbances that never clear — regime shifts — anchor recovery at
    detection instead: the rebuilt model must be good *under* the new
    regime).
    """
    onset = detect = cleared = recover = last_event = None
    for record in rounds:
        index = _field(record, "index")
        notes = _field(record, "fault_notes", []) or []
        if onset is None and (
            any(n.endswith(":applied") for n in notes)
            or _field(record, "shift_started", False)
        ):
            onset = index
        if cleared is None and any(n.endswith(":cleared") for n in notes):
            cleared = index
        if onset is not None and _field(record, "drift_events", []):
            last_event = index
            if detect is None:
                detect = index
    if detect is not None:
        # The loop has converged only once the final rebuild has been
        # published: a fault-trained model serving the restored regime
        # raises one more event, and recovery is measured after it.
        anchor = max(
            detect,
            last_event if last_event is not None else detect,
            cleared if cleared is not None else detect,
        )
        for record in rounds:
            index = _field(record, "index")
            if index < anchor:
                continue
            if (
                _field(record, "samples", 0) >= min_samples
                and _field(record, "good_pct", 0.0) >= floor_pct
            ):
                recover = index
                break
    return DriftLoopStats(
        onset_round=onset,
        detect_round=detect,
        cleared_round=cleared,
        recover_round=recover,
        gap_seconds=gap_seconds,
    )


def percentile(sorted_values: list[float], q: float) -> float:
    """The bench-suite percentile convention (index = int(q * n))."""
    if not sorted_values:
        return 0.0
    return sorted_values[min(len(sorted_values) - 1, int(q * len(sorted_values)))]


def aggregate_reports(
    reports,
    gap_seconds: float,
    floor_pct: float = 50.0,
    min_samples: int = 3,
) -> dict:
    """Merge shard reports (sorted by index) into one deterministic dict.

    Only simulated facts enter: counts, simulated latencies, drift
    timelines, plan-cache counters, and the sample-weighted accuracy
    merge.  Wall-clock numbers stay on the individual reports.
    """
    reports = sorted(reports, key=lambda r: r.index)
    latencies = sorted(
        value for report in reports for value in report.latencies
    )
    by_rule: dict[str, int] = {}
    for report in reports:
        for event in report.drift_events:
            rule = event.get("rule", "unknown")
            by_rule[rule] = by_rule.get(rule, 0) + 1
    plan_cache = {"hits": 0, "misses": 0, "evictions": 0, "invalidated": 0}
    for report in reports:
        for key in plan_cache:
            plan_cache[key] += report.plan_cache.get(key, 0)
    drift_loops = {}
    for report in reports:
        stats = measure_drift_loop(
            report.rounds, gap_seconds, floor_pct, min_samples
        )
        if stats.onset_round is not None:
            drift_loops[str(report.index)] = stats.to_dict()
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "shards": len(reports),
        "scenarios": [r.scenario for r in reports],
        "requests": sum(r.requests for r in reports),
        "completed": sum(r.completed for r in reports),
        "failed": sum(r.failed for r in reports),
        "latency_sim_seconds": {
            "count": len(latencies),
            "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
        },
        "drift": {
            "events": sum(len(r.drift_events) for r in reports),
            "by_rule": dict(sorted(by_rule.items())),
            "published": sum(len(r.published) for r in reports),
            "loops": drift_loops,
        },
        "plan_cache": plan_cache,
        "probes_executed": {
            site: sum(r.probes_executed.get(site, 0) for r in reports)
            for site in sorted(
                {s for r in reports for s in r.probes_executed}
            )
        },
        "accuracy": merge_accuracy_snapshots([r.accuracy for r in reports]),
        "per_shard": [r.deterministic_dict() for r in reports],
    }


def deterministic_json(payload: dict) -> str:
    """Canonical JSON for byte-for-byte aggregate comparison."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
