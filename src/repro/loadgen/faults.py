"""Fault injection for the load-generation harness.

A :class:`FaultSchedule` scripts site disturbances at *simulated-time*
offsets — the same clock the cost models, probing service, and drift
detector live on — so a fault timeline is part of a shard's
deterministic identity, not a wall-clock race:

* ``outage`` — the site stops answering probing queries (the agent's
  probe is swapped for :class:`UnavailableProbe`, which raises on every
  ``observe()``) while its contention pins near saturation.  The
  probing service degrades observed → estimated → last-known, so the
  optimizer keeps planning against a *stale calm* reading — exactly the
  blind spot the accuracy windows then expose (the ``good_band`` drift
  rule fires, not ``probe_escape``: no fresh probes exist to escape);
* ``slowdown`` — the site's contention pins at a high level but probes
  still execute, so probing costs inflate out of the model's derived
  [Cmin, Cmax] range.  Either accuracy rule may fire first — the
  ``good_band`` window usually collapses before ``probe_escape``
  accumulates enough fresh readings — which is why the fault tests
  assert detection and recovery, not a specific rule.

Recovery restores the saved probe and re-installs the shard scenario's
own contention trace.  The drift loop's job — and what the fault tests
assert — is to detect each disturbance, force a re-derivation through
the registry, and return accuracy to the §5 good band after the fault
clears.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..env.loadbuilder import LoadBuilder
from ..mdbs.agent import MDBSAgent

#: ``--fault-plan`` vocabulary (see :func:`named_fault_plan`).
FAULT_PLANS = ("none", "outage", "slowdown", "mixed")

#: Kinds an event may carry.
FAULT_KINDS = ("outage", "slowdown")


class SiteOutageError(RuntimeError):
    """Raised by :class:`UnavailableProbe`: the site is down for probing."""


class UnavailableProbe:
    """A probing stub standing in for a site that stopped responding."""

    def __init__(self, site: str) -> None:
        self.site = site

    def observe(self) -> float:
        raise SiteOutageError(f"site {self.site!r} is not answering probes")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted disturbance of a shard's variable site."""

    #: Shard index the event targets (shards are the determinism unit).
    shard: int
    #: "outage" | "slowdown".
    kind: str
    #: Simulated seconds (site clock) at which the fault begins.
    at_seconds: float
    #: Simulated seconds the fault lasts.
    duration_seconds: float
    #: Contention level pinned while the fault is active.
    level: float = 0.9

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")

    @property
    def ends_at(self) -> float:
        return self.at_seconds + self.duration_seconds


@dataclass(frozen=True)
class FaultSchedule:
    """Every scripted fault of one load-generation run."""

    events: tuple[FaultEvent, ...] = ()

    def for_shard(self, shard: int) -> tuple[FaultEvent, ...]:
        """This shard's events, ordered by onset time."""
        return tuple(
            sorted(
                (e for e in self.events if e.shard == shard),
                key=lambda e: e.at_seconds,
            )
        )

    def __len__(self) -> int:
        return len(self.events)


def named_fault_plan(
    name: str, shards: int, rounds: int, gap_seconds: float
) -> FaultSchedule:
    """The canned ``--fault-plan`` schedules, sized to the run shape.

    Faults start about a quarter of the way through the timeline and
    last another quarter, leaving roughly half the rounds for the drift
    loop to detect, rebuild, and prove recovery after the clear.
    """
    if name not in FAULT_PLANS:
        raise ValueError(f"unknown fault plan {name!r}; pick from {FAULT_PLANS}")
    if name == "none":
        return FaultSchedule()
    onset = gap_seconds * max(2, rounds // 4)
    duration = gap_seconds * max(3, rounds // 4)
    outage = FaultEvent(
        shard=0, kind="outage", at_seconds=onset,
        duration_seconds=duration, level=0.98,
    )
    slowdown = FaultEvent(
        shard=1 % shards, kind="slowdown", at_seconds=onset,
        duration_seconds=duration, level=0.9,
    )
    if name == "outage":
        return FaultSchedule((outage,))
    if name == "slowdown":
        return FaultSchedule((slowdown,))
    events = [outage]
    if shards > 1:
        events.append(slowdown)
    return FaultSchedule(tuple(events))


class FaultInjector:
    """Applies one shard's fault timeline to its variable site.

    Called once per served round with the site's current simulated time;
    activations and expiries depend only on that clock, so the fault
    trajectory is identical wherever the shard runs.  One fault is
    active at a time (the named plans never overlap a shard's events;
    overlapping custom events activate in onset order, later ones
    replacing earlier ones).
    """

    def __init__(
        self,
        events: tuple[FaultEvent, ...],
        agent: MDBSAgent,
        load_builder: LoadBuilder,
        restore_trace,
    ) -> None:
        self._timeline = sorted(events, key=lambda e: e.at_seconds)
        self.agent = agent
        self.load_builder = load_builder
        #: Zero-argument callable re-installing the scenario's own trace.
        self._restore_trace = restore_trace
        self.active: FaultEvent | None = None
        self._saved_probe = None
        #: (simulated time, "kind:applied|cleared"), oldest first.
        self.transitions: list[tuple[float, str]] = []

    def step(self, now: float) -> list[str]:
        """Advance the timeline to *now*; returns this round's transitions."""
        notes: list[str] = []
        if self.active is not None and now >= self.active.ends_at:
            self._clear(now, notes)
        while self._timeline and now >= self._timeline[0].at_seconds:
            event = self._timeline.pop(0)
            if now >= event.ends_at:
                continue  # fell entirely between two served rounds
            self._activate(event, now, notes)
        return notes

    def _activate(self, event: FaultEvent, now: float, notes: list[str]) -> None:
        if self.active is not None:
            self._clear(now, notes)
        self.active = event
        if event.kind == "outage":
            self._saved_probe = self.agent.probe
            self.agent.probe = UnavailableProbe(self.agent.site)
        self.load_builder.constant(event.level)
        note = f"{event.kind}:applied"
        self.transitions.append((now, note))
        notes.append(note)

    def _clear(self, now: float, notes: list[str]) -> None:
        event = self.active
        assert event is not None
        if self._saved_probe is not None:
            self.agent.probe = self._saved_probe
            self._saved_probe = None
        self._restore_trace()
        self.active = None
        note = f"{event.kind}:cleared"
        self.transitions.append((now, note))
        notes.append(note)
