"""The plan cache: repeated optimizations served without the optimizer.

A global plan is a pure function of (a) the query, (b) the contention
state each involved cost model resolves to, and (c) the active model
versions behind those estimates.  The cache keys on exactly that:

* the **query key** — every structural field of the
  :class:`~repro.mdbs.gquery.GlobalJoinQuery` including both local
  predicates, so only genuinely identical requests share a plan;
* the **state key** — the resolved contention state of every
  ``(site, query class)`` the plan's estimates depend on, learned from
  the first optimization of that query.  A site moving to a different
  contention state therefore misses and re-optimizes (the multi-states
  method's whole point), while repeats within a state hit;
* the **active model version**, enforced not by embedding version
  numbers in the key but by *invalidation*: the cache subscribes to its
  :class:`~repro.mdbs.registry.CostModelRegistry` and evicts exactly the
  entries depending on a ``(site, class)`` whenever a version is
  published, activated, rolled back, or dropped — the model-staleness
  discipline of the adaptive-cost-model literature (a cached plan must
  never outlive the model that scored it).

Thread-safe throughout; lookups resolve contention states *outside* the
cache lock (state resolution may execute a probing query).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Iterable, Sequence

from .. import obs
from ..mdbs.gquery import GlobalJoinQuery
from ..mdbs.optimizer import GlobalPlan

#: One resolved dependency: (site, class_label, contention state) plus,
#: when a model-tag resolver is configured, the active (version, form).
StateKey = tuple[tuple, ...]
#: The (site, class_label) pairs a cached plan's estimates read.
DepKey = tuple[tuple[str, str], ...]


def query_key(query: GlobalJoinQuery) -> tuple:
    """A hashable identity for one global query, predicates included."""
    return (
        query.left_site,
        query.left_table,
        query.right_site,
        query.right_table,
        query.left_join_column,
        query.right_join_column,
        query.columns,
        repr(query.left_predicate),
        repr(query.right_predicate),
    )


class PlanCache:
    """LRU plan cache keyed (query, contention states), model-aware.

    ``registry`` (a :class:`~repro.mdbs.registry.CostModelRegistry`) is
    optional but is what makes the cache safe to serve from: every
    publish/activate/rollback/drop event evicts the entries whose
    dependency set contains the touched ``(site, class)`` — and *only*
    those, so plans for untouched classes survive byte-identical.
    """

    def __init__(
        self,
        registry=None,
        capacity: int = 1024,
        model_tag: Callable[[str, str], tuple | None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: Optional ``(site, class_label) -> (version, form)`` resolver
        #: (:meth:`~repro.mdbs.server.MDBSServer.model_tag`).  When set,
        #: the tag joins every state key, so plans scored by one model
        #: version/form are never served for another — belt on top of the
        #: event-driven invalidation, and the only safeguard that also
        #: covers *in-place* form changes (online coefficient updates
        #: republish no event; a version+form mismatch still misses).
        self._model_tag = model_tag
        self._lock = threading.Lock()
        #: (query_key, state_key) -> plan, in LRU order (oldest first).
        self._plans: "OrderedDict[tuple, GlobalPlan]" = OrderedDict()
        #: query_key -> the (site, class) pairs its plans depend on.
        self._deps: dict[tuple, DepKey] = {}
        #: (site, class) -> full keys of the plans depending on it.
        self._by_model: dict[tuple[str, str], set[tuple]] = {}
        #: query_key -> why its plans last left the cache ("capacity" or
        #: "invalidated:<site>/<class>"), for miss provenance in traces.
        #: Bounded LRU; cleared again the next time the query is cached.
        self._evicted: "OrderedDict[tuple, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0
        self._registry = registry
        if registry is not None:
            registry.subscribe(self._on_registry_event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    # -- the serving API --------------------------------------------------

    def get(
        self,
        query: GlobalJoinQuery,
        resolve_state: Callable[[str, str], int | None],
    ) -> GlobalPlan | None:
        """The cached plan for *query* under the current states, or None.

        *resolve_state* maps ``(site, class_label)`` to the contention
        state the active model currently resolves to (None when the
        model is missing or un-resolvable — always a miss).  It runs
        outside the cache lock: resolving a state may execute a probing
        query through the probing service.
        """
        return self.lookup(query, resolve_state)[0]

    def lookup(
        self,
        query: GlobalJoinQuery,
        resolve_state: Callable[[str, str], int | None],
    ) -> tuple[GlobalPlan | None, str]:
        """:meth:`get` plus *why*: ``(plan, reason)``.

        Reasons: ``"hit"``; ``"cold"`` (query never planned here);
        ``"unresolved"`` (a dependency's contention state would not
        resolve); ``"model_missing"`` (a dependency's model is gone);
        ``"capacity"`` / ``"invalidated:<site>/<class>"`` (the entry was
        evicted and why); ``"state_changed"`` (cached, but under other
        contention states / model tags).  Trace spans record the reason
        as plan provenance; counters are identical to :meth:`get`.
        """
        qkey = query_key(query)
        with self._lock:
            deps = self._deps.get(qkey)
        if deps is None:
            return self._miss(), "cold"
        states: list[tuple] = []
        for site, label in deps:
            state = resolve_state(site, label)
            if state is None:
                return self._miss(), "unresolved"
            tag = self._tag_for(site, label)
            if tag is None:
                return self._miss(), "model_missing"
            states.append((site, label, state) + tag)
        full_key = (qkey, tuple(states))
        cause = None
        with self._lock:
            plan = self._plans.get(full_key)
            if plan is not None:
                self._plans.move_to_end(full_key)
                self.hits += 1
            else:
                cause = self._evicted.get(qkey)
        if plan is None:
            return self._miss(), (cause or "state_changed")
        obs.inc("serving.plan_cache.hits")
        return plan, "hit"

    def put(
        self,
        query: GlobalJoinQuery,
        candidates: Sequence[GlobalPlan],
        chosen: GlobalPlan,
    ) -> None:
        """Remember *chosen* for *query* under the states it was scored in.

        *candidates* should be every plan the optimizer enumerated (not
        just the winner): the dependency set is the union over all
        candidates, so a later lookup resolves the same states no matter
        which join site the cached decision happened to pick.
        """
        state_by_dep: dict[tuple[str, str], int] = {}
        for plan in candidates:
            for estimate in plan.estimates:
                if (
                    estimate.site is not None
                    and estimate.class_label is not None
                    and estimate.state is not None
                ):
                    state_by_dep[(estimate.site, estimate.class_label)] = estimate.state
        if not state_by_dep:
            return  # nothing model-backed to key on; not cacheable
        deps: DepKey = tuple(sorted(state_by_dep))
        states_list: list[tuple] = []
        for s, c in deps:
            tag = self._tag_for(s, c)
            if tag is None:
                return  # model vanished mid-flight; not cacheable
            states_list.append((s, c, state_by_dep[(s, c)]) + tag)
        states: StateKey = tuple(states_list)
        qkey = query_key(query)
        full_key = (qkey, states)
        with self._lock:
            self._deps[qkey] = deps
            self._evicted.pop(qkey, None)
            if full_key not in self._plans:
                while len(self._plans) >= self.capacity:
                    self._evict_oldest_locked()
            self._plans[full_key] = chosen
            self._plans.move_to_end(full_key)
            for dep in deps:
                self._by_model.setdefault(dep, set()).add(full_key)

    # -- invalidation -----------------------------------------------------

    def invalidate_model(self, site: str, class_label: str) -> int:
        """Evict exactly the entries depending on ``(site, class_label)``.

        Returns the number of plans evicted.  The query→dependency map is
        kept: which classes a query touches does not change with model
        versions, only the plans scored by them do.
        """
        with self._lock:
            keys = self._by_model.pop((site, class_label), set())
            cause = f"invalidated:{site}/{class_label}"
            for full_key in keys:
                self._remove_locked(full_key)
                self._record_eviction_locked(full_key[0], cause)
            count = len(keys)
            self.invalidated += count
        if count:
            obs.inc("serving.plan_cache.invalidated", count)
        return count

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._deps.clear()
            self._by_model.clear()
            self._evicted.clear()

    def close(self) -> None:
        """Detach from the registry's event stream."""
        if self._registry is not None:
            self._registry.unsubscribe(self._on_registry_event)
            self._registry = None

    # -- internals --------------------------------------------------------

    def _tag_for(self, site: str, class_label: str) -> tuple | None:
        """The (version, form) key component for one dependency.

        ``()`` when no tag resolver is configured (pure state keying);
        None when the resolver reports the model gone (uncacheable).
        """
        if self._model_tag is None:
            return ()
        return self._model_tag(site, class_label)

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1
        obs.inc("serving.plan_cache.misses")
        return None

    #: Eviction causes remembered for miss provenance (bounded LRU).
    EVICTION_CAUSES_KEPT = 512

    def _evict_oldest_locked(self) -> None:
        full_key, _ = self._plans.popitem(last=False)
        for dep in self._deps.get(full_key[0], ()):
            holders = self._by_model.get(dep)
            if holders is not None:
                holders.discard(full_key)
        self._record_eviction_locked(full_key[0], "capacity")
        self.evictions += 1
        obs.inc("serving.plan_cache.evictions")

    def _record_eviction_locked(self, qkey: tuple, cause: str) -> None:
        self._evicted[qkey] = cause
        self._evicted.move_to_end(qkey)
        while len(self._evicted) > self.EVICTION_CAUSES_KEPT:
            self._evicted.popitem(last=False)

    def _remove_locked(self, full_key: tuple) -> None:
        self._plans.pop(full_key, None)
        for dep in self._deps.get(full_key[0], ()):
            holders = self._by_model.get(dep)
            if holders is not None:
                holders.discard(full_key)

    def _on_registry_event(
        self, action: str, site: str, class_label: str, version: int
    ) -> None:
        self.invalidate_model(site, class_label)

    # -- inspection -------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def entries(self) -> Iterable[tuple]:
        """Current full keys, LRU-oldest first (testing/inspection)."""
        with self._lock:
            return list(self._plans)
