"""The concurrent serving front end: pool → admission → cache → server.

:class:`ServingFrontEnd` puts a worker pool in front of an
:class:`~repro.mdbs.server.MDBSServer` so thousands of in-flight
:class:`~repro.mdbs.gquery.GlobalJoinQuery` requests can be admitted
concurrently instead of the seed's one-synchronous-call-at-a-time
``server.execute``:

1. **admission** — a bounded queue plus an optional total-in-flight
   bound, with block (backpressure) or reject (load-shedding) policy and
   an optional queue-wait deadline (:mod:`.config`);
2. **plan cache** — repeated optimizations within the same contention
   states are served from :class:`~repro.serving.plan_cache.PlanCache`
   without re-running the optimizer; registry events (publish /
   activate / rollback) evict exactly the dependent entries;
3. **probe sharing** — state resolution and optimizer probing both go
   through the server's shared
   :class:`~repro.mdbs.probing_service.ProbingService`, whose per-site
   single-flight locks let concurrent requests within one TTL window
   share a single probing query per site;
4. **execution** — the server's per-site locks serialize engine access
   (the simulated clocks and temp tables are per-site state), so worker
   threads interleave safely.

Determinism guard: with ``workers=1`` and ``plan_cache=False`` a worker
calls ``server.execute(query)`` with no plan argument — the exact
synchronous path, byte-identical plan choices included
(tests/serving/test_frontend.py pins this).

Every stage is observable through the global metrics registry:
``serving.queue_depth`` / ``serving.in_flight`` gauges,
``serving.{submitted,admitted,rejected,completed,failed,timed_out}``
counters, ``serving.plan_cache.*`` counters, and
``serving.{wait,latency}_seconds`` histograms — all of which surface in
the existing Prometheus/JSON exposition (:mod:`repro.obs.expose`).

With a real tracer installed (``obs.enable`` / ``obs.set_tracer``),
every ticket additionally carries a **trace id** and a detached
``serving.request`` root span that survives the submit→worker thread
hop: ``serving.queue`` measures the time queued (in the tracer's own
clock), ``serving.plan`` / ``serving.execute`` anchor under the root on
whichever worker runs the request, and the nested ``mdbs.*`` spans
carry decision provenance — plan-cache hit/miss reason (eviction cause
included), active model ``version:form`` tags, estimate vs actual
seconds.  A deterministic :class:`~repro.obs.tracing.TraceSampler`
(``trace_sample_rate`` / ``trace_seed``) makes the head decision at
submission: unsampled requests run with all spans suppressed and record
nothing, so sampling saves recording cost rather than discarding
recorded spans.  Failed, timed-out, and rejected requests and requests
flagged by the accuracy tracker are always kept — fully when sampled;
as a 1-span root stub, materialized at finish, otherwise.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from .. import obs
from ..mdbs.gquery import GlobalJoinQuery
from ..mdbs.optimizer import GlobalPlan
from ..mdbs.registry import CostModelRegistryError
from ..mdbs.server import GlobalExecution, MDBSServer
from .config import ServingConfig
from .plan_cache import PlanCache

_SENTINEL = object()

#: Ticket lifecycle states.
TICKET_STATUSES = (
    "pending", "running", "completed", "rejected", "timed_out", "failed",
)


def _trace_query_label(query: GlobalJoinQuery) -> str:
    """A compact, deterministic query identity for span attributes."""
    return (
        f"{query.left_site}.{query.left_table}"
        f"*{query.right_site}.{query.right_table}"
    )


@dataclass
class ServingTicket:
    """One submitted request and (eventually) its outcome.

    Timestamps are real wall-clock (``time.monotonic``) seconds — the
    serving layer's latency is a genuine performance number, unlike the
    *simulated* seconds inside ``execution``.
    """

    query: GlobalJoinQuery
    index: int
    status: str = "pending"
    execution: GlobalExecution | None = None
    error: BaseException | None = None
    #: "cache" | "optimizer" | None (not executed).
    plan_source: str | None = None
    #: The request's trace id (None when tracing was off at submission).
    trace_id: str | None = None
    #: Head-sampling verdict made at submission: True = record the full
    #: span tree, False = record nothing while running (a 1-span root
    #: stub materializes at finish if the request fails or gets flagged).
    trace_sampled: bool = True
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    #: Detached spans opened at submission, closed wherever the request
    #: finishes (a pool worker, or the submitter on rejection).
    _root_span: obs.Span | None = field(default=None, repr=False)
    _queue_span: obs.Span | None = field(default=None, repr=False)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the request finishes (True) or *timeout* (False)."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def ok(self) -> bool:
        return self.status == "completed"

    @property
    def wait_seconds(self) -> float | None:
        """Real seconds spent queued before a worker picked it up."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def latency_seconds(self) -> float | None:
        """Real seconds from submission to completion (any outcome)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


@dataclass(frozen=True)
class ServingStats:
    """A consistent snapshot of one front end's lifetime counts."""

    submitted: int
    admitted: int
    rejected: int
    completed: int
    failed: int
    timed_out: int
    plan_cache_hits: int
    plan_cache_misses: int
    plan_cache_evictions: int
    plan_cache_invalidated: int

    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0

    @property
    def dropped(self) -> int:
        """Requests that never executed (rejected + timed out)."""
        return self.rejected + self.timed_out


class ServingFrontEnd:
    """Admits, schedules, and executes global queries over a worker pool."""

    def __init__(
        self,
        server: MDBSServer,
        config: ServingConfig | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        self.server = server
        self.config = config or ServingConfig()
        if plan_cache is not None:
            self.plan_cache: PlanCache | None = plan_cache
        elif self.config.plan_cache:
            # Keys carry the active (version, form) per dependency so a
            # racing strategy deployment never serves a plan scored by a
            # different model form (see PlanCache's model_tag doc).
            self.plan_cache = PlanCache(
                server.catalog.registry,
                capacity=self.config.plan_cache_capacity,
                model_tag=server.model_tag,
            )
        else:
            self.plan_cache = None
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.queue_depth)
        self._in_flight_slots = (
            threading.BoundedSemaphore(self.config.max_in_flight)
            if self.config.max_in_flight is not None
            else None
        )
        self._threads: list[threading.Thread] = []
        self._stats_lock = threading.Lock()
        self._counts = dict.fromkeys(
            ("submitted", "admitted", "rejected", "completed", "failed", "timed_out"),
            0,
        )
        self._executing = 0
        self._next_index = 0
        self._started = False
        self._closed = False
        #: Deterministic head sampler resolving keep/drop per finished
        #: trace; failures and flagged requests bypass it (always kept).
        self.sampler = obs.TraceSampler(
            rate=self.config.trace_sample_rate, seed=self.config.trace_seed
        )

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ServingFrontEnd":
        """Spawn the worker threads (idempotent)."""
        if self._closed:
            raise RuntimeError("front end already closed")
        if self._started:
            return self
        self._started = True
        for i in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serving-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        obs.set_gauge("serving.workers", self.config.workers)
        return self

    def close(self) -> None:
        """Drain the queue and stop the workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            for _ in self._threads:
                self._queue.put(_SENTINEL)
            for thread in self._threads:
                thread.join()
        if self.plan_cache is not None:
            self.plan_cache.close()

    def __enter__(self) -> "ServingFrontEnd":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission + admission -------------------------------------------

    def submit(self, query: GlobalJoinQuery) -> ServingTicket:
        """Admit *query* (or reject it, per policy); returns its ticket.

        With the ``"block"`` policy a full queue applies backpressure —
        this call waits for space and no request is ever dropped.  With
        ``"reject"`` a full bound finishes the ticket immediately with
        status ``"rejected"``.
        """
        if not self._started or self._closed:
            raise RuntimeError("front end is not running (use start() / `with`)")
        blocking = self.config.admission_policy == "block"
        ticket = ServingTicket(
            query=query, index=self._take_index(), submitted_at=time.monotonic()
        )
        self._count("submitted")
        obs.inc("serving.submitted")
        tracer = obs.get_tracer()
        if tracer.enabled:
            # The root span is detached: entered here on the submitter's
            # thread, exited on whichever pool worker finishes the
            # request — the trace survives the thread hop by explicit
            # parent context, not by thread-stack inheritance.
            ticket.trace_id = f"{self.config.trace_id_prefix}q{ticket.index:06d}"
            # The head decision happens here, not at completion: an
            # unsampled request records nothing at all while it runs
            # (children suppressed, root materialized lazily at finish
            # only if the request must be force-kept), so sampling saves
            # the recording cost instead of discarding spans already
            # paid for (BENCH_trace_overhead's <5% sampled-vs-off guard
            # depends on this).
            ticket.trace_sampled = self.sampler.keep(ticket.trace_id)
            if ticket.trace_sampled:
                root = tracer.span(
                    "serving.request",
                    trace_id=ticket.trace_id,
                    detached=True,
                    index=ticket.index,
                    query=_trace_query_label(query),
                    admission_policy=self.config.admission_policy,
                )
                root.__enter__()
                ticket._root_span = root
                queue_span = tracer.span(
                    "serving.queue", parent=root.context, detached=True
                )
                queue_span.__enter__()
                ticket._queue_span = queue_span
        if self._in_flight_slots is not None:
            if not self._in_flight_slots.acquire(blocking=blocking):
                return self._reject(ticket)
        try:
            if blocking:
                self._queue.put(ticket)
            else:
                self._queue.put_nowait(ticket)
        except queue.Full:
            if self._in_flight_slots is not None:
                self._in_flight_slots.release()
            return self._reject(ticket)
        self._count("admitted")
        obs.inc("serving.admitted")
        obs.set_gauge("serving.queue_depth", self._queue.qsize())
        return ticket

    def serve(
        self, queries: list[GlobalJoinQuery], timeout: float | None = None
    ) -> list[ServingTicket]:
        """Submit every query and wait for all tickets to finish."""
        tickets = [self.submit(q) for q in queries]
        deadline = None if timeout is None else time.monotonic() + timeout
        for ticket in tickets:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            ticket.wait(remaining)
        return tickets

    def warm(self, queries: list[GlobalJoinQuery]) -> int:
        """Prime the plan cache: optimize each query once, synchronously.

        Returns the number of queries optimized (0 when the cache is
        off).  Benches warm deterministically before a concurrent flood
        so cache-hit and join-site counts don't depend on which workers
        win the cold-start optimization races.
        """
        if self.plan_cache is None:
            return 0
        for query in queries:
            self._plan_for(query)
        return len(queries)

    def _reject(self, ticket: ServingTicket) -> ServingTicket:
        ticket.status = "rejected"
        ticket.finished_at = time.monotonic()
        self._count("rejected")
        obs.inc("serving.rejected")
        self._finish_trace(ticket, force=True)
        ticket._done.set()
        return ticket

    def _finish_trace(self, ticket: ServingTicket, force: bool = False) -> None:
        """Close the ticket's detached spans and resolve keep-or-drop."""
        if ticket.trace_id is None:
            return
        root = ticket._root_span
        if root is not None:
            queue_span = ticket._queue_span
            if queue_span is not None and queue_span.end is None:
                queue_span.__exit__(None, None, None)
            ticket._queue_span = None
            root.set_attribute("status", ticket.status)
            root.__exit__(None, None, None)
            ticket._root_span = None
            tracer = root._tracer or obs.get_tracer()
        else:
            tracer = obs.get_tracer()
            if force and tracer.enabled:
                # An unsampled request that must be kept (failed, timed
                # out, rejected, or flagged by the accuracy tracker)
                # materializes its 1-span stub only now — the unsampled
                # common path records nothing.
                with tracer.span(
                    "serving.request",
                    trace_id=ticket.trace_id,
                    detached=True,
                    index=ticket.index,
                    query=_trace_query_label(ticket.query),
                    admission_policy=self.config.admission_policy,
                    status=ticket.status,
                ):
                    pass
        self.sampler.resolve(tracer, ticket.trace_id, force=force)

    # -- the worker side ---------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            obs.set_gauge("serving.queue_depth", self._queue.qsize())
            try:
                self._process(item)
            finally:
                if self._in_flight_slots is not None:
                    self._in_flight_slots.release()

    def _process(self, ticket: ServingTicket) -> None:
        now = time.monotonic()
        deadline = self.config.deadline_seconds
        if deadline is not None and now - ticket.submitted_at > deadline:
            ticket.status = "timed_out"
            ticket.finished_at = now
            self._count("timed_out")
            obs.inc("serving.timed_out")
            self._finish_trace(ticket, force=True)
            ticket._done.set()
            return
        ticket.started_at = now
        ticket.status = "running"
        root = ticket._root_span
        queue_span = ticket._queue_span
        if queue_span is not None:
            # Queue wait in the *tracer's* clock: real seconds under
            # perf_counter, 0.0 under a simulated clock — which is what
            # keeps merged loadgen traces byte-identical across runs.
            queue_span.__exit__(None, None, None)
            ticket._queue_span = None
        parent = root.context if root is not None else None
        # Plain begin/end suppression (not a context manager): this is
        # the per-request fast path the sampled-overhead guard budgets.
        suppress_tracer = (
            obs.get_tracer()
            if ticket.trace_id is not None and not ticket.trace_sampled
            else None
        )
        with self._stats_lock:
            self._executing += 1
            obs.set_gauge("serving.in_flight", self._executing)
        try:
            token = (
                suppress_tracer.suppress_begin(ticket.trace_id)
                if suppress_tracer is not None
                else None
            )
            try:
                with obs.span("serving.plan", parent=parent) as plan_span:
                    plan, source = self._plan_for(ticket.query, span=plan_span)
                with obs.span("serving.execute", parent=parent) as exec_span:
                    execution = self.server.execute(ticket.query, plan)
                    if exec_span.recording:
                        exec_span.set_attributes(
                            estimated_seconds=execution.estimated_seconds,
                            observed_seconds=execution.observed_seconds,
                            models=self._model_attr(execution.plan),
                        )
            finally:
                if suppress_tracer is not None:
                    suppress_tracer.suppress_end(token)
            ticket.execution = execution
            ticket.plan_source = source
            ticket.status = "completed"
            self._count("completed")
            obs.inc("serving.completed")
        except Exception as exc:  # a failed request must not kill its worker
            ticket.error = exc
            ticket.status = "failed"
            if root is not None:
                root.set_attribute("error", type(exc).__name__)
            self._count("failed")
            obs.inc("serving.failed")
        finally:
            with self._stats_lock:
                self._executing -= 1
                obs.set_gauge("serving.in_flight", self._executing)
            ticket.finished_at = time.monotonic()
            obs.observe("serving.wait_seconds", ticket.wait_seconds or 0.0)
            obs.observe(
                "serving.latency_seconds",
                ticket.latency_seconds or 0.0,
                exemplar=ticket.trace_id,
            )
            force = ticket.status in ("failed", "timed_out") or (
                ticket.trace_id is not None
                and self.server.accuracy.is_flagged(ticket.trace_id)
            )
            self._finish_trace(ticket, force=force)
            ticket._done.set()

    # -- planning ----------------------------------------------------------

    def _plan_for(
        self, query: GlobalJoinQuery, span: "obs.Span | None" = None
    ) -> tuple[GlobalPlan | None, str]:
        """(plan, source) — None defers to ``server.execute``'s own
        optimize call, keeping the cache-off path byte-identical to the
        synchronous server.  *span* (the enclosing ``serving.plan``
        span, when recording) receives the decision provenance: cache
        hit or the concrete miss reason, the chosen join site, the
        estimate, and the model version/form tags behind it."""
        span = span if span is not None else obs.NOOP_SPAN
        if self.plan_cache is None:
            return None, "optimizer"
        cached, reason = self.plan_cache.lookup(query, self._resolve_state)
        if cached is not None:
            if span.recording:
                span.set_attributes(
                    source="cache",
                    cache="hit",
                    join_site=cached.join_site,
                    estimated_seconds=cached.estimated_seconds,
                    models=self._model_attr(cached),
                )
            return cached, "cache"
        with obs.span("mdbs.optimize") as opt_span:
            candidates = self.server.optimizer().plans(query)
            chosen = min(candidates, key=lambda p: p.estimated_seconds)
            if opt_span.recording:
                opt_span.set_attribute("candidates", len(candidates))
        self.plan_cache.put(query, candidates, chosen)
        if span.recording:
            span.set_attributes(
                source="optimizer",
                cache=reason,
                join_site=chosen.join_site,
                estimated_seconds=chosen.estimated_seconds,
                models=self._model_attr(chosen),
            )
        return chosen, "optimizer"

    def _model_attr(self, plan: GlobalPlan | None) -> str:
        """The plan's model dependencies as ``site/class=vN:form`` tags."""
        if plan is None:
            return ""
        tags: list[str] = []
        seen: set[tuple[str, str]] = set()
        for estimate in plan.estimates:
            if estimate.site is None or estimate.class_label is None:
                continue
            key = (estimate.site, estimate.class_label)
            if key in seen:
                continue
            seen.add(key)
            tag = self.server.model_tag(estimate.site, estimate.class_label)
            if tag is not None:
                version, form = tag[0], tag[1]
                tags.append(f"{key[0]}/{key[1]}=v{version}:{form}")
        return ",".join(sorted(tags))

    def _resolve_state(self, site: str, class_label: str) -> int | None:
        """The contention state the active model resolves to right now.

        Mirrors the optimizer's ``_resolve``: probing cost through the
        shared service (cached within its TTL, single-flighted across
        requests), middle state when probing degraded to ``None``.
        """
        try:
            model = self.server.catalog.registry.active_model(site, class_label)
        except CostModelRegistryError:
            return None
        cost = self.server.probing.probing_cost(site)
        if cost is None:
            return model.num_states // 2
        return model.state_for(cost)

    # -- stats -------------------------------------------------------------

    def stats(self) -> ServingStats:
        cache = self.plan_cache
        with self._stats_lock:
            counts = dict(self._counts)
        return ServingStats(
            submitted=counts["submitted"],
            admitted=counts["admitted"],
            rejected=counts["rejected"],
            completed=counts["completed"],
            failed=counts["failed"],
            timed_out=counts["timed_out"],
            plan_cache_hits=cache.hits if cache else 0,
            plan_cache_misses=cache.misses if cache else 0,
            plan_cache_evictions=cache.evictions if cache else 0,
            plan_cache_invalidated=cache.invalidated if cache else 0,
        )

    def _count(self, name: str) -> None:
        with self._stats_lock:
            self._counts[name] += 1

    def _take_index(self) -> int:
        with self._stats_lock:
            index = self._next_index
            self._next_index += 1
        return index
