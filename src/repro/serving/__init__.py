"""repro.serving — the concurrent serving front end of the MDBS.

Puts a worker pool, admission control, a model-version-aware plan
cache, and cross-request probe sharing in front of the synchronous
:class:`~repro.mdbs.server.MDBSServer`:

    requests → admission (bounded queue, block/reject, deadlines)
             → worker pool
             → plan cache (keyed on query + contention states,
                           invalidated on registry events)
             → global optimizer (shared, TTL-cached, single-flight
                                 probing through the ProbingService)
             → per-site-locked execution on the MDBS server

See DESIGN.md ("Serving") for the architecture diagram and
``benchmarks/test_bench_serving_throughput.py`` for the recorded
QPS / latency baseline (``BENCH_serving_throughput.json``).
"""

from .config import ADMISSION_POLICIES, ServingConfig
from .frontend import ServingFrontEnd, ServingStats, ServingTicket, TICKET_STATUSES
from .plan_cache import PlanCache, query_key

__all__ = [
    "ADMISSION_POLICIES",
    "PlanCache",
    "ServingConfig",
    "ServingFrontEnd",
    "ServingStats",
    "ServingTicket",
    "TICKET_STATUSES",
    "query_key",
]
