"""Serving-front-end configuration: pool size, admission, caching.

One frozen dataclass carries every serving knob so experiment code can
sweep configurations declaratively (the throughput bench builds its
concurrency ladder from ``replace(config, workers=n)``).

Admission control is two bounds and a policy:

* ``queue_depth`` — how many admitted requests may *wait* for a worker;
* ``max_in_flight`` — total admitted-but-unfinished requests (waiting
  plus executing); ``None`` leaves only the queue bound;
* ``admission_policy`` — what happens at a full bound: ``"block"``
  applies backpressure to the submitter (no request is ever dropped),
  ``"reject"`` fails the request immediately with a ``rejected`` ticket
  (load-shedding; the caller sees the drop and can retry).

``deadline_seconds`` bounds how long a request may *wait in the queue*
(real wall-clock time): a worker that dequeues an expired request marks
it ``timed_out`` without executing it, so a backed-up pool sheds stale
work instead of serving answers nobody is waiting for anymore.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Valid ``admission_policy`` values.
ADMISSION_POLICIES = ("block", "reject")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one :class:`~repro.serving.frontend.ServingFrontEnd`."""

    #: Worker threads executing admitted requests.
    workers: int = 4
    #: Admitted requests allowed to wait for a worker.
    queue_depth: int = 128
    #: Total admitted-but-unfinished requests; None = queue bound only.
    max_in_flight: int | None = None
    #: "block" (backpressure) or "reject" (shed load at the bound).
    admission_policy: str = "block"
    #: Max real seconds a request may wait queued before it is dropped
    #: as ``timed_out``; None disables deadlines (and keeps the serving
    #: path free of wall-clock reads, which determinism tests rely on).
    deadline_seconds: float | None = None
    #: Serve repeated optimizations from the plan cache.
    plan_cache: bool = True
    #: Cached plans kept before LRU eviction.
    plan_cache_capacity: int = 1024
    #: Fraction of traces kept by deterministic head sampling (hash of
    #: the trace id); failed/timed-out/rejected requests and worst-band
    #: accuracy exemplars are always kept regardless.  Only consulted
    #: when a real tracer is installed (``obs.enable``/``set_tracer``).
    trace_sample_rate: float = 1.0
    #: Seed salting the trace-id hash, so reruns keep the same set.
    trace_seed: int = 0
    #: Prefix for generated trace ids (loadgen shards use ``s{index}-``
    #: so coordinator-merged traces stay globally unique).
    trace_id_prefix: str = ""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 (or None)")
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission_policy must be one of {ADMISSION_POLICIES}, "
                f"not {self.admission_policy!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive (or None)")
        if self.plan_cache_capacity < 1:
            raise ValueError("plan_cache_capacity must be >= 1")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be within [0, 1]")
