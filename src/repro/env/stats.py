"""Unix-style system statistics derived from the contention level.

Paper Table 1 enumerates the frequently-changing statistics an operating
system exposes (``top``, ``vmstat``, ``sar``, ...).  The simulator
produces a :class:`SystemStatistics` snapshot with those fields, each a
noisy monotone function of the underlying contention level.  Two parts of
the reproduction consume these snapshots:

* the *environment monitor* of the MDBS agent, and
* the probing-cost **estimation** variant of §3.3, which regresses the
  probing query's cost on "major system contention parameters (such as
  CPU load, I/O utilization, and size of used memory space)" — i.e. on
  fields of this snapshot — so the state can be determined without
  actually executing the probe.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from .contention import level_to_processes


@dataclass(frozen=True)
class SystemStatistics:
    """One snapshot of the Table-1 statistics (simulated)."""

    # -- CPU statistics -------------------------------------------------
    running_processes: int
    sleeping_processes: int
    stopped_processes: int
    zombie_processes: int
    pct_user_time: float
    pct_system_time: float
    pct_idle_time: float
    load_avg_1: float
    load_avg_5: float
    load_avg_15: float
    # -- memory statistics ----------------------------------------------
    available_memory_mb: float
    used_memory_mb: float
    shared_memory_mb: float
    buffer_memory_mb: float
    available_swap_mb: float
    used_swap_mb: float
    free_swap_mb: float
    cached_swap_mb: float
    swapped_in_mb: float
    swapped_out_mb: float
    # -- I/O statistics ----------------------------------------------------
    reads_per_sec: float
    writes_per_sec: float
    pct_disk_utilization: float
    # -- other statistics ---------------------------------------------------
    current_users: int
    interrupts_per_sec: float
    context_switches_per_sec: float
    system_calls_per_sec: float

    def as_vector(self, names: tuple[str, ...]) -> np.ndarray:
        """Extract the named fields as a float vector (for regression)."""
        return np.array([float(getattr(self, n)) for n in names])

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in fields(cls))


#: The "major system contention parameters" used by default when
#: estimating probing costs (paper eq. (2) names CPU load, I/O
#: utilization, and used memory).
MAJOR_CONTENTION_PARAMETERS = (
    "load_avg_1",
    "pct_disk_utilization",
    "used_memory_mb",
)


@dataclass(frozen=True)
class MachineSpec:
    """Static capacity of the simulated local host (a steady factor)."""

    total_memory_mb: float = 1024.0
    total_swap_mb: float = 2048.0
    base_sleeping_processes: int = 40
    cpu_count: int = 2


class StatisticsModel:
    """Generates :class:`SystemStatistics` snapshots from a contention level.

    Every statistic is a deterministic monotone function of the level plus
    bounded multiplicative noise, so the snapshot genuinely *carries* the
    contention signal (which is what makes eq. (2)'s estimation work) while
    individual readings still jitter (which is what makes it imperfect).
    """

    def __init__(
        self,
        machine: MachineSpec | None = None,
        noise: float = 0.05,
        seed: int = 0,
    ) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.machine = machine or MachineSpec()
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def _jitter(self) -> float:
        if self.noise == 0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, self.noise)))

    def snapshot(self, level: float) -> SystemStatistics:
        """Produce one snapshot at contention *level* in [0, 1]."""
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be in [0, 1]")
        m = self.machine
        procs = level_to_processes(level)
        running = max(1, int(round(procs * (0.2 + 0.5 * level) * self._jitter())))
        busy = min(99.0, (8.0 + 88.0 * level) * self._jitter())
        pct_user = busy * 0.7
        pct_system = busy * 0.3
        used_mem = min(
            m.total_memory_mb * 0.98,
            m.total_memory_mb * (0.25 + 0.70 * level) * self._jitter(),
        )
        used_swap = min(
            m.total_swap_mb * 0.9,
            m.total_swap_mb * 0.45 * max(0.0, level - 0.5) * self._jitter(),
        )
        load1 = m.cpu_count * (0.3 + 5.0 * level) * self._jitter()
        return SystemStatistics(
            running_processes=running,
            sleeping_processes=m.base_sleeping_processes + procs - running,
            stopped_processes=int(2 * level * self._jitter()),
            zombie_processes=int(1 * level * self._jitter()),
            pct_user_time=pct_user,
            pct_system_time=pct_system,
            pct_idle_time=max(0.0, 100.0 - pct_user - pct_system),
            load_avg_1=load1,
            load_avg_5=load1 * 0.9,
            load_avg_15=load1 * 0.8,
            available_memory_mb=m.total_memory_mb - used_mem,
            used_memory_mb=used_mem,
            shared_memory_mb=used_mem * 0.15,
            buffer_memory_mb=used_mem * 0.25,
            available_swap_mb=m.total_swap_mb - used_swap,
            used_swap_mb=used_swap,
            free_swap_mb=m.total_swap_mb - used_swap,
            cached_swap_mb=used_swap * 0.3,
            swapped_in_mb=used_swap * 0.05 * self._jitter(),
            swapped_out_mb=used_swap * 0.04 * self._jitter(),
            reads_per_sec=(5.0 + 220.0 * level) * self._jitter(),
            writes_per_sec=(2.0 + 120.0 * level) * self._jitter(),
            pct_disk_utilization=min(100.0, (4.0 + 92.0 * level) * self._jitter()),
            current_users=1 + int(round(9 * level * self._jitter())),
            interrupts_per_sec=(120.0 + 2400.0 * level) * self._jitter(),
            context_switches_per_sec=(180.0 + 5200.0 * level) * self._jitter(),
            system_calls_per_sec=(400.0 + 9000.0 * level) * self._jitter(),
        )
