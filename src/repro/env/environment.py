"""The simulated local-site environment: clock + contention + statistics.

An :class:`Environment` is what a :class:`~repro.engine.database.LocalDatabase`
runs "inside": it supplies the contention level (and hence the query
slowdown multiplier) at the current simulated time, advances time as
queries execute, and produces system-statistics snapshots for the
environment monitor.
"""

from __future__ import annotations

from .clock import SimulationClock
from .contention import (
    ClusteredContention,
    ConstantContention,
    ContentionTrace,
    SlowdownModel,
    UniformContention,
    level_to_processes,
)
from .stats import StatisticsModel, SystemStatistics


class Environment:
    """A local site's dynamic execution environment."""

    def __init__(
        self,
        trace: ContentionTrace | None = None,
        slowdown_model: SlowdownModel | None = None,
        stats_model: StatisticsModel | None = None,
        clock: SimulationClock | None = None,
    ) -> None:
        self.trace: ContentionTrace = trace or ConstantContention(0.0)
        self.slowdown_model = slowdown_model or SlowdownModel()
        self.stats_model = stats_model or StatisticsModel()
        self.clock = clock or SimulationClock()

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    def advance(self, seconds: float) -> None:
        """Advance simulated time (queries call this with their elapsed time)."""
        self.clock.advance(seconds)

    # -- contention ----------------------------------------------------------

    def level(self) -> float:
        """Contention level in [0, 1] right now."""
        return self.trace.level_at(self.clock.now)

    def slowdown(self) -> float:
        """Query slowdown multiplier right now (>= 1)."""
        return self.slowdown_model.slowdown(self.level())

    def concurrent_processes(self) -> int:
        """The paper's Figure-1 x-axis: simulated concurrent process count."""
        return level_to_processes(self.level())

    # -- observation ------------------------------------------------------------

    def snapshot(self) -> SystemStatistics:
        """A Table-1 system-statistics snapshot at the current level."""
        return self.stats_model.snapshot(self.level())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Environment(t={self.now:.1f}s, level={self.level():.3f}, "
            f"slowdown={self.slowdown():.2f}x)"
        )


def static_environment() -> Environment:
    """An idle, unchanging site — the baseline method's assumption."""
    return Environment(trace=ConstantContention(0.0))


def dynamic_uniform_environment(seed: int = 0, epoch_seconds: float = 30.0) -> Environment:
    """Uniformly distributed contention — §5's main experimental setting."""
    return Environment(
        trace=UniformContention(seed=seed, epoch_seconds=epoch_seconds),
        stats_model=StatisticsModel(seed=seed + 1),
    )


def dynamic_clustered_environment(seed: int = 0, epoch_seconds: float = 30.0) -> Environment:
    """Clustered contention — the Table 6 / Figure 10 setting."""
    return Environment(
        trace=ClusteredContention(seed=seed, epoch_seconds=epoch_seconds),
        stats_model=StatisticsModel(seed=seed + 1),
    )
