"""Dynamic local-site environment simulator.

Stands in for the paper's SUN UltraSparc 2 / Solaris testbed: a simulated
clock, contention-level traces (constant, uniform, random-walk,
clustered), a slowdown model mapping contention to query stretch, and
Unix-Table-1-style system statistics for the environment monitor.
"""

from .clock import SimulationClock
from .contention import (
    ClusteredContention,
    ConstantContention,
    ContentionCluster,
    ContentionTrace,
    DEFAULT_CLUSTERS,
    RandomWalkContention,
    SlowdownModel,
    UniformContention,
    level_to_processes,
    processes_to_level,
)
from .environment import (
    Environment,
    dynamic_clustered_environment,
    dynamic_uniform_environment,
    static_environment,
)
from .loadbuilder import LoadBuilder
from .monitor import EnvironmentMonitor
from .processes import ProcessTable, SimProcess
from .stats import (
    MAJOR_CONTENTION_PARAMETERS,
    MachineSpec,
    StatisticsModel,
    SystemStatistics,
)

__all__ = [
    "ClusteredContention",
    "ConstantContention",
    "ContentionCluster",
    "ContentionTrace",
    "DEFAULT_CLUSTERS",
    "Environment",
    "EnvironmentMonitor",
    "LoadBuilder",
    "MAJOR_CONTENTION_PARAMETERS",
    "MachineSpec",
    "ProcessTable",
    "RandomWalkContention",
    "SimProcess",
    "SimulationClock",
    "SlowdownModel",
    "StatisticsModel",
    "SystemStatistics",
    "UniformContention",
    "dynamic_clustered_environment",
    "dynamic_uniform_environment",
    "level_to_processes",
    "processes_to_level",
    "static_environment",
]
