"""The load builder: installs dynamic loads into a local environment.

Paper §4.1 / §5: "A load builder, which is part of the MDBS agent for
each local DBS, is used to simulate a dynamic application environment at
a local site during the query sampling procedure."  This class is that
component — it swaps contention traces in and out of an
:class:`~repro.env.environment.Environment`.
"""

from __future__ import annotations

from typing import Sequence

from .contention import (
    ClusteredContention,
    ConstantContention,
    ContentionCluster,
    DEFAULT_CLUSTERS,
    RandomWalkContention,
    UniformContention,
)
from .environment import Environment


class LoadBuilder:
    """Controls the simulated load at one local site."""

    def __init__(self, environment: Environment, seed: int = 0) -> None:
        self.environment = environment
        self.seed = seed

    def idle(self) -> Environment:
        """Remove all load (static environment)."""
        return self.constant(0.0)

    def constant(self, level: float) -> Environment:
        """Hold the contention level fixed at *level*."""
        self.environment.trace = ConstantContention(level)
        return self.environment

    def uniform(
        self, low: float = 0.0, high: float = 1.0, epoch_seconds: float = 30.0
    ) -> Environment:
        """Uniformly distributed load over [low, high]."""
        self.environment.trace = UniformContention(
            seed=self.seed, epoch_seconds=epoch_seconds, low=low, high=high
        )
        return self.environment

    def random_walk(
        self, step: float = 0.08, start: float = 0.5, epoch_seconds: float = 30.0
    ) -> Environment:
        """Smoothly drifting load."""
        self.environment.trace = RandomWalkContention(
            seed=self.seed, epoch_seconds=epoch_seconds, step=step, start=start
        )
        return self.environment

    def clustered(
        self,
        clusters: Sequence[ContentionCluster] = DEFAULT_CLUSTERS,
        epoch_seconds: float = 30.0,
    ) -> Environment:
        """Load concentrated in a few contention subranges."""
        self.environment.trace = ClusteredContention(
            seed=self.seed, epoch_seconds=epoch_seconds, clusters=clusters
        )
        return self.environment
