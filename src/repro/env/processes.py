"""A simulated process table: the host behind the Table-1 statistics.

Paper Table 1's first block counts running/sleeping/stopped/zombie
processes — the raw material `top` displays.  This module simulates the
process population itself: a deterministic (per seed and level) set of
:class:`SimProcess` entries whose counts, CPU shares, and memory sum to
figures consistent with :mod:`repro.env.stats`.  Useful for examples
("show me top on the loaded site"), for tests that want per-process
detail, and as documentation of where the aggregate statistics come from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .contention import level_to_processes
from .stats import MachineSpec

#: Process states, `top`-style.
RUNNING = "R"
SLEEPING = "S"
STOPPED = "T"
ZOMBIE = "Z"

#: Name pool for simulated workload processes.
_NAMES = (
    "oracle",
    "db2sysc",
    "httpd",
    "java",
    "cc1",
    "make",
    "perl",
    "sendmail",
    "nfsd",
    "syslogd",
    "cron",
    "sh",
)


@dataclass(frozen=True)
class SimProcess:
    """One simulated process."""

    pid: int
    name: str
    state: str
    cpu_pct: float
    memory_mb: float

    def __post_init__(self) -> None:
        if self.state not in (RUNNING, SLEEPING, STOPPED, ZOMBIE):
            raise ValueError(f"unknown process state {self.state!r}")
        if self.cpu_pct < 0 or self.memory_mb < 0:
            raise ValueError("cpu_pct and memory_mb must be non-negative")


class ProcessTable:
    """Generates `top`-style process listings for a contention level."""

    def __init__(self, machine: MachineSpec | None = None, seed: int = 0) -> None:
        self.machine = machine or MachineSpec()
        self.seed = seed

    def snapshot(self, level: float, at_time: float = 0.0) -> list[SimProcess]:
        """The process population at contention *level*.

        Deterministic given (seed, level bucket, time epoch): repeated
        calls in the same conditions show the same processes, like
        refreshing `top` quickly.
        """
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be in [0, 1]")
        epoch = int(at_time // 30.0)
        rng = np.random.default_rng(
            (self.seed, int(level * 1000), epoch)
        )
        total = self.machine.base_sleeping_processes + level_to_processes(level)
        n_running = max(1, int(round(level_to_processes(level) * (0.2 + 0.5 * level))))
        n_stopped = int(round(2 * level))
        n_zombie = int(round(1 * level))
        n_sleeping = max(0, total - n_running - n_stopped - n_zombie)

        busy_pct = min(99.0, 8.0 + 88.0 * level)
        cpu_shares = rng.dirichlet(np.ones(n_running)) * busy_pct
        used_mem = self.machine.total_memory_mb * (0.25 + 0.70 * level)
        mem_shares = rng.dirichlet(np.ones(total)) * used_mem

        processes: list[SimProcess] = []
        pid = 100
        running_idx = 0
        mem_idx = 0
        for state, count in (
            (RUNNING, n_running),
            (SLEEPING, n_sleeping),
            (STOPPED, n_stopped),
            (ZOMBIE, n_zombie),
        ):
            for _ in range(count):
                cpu = 0.0
                if state == RUNNING:
                    cpu = float(cpu_shares[running_idx])
                    running_idx += 1
                processes.append(
                    SimProcess(
                        pid=pid,
                        name=str(_NAMES[int(rng.integers(0, len(_NAMES)))]),
                        state=state,
                        cpu_pct=cpu,
                        memory_mb=float(mem_shares[min(mem_idx, total - 1)]),
                    )
                )
                pid += int(rng.integers(1, 40))
                mem_idx += 1
        return processes

    def counts(self, level: float, at_time: float = 0.0) -> dict[str, int]:
        """Process counts per state (Table 1's first four statistics)."""
        out = {RUNNING: 0, SLEEPING: 0, STOPPED: 0, ZOMBIE: 0}
        for process in self.snapshot(level, at_time):
            out[process.state] += 1
        return out

    def top(self, level: float, n: int = 10, at_time: float = 0.0) -> str:
        """A `top`-style rendering of the busiest *n* processes."""
        processes = sorted(
            self.snapshot(level, at_time),
            key=lambda p: (p.cpu_pct, p.memory_mb),
            reverse=True,
        )[:n]
        counts = self.counts(level, at_time)
        lines = [
            f"processes: {sum(counts.values())} total, {counts[RUNNING]} running, "
            f"{counts[SLEEPING]} sleeping, {counts[STOPPED]} stopped, "
            f"{counts[ZOMBIE]} zombie",
            f"{'PID':>6} {'NAME':<10} {'S':>1} {'%CPU':>6} {'MEM(MB)':>8}",
        ]
        for p in processes:
            lines.append(
                f"{p.pid:>6} {p.name:<10} {p.state:>1} {p.cpu_pct:>6.1f} "
                f"{p.memory_mb:>8.1f}"
            )
        return "\n".join(lines)
