"""The environment monitor of the MDBS agent.

Paper §4.1: "The MDBS agent may also have an environment monitor which
collects system statistics used for estimating the probing query costs
when the estimation approach in Section 3.3 is employed."

The monitor samples :class:`~repro.env.stats.SystemStatistics` snapshots
from its environment, optionally spacing observations in simulated time.
"""

from __future__ import annotations

from .environment import Environment
from .processes import ProcessTable, SimProcess
from .stats import SystemStatistics


class EnvironmentMonitor:
    """Collects system-statistics snapshots from a local environment."""

    def __init__(self, environment: Environment, seed: int = 0) -> None:
        self.environment = environment
        self._processes = ProcessTable(
            machine=environment.stats_model.machine, seed=seed
        )

    def statistics(self) -> SystemStatistics:
        """One snapshot at the current simulated time."""
        return self.environment.snapshot()

    def process_table(self) -> list[SimProcess]:
        """The simulated process population right now (`ps`-style)."""
        return self._processes.snapshot(
            self.environment.level(), at_time=self.environment.now
        )

    def top(self, n: int = 10) -> str:
        """A `top`-style rendering of the busiest processes right now."""
        return self._processes.top(
            self.environment.level(), n=n, at_time=self.environment.now
        )

    def observe(self, count: int, interval_seconds: float = 5.0) -> list[SystemStatistics]:
        """Collect *count* snapshots, advancing time between them.

        Advancing the clock means successive observations can land in
        different contention epochs — the monitor sees the environment
        change, just as a daemon polling ``vmstat`` would.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if interval_seconds < 0:
            raise ValueError("interval_seconds must be non-negative")
        snapshots = []
        for i in range(count):
            snapshots.append(self.environment.snapshot())
            if i != count - 1:
                self.environment.advance(interval_seconds)
        return snapshots
