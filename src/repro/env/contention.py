"""Contention-level traces: how loaded the local site is over time.

The paper reduces "numerous dynamic factors" (CPU load, I/O rate, memory
pressure, concurrent processes, ...) to their *combined net effect* — the
system contention level.  We simulate that level directly as a stochastic
process over simulated time, normalized to [0, 1]:

* 0.0 — idle system (the static environment of the baseline method);
* 1.0 — the most loaded the site ever gets.

Several trace families reproduce the paper's scenarios: a constant level
(static environment), piecewise-constant uniform draws (the "uniform"
dynamic case of §5), a bounded random walk (smooth drift), and a mixture
of clusters (the "clustered" case of Table 6 / Figure 10).

Traces are deterministic functions of (seed, time): the level during
epoch ``k`` (of configurable length) is drawn lazily in epoch order from
a seeded generator, so re-running an experiment replays the same load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


class ContentionTrace:
    """Abstract contention-level process."""

    def level_at(self, t: float) -> float:
        """Contention level in [0, 1] at simulated time *t*."""
        raise NotImplementedError


class ConstantContention(ContentionTrace):
    """A fixed contention level — models the static environment."""

    def __init__(self, level: float = 0.0) -> None:
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be in [0, 1]")
        self.level = level

    def level_at(self, t: float) -> float:
        return self.level


class _EpochTrace(ContentionTrace):
    """Base for piecewise-constant traces that draw one level per epoch."""

    def __init__(self, seed: int, epoch_seconds: float) -> None:
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        self.epoch_seconds = float(epoch_seconds)
        self._rng = np.random.default_rng(seed)
        self._levels: list[float] = []

    def level_at(self, t: float) -> float:
        if t < 0:
            raise ValueError("time must be non-negative")
        epoch = int(t // self.epoch_seconds)
        while len(self._levels) <= epoch:
            self._levels.append(self._draw(len(self._levels)))
        return self._levels[epoch]

    def _draw(self, epoch: int) -> float:
        raise NotImplementedError


class UniformContention(_EpochTrace):
    """Each epoch's level is an independent Uniform(low, high) draw.

    This gives every contention level "an equal chance to be chosen for
    running a given sample query" (§3.3), the assumption behind the
    IUPMA algorithm's uniform partition.
    """

    def __init__(
        self,
        seed: int = 0,
        epoch_seconds: float = 30.0,
        low: float = 0.0,
        high: float = 1.0,
    ) -> None:
        super().__init__(seed, epoch_seconds)
        if not 0.0 <= low < high <= 1.0:
            raise ValueError("need 0 <= low < high <= 1")
        self.low = low
        self.high = high

    def _draw(self, epoch: int) -> float:
        return float(self._rng.uniform(self.low, self.high))


class RandomWalkContention(_EpochTrace):
    """A bounded random walk: smooth load drift, reflecting at [0, 1]."""

    def __init__(
        self,
        seed: int = 0,
        epoch_seconds: float = 30.0,
        step: float = 0.08,
        start: float = 0.5,
    ) -> None:
        super().__init__(seed, epoch_seconds)
        if step <= 0:
            raise ValueError("step must be positive")
        if not 0.0 <= start <= 1.0:
            raise ValueError("start must be in [0, 1]")
        self.step = step
        self.start = start
        self._current = start

    def _draw(self, epoch: int) -> float:
        if epoch == 0:
            return self.start
        nxt = self._current + float(self._rng.normal(0.0, self.step))
        # Reflect at the boundaries to keep the walk inside [0, 1].
        nxt = abs(nxt)
        if nxt > 1.0:
            nxt = 2.0 - nxt
        nxt = min(1.0, max(0.0, nxt))
        self._current = nxt
        return nxt


@dataclass(frozen=True)
class ContentionCluster:
    """One component of a clustered contention mixture."""

    weight: float
    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not 0.0 <= self.mean <= 1.0:
            raise ValueError("mean must be in [0, 1]")
        if self.std < 0:
            raise ValueError("std must be non-negative")


#: The three-cluster mixture used by the Table 6 / Figure 10 experiments:
#: the site is usually lightly loaded, sometimes moderately, rarely heavily.
DEFAULT_CLUSTERS = (
    ContentionCluster(weight=0.45, mean=0.12, std=0.04),
    ContentionCluster(weight=0.35, mean=0.50, std=0.05),
    ContentionCluster(weight=0.20, mean=0.85, std=0.04),
)


class ClusteredContention(_EpochTrace):
    """Mixture-of-Gaussians contention: levels cluster in subranges.

    This is the non-uniform case the ICMA algorithm targets — "the
    contention level may occur more often in some subranges than the
    others" (§3.3).
    """

    def __init__(
        self,
        seed: int = 0,
        epoch_seconds: float = 30.0,
        clusters: Sequence[ContentionCluster] = DEFAULT_CLUSTERS,
    ) -> None:
        super().__init__(seed, epoch_seconds)
        if not clusters:
            raise ValueError("at least one cluster is required")
        self.clusters = tuple(clusters)
        total = sum(c.weight for c in self.clusters)
        self._weights = [c.weight / total for c in self.clusters]

    def _draw(self, epoch: int) -> float:
        idx = int(self._rng.choice(len(self.clusters), p=self._weights))
        cluster = self.clusters[idx]
        level = float(self._rng.normal(cluster.mean, cluster.std))
        return min(1.0, max(0.0, level))


@dataclass(frozen=True)
class SlowdownModel:
    """Maps a contention level to a query slowdown multiplier.

    ``slowdown(L) = 1 + linear * L + quadratic * L**2``

    Convex in L, matching the superlinear growth of Figure 1 (a query's
    cost climbing from 3.8 s to 124 s as concurrent processes grow from
    ~50 to ~130).  The default constants give a ~30x worst-case slowdown.
    """

    linear: float = 4.0
    quadratic: float = 26.0

    def slowdown(self, level: float) -> float:
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be in [0, 1]")
        return 1.0 + self.linear * level + self.quadratic * level * level

    def level_for_slowdown(self, multiplier: float) -> float:
        """Inverse mapping (for tests and calibration)."""
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.quadratic == 0.0:
            if self.linear == 0.0:
                return 0.0
            return min(1.0, (multiplier - 1.0) / self.linear)
        a, b, c = self.quadratic, self.linear, 1.0 - multiplier
        root = (-b + math.sqrt(b * b - 4 * a * c)) / (2 * a)
        return min(1.0, max(0.0, root))


#: Mapping between contention level and the paper's "number of concurrent
#: processes" axis (Figure 1 sweeps roughly 50..130 processes).
PROCESS_BASELINE = 50
PROCESS_SPAN = 80


def level_to_processes(level: float) -> int:
    """Contention level -> simulated number of concurrent processes."""
    if not 0.0 <= level <= 1.0:
        raise ValueError("level must be in [0, 1]")
    return PROCESS_BASELINE + int(round(level * PROCESS_SPAN))


def processes_to_level(processes: int) -> float:
    """Simulated number of concurrent processes -> contention level."""
    level = (processes - PROCESS_BASELINE) / PROCESS_SPAN
    if not 0.0 <= level <= 1.0:
        raise ValueError(
            f"process count {processes} outside the modeled range "
            f"[{PROCESS_BASELINE}, {PROCESS_BASELINE + PROCESS_SPAN}]"
        )
    return level
