"""A simulated wall clock.

All elapsed times in the reproduction are *simulated*: queries advance
the clock by their computed elapsed time rather than sleeping.  This
keeps experiments deterministic and fast while preserving the temporal
structure a dynamic environment needs (contention traces are functions
of simulated time).
"""

from __future__ import annotations


class SimulationClock:
    """Monotonically advancing simulated time, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("start time must be non-negative")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by *seconds* (must be non-negative)."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def reset(self, to_time: float) -> None:
        """Jump to an arbitrary time — including *backwards*.

        Normal execution only ever advances; reset exists so experiments
        can *fork* a simulation (run plan A, rewind, run plan B from the
        identical state).  Contention traces are deterministic functions
        of time, so rewinding the clock exactly restores the environment.
        """
        if to_time < 0:
            raise ValueError("time must be non-negative")
        self._now = float(to_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(t={self._now:.3f}s)"
