"""Explanatory variables for cost models — the paper's Table 3.

For a **unary** query class:

===========  =========  ==========================================
name         set        meaning
===========  =========  ==========================================
``no``       basic      size (cardinality) of operand table
``ni``       basic      size of intermediate table (operand reduced
                        by the index-servable predicate)
``nr``       basic      size of result table
``lo``       secondary  tuple length of operand table
``lr``       secondary  tuple length of result table
``tlo``      secondary  operand table length  (no * lo)
``tlr``      secondary  result table length   (nr * lr)
===========  =========  ==========================================

For a **join** query class:

===========  =========  ==========================================
``n1, n2``   basic      sizes of the operand tables
``ni1, ni2`` basic      sizes of the intermediate tables
``nr``       basic      size of the result table
``nixni``    basic      size of the Cartesian product of the
                        intermediate tables (ni1 * ni2)
``l1, l2``   secondary  operand tuple lengths
``lr``       secondary  result tuple length
``tl1, tl2`` secondary  operand table lengths
``tlr``      secondary  result table length
===========  =========  ==========================================

All are *globally observable*: cardinalities and tuple lengths come from
the MDBS catalog or from selectivity estimates; none require looking
inside the local DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..engine.database import QueryResult
from ..engine.query import JoinQuery, SelectQuery


@dataclass(frozen=True)
class VariableSet:
    """Ordered basic and secondary explanatory variables for a class family."""

    family: str
    basic: tuple[str, ...]
    secondary: tuple[str, ...]

    @property
    def all_names(self) -> tuple[str, ...]:
        return self.basic + self.secondary

    def __contains__(self, name: str) -> bool:
        return name in self.basic or name in self.secondary


UNARY_VARIABLES = VariableSet(
    family="unary",
    basic=("no", "ni", "nr"),
    secondary=("lo", "lr", "tlo", "tlr"),
)

JOIN_VARIABLES = VariableSet(
    family="join",
    basic=("n1", "n2", "ni1", "ni2", "nr", "nixni"),
    secondary=("l1", "l2", "lr", "tl1", "tl2", "tlr"),
)


def variables_for(query) -> VariableSet:
    """The variable set matching a query's shape."""
    if isinstance(query, SelectQuery):
        return UNARY_VARIABLES
    if isinstance(query, JoinQuery):
        return JOIN_VARIABLES
    raise TypeError(f"unsupported query type: {type(query).__name__}")


@dataclass
class Observation:
    """One sample-query execution, reduced to regression inputs.

    ``values`` holds every candidate explanatory variable;
    ``probing_cost`` is the sampled probing-query cost associated with
    this execution (§3.3), used to determine its contention state.
    """

    cost: float
    probing_cost: float
    values: dict[str, float]
    #: Contention level at execution (ground truth, for analysis only —
    #: the method itself never sees it).
    contention_level: float = float("nan")
    metadata: dict = field(default_factory=dict)

    def vector(self, names: tuple[str, ...]) -> list[float]:
        """Values of the named variables, in order."""
        try:
            return [self.values[n] for n in names]
        except KeyError as exc:
            raise KeyError(f"observation lacks variable {exc.args[0]!r}") from None


def extract_variables(result: QueryResult) -> dict[str, float]:
    """Compute the Table-3 variable values from one execution's results."""
    query = result.query
    if isinstance(query, SelectQuery):
        (info,) = result.infos
        no = float(info.operand_cardinality)
        ni = float(info.intermediate_cardinality)
        nr = float(result.result.cardinality)
        lo = float(info.operand_tuple_length)
        lr = float(result.result.tuple_length)
        return {
            "no": no,
            "ni": ni,
            "nr": nr,
            "lo": lo,
            "lr": lr,
            "tlo": no * lo,
            "tlr": nr * lr,
        }
    if isinstance(query, JoinQuery):
        left, right = result.infos
        n1 = float(left.operand_cardinality)
        n2 = float(right.operand_cardinality)
        ni1 = float(left.intermediate_cardinality)
        ni2 = float(right.intermediate_cardinality)
        nr = float(result.result.cardinality)
        l1 = float(left.operand_tuple_length)
        l2 = float(right.operand_tuple_length)
        lr = float(result.result.tuple_length)
        return {
            "n1": n1,
            "n2": n2,
            "ni1": ni1,
            "ni2": ni2,
            "nr": nr,
            "nixni": ni1 * ni2,
            "l1": l1,
            "l2": l2,
            "lr": lr,
            "tl1": n1 * l1,
            "tl2": n2 * l2,
            "tlr": nr * lr,
        }
    raise TypeError(f"unsupported query type: {type(query).__name__}")


def observation_from_result(
    result: QueryResult, probing_cost: float, **metadata
) -> Observation:
    """Build an :class:`Observation` from an executed query."""
    return Observation(
        cost=result.elapsed,
        probing_cost=probing_cost,
        values=extract_variables(result),
        contention_level=result.contention_level,
        metadata=dict(metadata),
    )


def design_columns(
    observations: list[Observation], names: tuple[str, ...]
) -> list[list[float]]:
    """Column-major variable values for *names* over *observations*."""
    return [[obs.values[n] for obs in observations] for n in names]


def values_matrix(observations, names) -> "list[list[float]]":
    """Row-major (t x n) variable matrix for *names* over *observations*."""
    return [obs.vector(tuple(names)) for obs in observations]


def responses(observations: list[Observation]) -> list[float]:
    """The observed costs (regression response)."""
    return [obs.cost for obs in observations]


def probing_costs(observations: list[Observation]) -> list[float]:
    """The sampled probing-query costs."""
    return [obs.probing_cost for obs in observations]


def check_observations(
    observations: list[Observation], names: Mapping[int, str] | tuple[str, ...]
) -> None:
    """Validate observations carry every variable and a finite cost."""
    wanted = tuple(names.values()) if isinstance(names, Mapping) else tuple(names)
    for idx, obs in enumerate(observations):
        if not (obs.cost >= 0.0):
            raise ValueError(f"observation {idx}: negative or NaN cost")
        if not (obs.probing_cost >= 0.0):
            raise ValueError(f"observation {idx}: negative or NaN probing cost")
        missing = [n for n in wanted if n not in obs.values]
        if missing:
            raise ValueError(f"observation {idx}: missing variables {missing}")
