"""Cost-model maintenance for occasionally-changing factors (paper §2).

"For the occasionally-changing factors, a simple and effective approach
to capturing them in a cost model is to invoke the [...] query sampling
method periodically or whenever a significant change for the factors
occurs.  Since these factors do not change very often, rebuilding cost
models from time to time to capture them is acceptable.  The changes of
occasionally-changing factors can be found via checking the local
database catalog and/or system configuration files."

This module implements exactly that: a :class:`ChangeDetector` snapshots
the local catalog (cardinalities, tuple lengths, indexes, clustering)
and diffs it against the current state, and a :class:`ModelMaintainer`
re-derives a class's cost model whenever a significant change is
detected or a rebuild period has elapsed (in simulated time).

The *frequently*-changing factors are NOT handled here — they are the
whole point of the multi-states method itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .. import obs
from ..engine.database import LocalDatabase
from ..engine.query import Query
from .builder import BuildOutcome, CostModelBuilder
from .classification import QueryClass


@dataclass(frozen=True)
class TableSnapshot:
    """The occasionally-changing facts about one table."""

    cardinality: int
    tuple_length: int
    indexed_columns: tuple[tuple[str, str], ...]  # (column, kind), sorted
    clustered_on: str | None


@dataclass(frozen=True)
class CatalogSnapshot:
    """A point-in-time image of a local database's catalog."""

    tables: dict[str, TableSnapshot]

    @classmethod
    def capture(cls, database: LocalDatabase) -> "CatalogSnapshot":
        tables = {}
        for table in database.catalog.tables():
            indexed = tuple(
                sorted(
                    (index.column_name, index.kind.value)
                    for index in database.catalog.indexes_for(table.name)
                )
            )
            tables[table.name] = TableSnapshot(
                cardinality=table.cardinality,
                tuple_length=table.tuple_length,
                indexed_columns=indexed,
                clustered_on=table.clustered_on,
            )
        return cls(tables=tables)


@dataclass(frozen=True)
class SignificantChange:
    """One detected occasionally-changing-factor change."""

    kind: str  # "table_added" | "table_dropped" | "cardinality" | "schema" | "indexes"
    table: str
    detail: str

    def __str__(self) -> str:
        return f"{self.table}: {self.kind} ({self.detail})"


class ChangeDetector:
    """Diffs catalog snapshots against a baseline.

    ``cardinality_drift`` is the relative growth/shrinkage of a table's
    cardinality considered significant — small changes "may not have an
    immediate significant impact on query cost until such changes
    accumulate to a certain degree" (§2), so the detector only fires once
    the accumulated drift crosses the threshold.
    """

    def __init__(
        self, database: LocalDatabase, cardinality_drift: float = 0.20
    ) -> None:
        if cardinality_drift <= 0:
            raise ValueError("cardinality_drift must be positive")
        self.database = database
        self.cardinality_drift = cardinality_drift
        self.baseline = CatalogSnapshot.capture(database)

    def rebase(self) -> None:
        """Accept the current state as the new baseline."""
        self.baseline = CatalogSnapshot.capture(self.database)

    def detect(self) -> list[SignificantChange]:
        """Changes between the baseline and the current catalog."""
        current = CatalogSnapshot.capture(self.database)
        changes: list[SignificantChange] = []
        for name in sorted(set(self.baseline.tables) | set(current.tables)):
            before = self.baseline.tables.get(name)
            after = current.tables.get(name)
            if before is None:
                changes.append(SignificantChange("table_added", name, "new table"))
                continue
            if after is None:
                changes.append(SignificantChange("table_dropped", name, "gone"))
                continue
            if before.cardinality > 0:
                drift = abs(after.cardinality - before.cardinality) / before.cardinality
                if drift > self.cardinality_drift:
                    changes.append(
                        SignificantChange(
                            "cardinality",
                            name,
                            f"{before.cardinality} -> {after.cardinality} "
                            f"({drift:.0%} drift)",
                        )
                    )
            elif after.cardinality > 0:
                changes.append(
                    SignificantChange("cardinality", name, "0 -> non-empty")
                )
            if before.tuple_length != after.tuple_length:
                changes.append(
                    SignificantChange(
                        "schema",
                        name,
                        f"tuple length {before.tuple_length} -> {after.tuple_length}",
                    )
                )
            if (
                before.indexed_columns != after.indexed_columns
                or before.clustered_on != after.clustered_on
            ):
                changes.append(
                    SignificantChange(
                        "indexes",
                        name,
                        f"{before.indexed_columns} -> {after.indexed_columns}",
                    )
                )
        return changes


@dataclass
class MaintenanceRecord:
    """Why and when one rebuild happened."""

    at_time: float
    class_label: str
    reasons: tuple[str, ...]


@dataclass
class _Registration:
    query_class: QueryClass
    query_source: Callable[[int], Sequence[Query]]
    sample_count: int
    algorithm: str
    last_built_at: float
    #: Model-form strategy override; None = the builder's configured one.
    strategy: str | None = None


class ModelMaintainer:
    """Keeps a site's cost models current (§2's maintenance policy).

    Register each query class with a query source (typically a
    :class:`~repro.workload.querygen.QueryGenerator` method); then call
    :meth:`maintain` from time to time.  A class is rebuilt when

    * a significant catalog change has been detected since its last
      build, or
    * ``rebuild_period_seconds`` of simulated time have elapsed since
      its last build (``None`` disables periodic rebuilds).
    """

    def __init__(
        self,
        builder: CostModelBuilder,
        detector: ChangeDetector | None = None,
        rebuild_period_seconds: float | None = None,
        on_rebuild: Callable[[str, BuildOutcome], None] | None = None,
    ) -> None:
        if rebuild_period_seconds is not None and rebuild_period_seconds <= 0:
            raise ValueError("rebuild_period_seconds must be positive")
        self.builder = builder
        self.detector = detector or ChangeDetector(builder.database)
        self.rebuild_period_seconds = rebuild_period_seconds
        #: Called as ``on_rebuild(class_label, outcome)`` after every
        #: (re)build — the hook the MDBS server uses to publish fresh
        #: models into its versioned registry.
        self.on_rebuild = on_rebuild
        self._registrations: dict[str, _Registration] = {}
        self.models: dict[str, BuildOutcome] = {}
        self.history: list[MaintenanceRecord] = []

    # -- registration ----------------------------------------------------

    def register(
        self,
        query_class: QueryClass,
        query_source: Callable[[int], Sequence[Query]],
        sample_count: int | None = None,
        algorithm: str = "iupma",
        build_now: bool = True,
        strategy: str | None = None,
    ) -> BuildOutcome | None:
        """Track *query_class*; optionally derive its model immediately.

        *strategy* pins a model-form strategy for this class; rebuilds go
        through the :class:`~repro.core.strategy.CostModelStrategy`
        interface, so a drift-triggered re-derivation reproduces the same
        form the class was registered with.
        """
        count = sample_count or self.builder.sample_size(query_class)
        self._registrations[query_class.label] = _Registration(
            query_class=query_class,
            query_source=query_source,
            sample_count=count,
            algorithm=algorithm,
            last_built_at=float("-inf"),
            strategy=strategy,
        )
        if build_now:
            return self._rebuild(query_class.label, reasons=("initial build",))
        return None

    # -- maintenance --------------------------------------------------------

    def due(self) -> dict[str, list[str]]:
        """Which classes need a rebuild right now, and why."""
        changes = [str(c) for c in self.detector.detect()]
        now = self.builder.database.environment.now
        result: dict[str, list[str]] = {}
        for label, registration in self._registrations.items():
            reasons = list(changes)
            if (
                self.rebuild_period_seconds is not None
                and now - registration.last_built_at >= self.rebuild_period_seconds
            ):
                reasons.append(
                    f"rebuild period elapsed ({self.rebuild_period_seconds:.0f}s)"
                )
            if reasons:
                result[label] = reasons
        return result

    def maintain(self) -> dict[str, BuildOutcome]:
        """Rebuild every due class; returns the fresh outcomes."""
        due = self.due()
        rebuilt = {}
        for label, reasons in due.items():
            rebuilt[label] = self._rebuild(label, tuple(reasons))
        if due:
            # The catalog state that triggered the rebuilds is now the
            # baseline; further drift is measured from here.
            self.detector.rebase()
        return rebuilt

    def registered_labels(self) -> list[str]:
        """The class labels currently under maintenance."""
        return sorted(self._registrations)

    def rebuild(self, label: str, reasons: tuple[str, ...]) -> BuildOutcome:
        """Force an immediate re-derivation of one registered class.

        The targeted entry point for out-of-band triggers (drift rules,
        operator action) that bypass :meth:`due`'s catalog/period logic.
        Raises ``KeyError`` for labels never :meth:`register`-ed.
        """
        if label not in self._registrations:
            raise KeyError(f"class {label!r} is not registered for maintenance")
        return self._rebuild(label, reasons)

    def _rebuild(self, label: str, reasons: tuple[str, ...]) -> BuildOutcome:
        registration = self._registrations[label]
        with obs.span(
            "maintenance.rebuild", class_label=label, reasons=list(reasons)
        ):
            queries = registration.query_source(registration.sample_count)
            outcome = self.builder.build(
                registration.query_class,
                queries,
                registration.algorithm,
                strategy=registration.strategy,
            )
        obs.inc("maintenance.rebuilds")
        obs.set_gauge(
            "maintenance.last_rebuild_at", self.builder.database.environment.now
        )
        registration.last_built_at = self.builder.database.environment.now
        self.models[label] = outcome
        self.history.append(
            MaintenanceRecord(
                at_time=registration.last_built_at,
                class_label=label,
                reasons=reasons,
            )
        )
        if self.on_rebuild is not None:
            self.on_rebuild(label, outcome)
        return outcome
