"""Merging adjustment: collapse contention states with similar effects.

Phase 2 of Algorithm 3.1 (shared by IUPMA and ICMA): after a partition is
chosen, neighbouring states whose *adjusted coefficients* differ by only
a small relative error are merged — "if the performance behaviors of
queries in contention states i and i-1 are similar, separating them is
unnecessary" — and the model is refitted, repeating until no pair of
neighbours is tagged.  The final subranges may therefore have unequal
widths even when the first phase partitioned uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fitting import QualitativeFit, fit_qualitative

#: Two states are "not significantly different" when the max relative
#: error across their adjusted coefficients is below this.
DEFAULT_MERGE_THRESHOLD = 0.20


def relative_error(a: float, b: float) -> float:
    """|a - b| / max(|a|, |b|), with 0/0 defined as 0."""
    denom = max(abs(a), abs(b))
    if denom == 0.0:
        return 0.0
    return abs(a - b) / denom


def max_relative_difference(adjusted: np.ndarray, state: int) -> float:
    """max over variables of the relative error between *state* and
    *state + 1*'s adjusted coefficients."""
    if not 0 <= state < adjusted.shape[0] - 1:
        raise IndexError("state must have a successor")
    return max(
        relative_error(float(adjusted[state, j]), float(adjusted[state + 1, j]))
        for j in range(adjusted.shape[1])
    )


@dataclass(frozen=True)
class MergeRecord:
    """One merge decision, for the determination history."""

    num_states_before: int
    merged_pairs: tuple[int, ...]


def merge_adjustment(
    fit: QualitativeFit,
    X: np.ndarray,
    y: np.ndarray,
    probing: np.ndarray,
    threshold: float = DEFAULT_MERGE_THRESHOLD,
) -> tuple[QualitativeFit, list[MergeRecord]]:
    """Iteratively merge neighbouring states with similar coefficients.

    Returns the final (possibly unchanged) fit and the merge history.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    history: list[MergeRecord] = []
    current = fit
    while current.num_states > 1:
        adjusted = current.adjusted()
        tagged = [
            i
            for i in range(current.num_states - 1)
            if max_relative_difference(adjusted, i) < threshold
        ]
        if not tagged:
            break
        history.append(MergeRecord(current.num_states, tuple(tagged)))
        states = current.states
        # Merge right-to-left so earlier boundary indices stay valid.
        for i in reversed(tagged):
            states = states.merge(i)
        current = fit_qualitative(
            X, y, probing, states, current.variable_names, current.form
        )
    return current, history
