"""Probing queries: gauging the system contention level.

"For a given query, its cost increases as the system contention level
increases.  Based on this observation, we can use the cost of a probing
query to gauge the system contention level." (§3.3)

Two ways to obtain a probing cost are implemented, mirroring the paper:

* **observed** — actually execute the probing query and time it
  (:meth:`ProbingQuery.observe`);
* **estimated** — regress the probing cost once on a few major system
  statistics (CPU load, I/O utilization, used memory — paper eq. (2)),
  then *estimate* it from a cheap statistics snapshot instead of
  executing the probe (:class:`ProbingCostEstimator`).  Cheaper per
  determination, but estimation error adds inaccuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..engine.database import LocalDatabase
from ..engine.query import Query, SelectQuery
from ..env.monitor import EnvironmentMonitor
from ..env.stats import MAJOR_CONTENTION_PARAMETERS, SystemStatistics
from ..mlr.linalg import add_intercept
from ..mlr.ols import OLSResult, fit_ols


class ProbingQuery:
    """A fixed small query whose elapsed time gauges contention.

    "Most queries, except the ones with extremely small cost, can well
    serve as a probing query" (paper footnote 2); small-cost probes are
    preferred to minimize overhead.
    """

    def __init__(self, database: LocalDatabase, query: Query | str) -> None:
        self.database = database
        self.query = database.parse(query) if isinstance(query, str) else query

    def observe(self) -> float:
        """Execute the probing query; return its elapsed time."""
        return self.database.execute(self.query).elapsed

    def describe(self) -> str:
        return f"{self.database.name}: {self.query}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbingQuery({self.describe()})"


def default_probing_query(database: LocalDatabase) -> ProbingQuery:
    """A reasonable probe: a selective scan of the smallest table.

    Picks the table with the fewest pages and builds a narrow range
    selection on its first column — cheap, but not so cheap that momentary
    noise swamps the signal.
    """
    tables = sorted(database.catalog.tables(), key=lambda t: (t.num_pages, t.name))
    if not tables:
        raise ValueError(f"database {database.name} has no tables to probe")
    table = tables[0]
    column = table.schema.columns[0]
    stats = table.statistics.column(column.name)
    if stats.minimum is None or not isinstance(stats.minimum, (int, float)):
        query = SelectQuery(table.name, (column.name,))
    else:
        # Cover roughly the lower half of the column's range.
        midpoint = (stats.minimum + stats.maximum) / 2
        if isinstance(stats.minimum, int) and isinstance(stats.maximum, int):
            midpoint = int(midpoint)
        from ..engine.predicate import Comparison

        query = SelectQuery(
            table.name, (column.name,), Comparison(column.name, "<=", midpoint)
        )
    return ProbingQuery(database, query)


@dataclass
class ProbingCostEstimator:
    """Estimates probing costs from system statistics — paper eq. (2).

    ``C_p ≈ beta_0 + sum_l beta_l * U_l`` where the U_l are major system
    contention parameters.  "A standard statistical procedure can be used
    to determine the significant parameters" (footnote 7): after a full
    fit, parameters whose t-test p-value exceeds ``alpha`` are dropped
    (backward, one at a time) and the model refitted.
    """

    parameters: tuple[str, ...] = MAJOR_CONTENTION_PARAMETERS
    alpha: float = 0.05
    _fit: OLSResult | None = field(default=None, repr=False)
    _selected: tuple[str, ...] = field(default=(), repr=False)

    @property
    def is_calibrated(self) -> bool:
        return self._fit is not None

    @property
    def selected_parameters(self) -> tuple[str, ...]:
        """Parameters retained by the significance screen."""
        if not self.is_calibrated:
            raise RuntimeError("estimator has not been calibrated")
        return self._selected

    @property
    def fit(self) -> OLSResult:
        if self._fit is None:
            raise RuntimeError("estimator has not been calibrated")
        return self._fit

    # -- calibration ---------------------------------------------------------

    def calibrate(
        self,
        probe: ProbingQuery,
        monitor: EnvironmentMonitor,
        samples: int = 60,
        interval_seconds: float = 20.0,
    ) -> OLSResult:
        """Collect (snapshot, observed probe cost) pairs and fit eq. (2).

        Each round takes a statistics snapshot, runs the probe, then lets
        simulated time pass so the environment moves to new contention.
        """
        if samples < len(self.parameters) + 2:
            raise ValueError("too few calibration samples for the parameter count")
        snapshots: list[SystemStatistics] = []
        costs: list[float] = []
        env = monitor.environment
        for _ in range(samples):
            snapshots.append(monitor.statistics())
            costs.append(probe.observe())
            env.advance(interval_seconds)
        return self.fit_pairs(snapshots, costs)

    def fit_pairs(
        self, snapshots: Sequence[SystemStatistics], costs: Sequence[float]
    ) -> OLSResult:
        """Fit eq. (2) to pre-collected calibration pairs."""
        if len(snapshots) != len(costs):
            raise ValueError("snapshots and costs must have the same length")
        selected = list(self.parameters)
        y = np.asarray(costs, dtype=float)
        while True:
            X = np.array([s.as_vector(tuple(selected)) for s in snapshots])
            result = fit_ols(
                add_intercept(X),
                y,
                term_names=("b0", *selected),
                has_intercept=True,
            )
            if len(selected) <= 1:
                break
            # Drop the least significant parameter if it fails the t-test.
            pvals = result.t_pvalues[1:]
            worst = int(np.argmax(pvals))
            if pvals[worst] <= self.alpha:
                break
            del selected[worst]
        self._fit = result
        self._selected = tuple(selected)
        return result

    # -- estimation -----------------------------------------------------------

    def estimate(self, snapshot: SystemStatistics) -> float:
        """Estimated probing cost from one statistics snapshot."""
        if self._fit is None:
            raise RuntimeError("estimator has not been calibrated")
        row = np.concatenate([[1.0], snapshot.as_vector(self._selected)])
        return float(row @ self._fit.coefficients)
