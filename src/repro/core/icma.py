"""ICMA: Iterative Clustering with Merging Adjustment.

Same iterate-and-adjust loop as IUPMA, but each candidate partition comes
from agglomerative hierarchical clustering of the sampled probing costs
(§3.3), so subrange boundaries follow the *actual distribution* of the
contention level instead of being fixed uniform cut points.  Designed for
dynamic environments whose contention level is non-uniform with clusters
(the Table 6 / Figure 10 scenario).

Thin clusters: the paper prefers drawing additional sample queries so
every cluster meets the regression minimum.  The collection layer
(:class:`repro.core.builder.CostModelBuilder`) handles that oversampling;
at this level, clusters still below the floor are merged into their
nearest neighbour rather than discarded, so "no useful contention level
points are ignored".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .clustering import agglomerate, cluster_extents, merge_small_clusters
from .iupma import StateDeterminationResult, StatesConfig, determine_states
from .partition import ContentionStates, partition_from_intervals


def clustered_partitioner(probing: np.ndarray, floor: int):
    """Build the ICMA partitioner for a probing-cost sample."""
    probing_arr = np.asarray(probing, dtype=float).reshape(-1)
    cmin = float(probing_arr.min())
    cmax = float(probing_arr.max())

    def partitioner(m: int) -> Optional[ContentionStates]:
        if m == 1:
            return ContentionStates(cmin, cmax)
        if cmin == cmax:
            return None
        clusters = agglomerate(probing_arr.tolist(), m)
        clusters = merge_small_clusters(clusters, floor)
        if len(clusters) != m:
            return None  # the sample does not support m well-filled clusters
        try:
            return partition_from_intervals(cluster_extents(clusters), cmin, cmax)
        except ValueError:
            # Degenerate extents (e.g. duplicate probing costs producing
            # touching clusters at the range edge): treat as infeasible.
            return None

    return partitioner


def determine_states_icma(
    X: np.ndarray,
    y: np.ndarray,
    probing: np.ndarray,
    variable_names: tuple[str, ...],
    config: StatesConfig = StatesConfig(),
) -> StateDeterminationResult:
    """ICMA: Algorithm 3.1 with clustering-based candidate partitions."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    floor = config.obs_floor(X.shape[1])
    partitioner = clustered_partitioner(probing, floor)
    return determine_states(
        X, y, probing, variable_names, partitioner, config, algorithm="icma"
    )
