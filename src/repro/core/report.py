"""Human-readable derivation reports for cost models.

`CostModelBuilder` records everything that happened on the way to a
model — the phase-1 state search, merges, variable-selection steps, the
per-state sample counts.  This module renders a
:class:`~repro.core.builder.BuildOutcome` as one diagnostic report, so a
user can answer "why did my cost model end up with these states and
variables?" without spelunking through metadata dicts.
"""

from __future__ import annotations

from typing import Sequence

from .builder import BuildOutcome
from .validation import ValidationReport
from .variables import Observation


def _section(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def derivation_report(
    outcome: BuildOutcome,
    test_observations: Sequence[Observation] | None = None,
) -> str:
    """Render the full derivation story of one cost model.

    Optionally scores the model against held-out *test_observations*
    (the §5 very-good/good criteria).
    """
    model = outcome.model
    lines: list[str] = [
        f"Cost model derivation report — class {model.class_label} "
        f"({model.family}), algorithm {model.algorithm}",
        f"database: {model.metadata.get('database', '?')}",
        f"probing query: {model.metadata.get('probe', '?')}",
        f"training sample: {model.n_observations} observations",
    ]

    lines += _section("Contention states")
    lines.append(f"probing-cost range: [{model.states.cmin:.4g}, {model.states.cmax:.4g}]")
    counts = _state_counts(outcome)
    for i, (lo, hi) in enumerate(model.states.subranges()):
        count = counts[i] if counts is not None else "?"
        lines.append(f"  s{i}: [{lo:.4g}, {hi:.4g})  ({count} training observations)")
    if outcome.determination is not None:
        lines.append("phase 1 (iterative partition search):")
        for record in outcome.determination.phase1:
            status = "accepted" if record.accepted else "rejected"
            lines.append(
                f"  m={record.num_states}: R2={record.r_squared:.4f} "
                f"SEE={record.standard_error:.4g}  [{status}]"
            )
        if outcome.determination.merges:
            for merge in outcome.determination.merges:
                pairs = ", ".join(f"s{i}+s{i + 1}" for i in merge.merged_pairs)
                lines.append(
                    f"phase 2 merge: {merge.num_states_before} states -> "
                    f"merged {pairs}"
                )
        else:
            lines.append("phase 2: no states merged")
    else:
        lines.append("(static algorithm: single state by construction)")

    lines += _section("Variable selection")
    for step in outcome.selection.steps:
        lines.append(f"  [{step.action}] {step.variable}: {step.detail}")
    if not outcome.selection.steps:
        lines.append("  (no variables screened, removed, or added)")
    lines.append(f"selected variables: {', '.join(model.variable_names)}")

    lines += _section("Fitted model")
    lines.append(model.equation_table())
    lines.append(
        f"fit: R2={model.r_squared:.4f}, SEE={model.standard_error:.4g}, "
        f"F significant at 1%: {'yes' if model.is_significant() else 'NO'}"
    )

    if outcome.timings:
        lines += _section("Derivation cost")
        total = sum(outcome.timings.values())
        for phase, seconds in outcome.timings.items():
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(f"  {phase}: {seconds:.3f}s ({share:.0f}%)")
        lines.append(f"  total: {total:.3f}s (real time)")

    if test_observations:
        from .validation import validate_model

        report: ValidationReport = validate_model(model, test_observations)
        lines += _section(f"Validation on {report.n_queries} held-out queries")
        lines.append(
            f"  very good (rel err <= 30%): {report.pct_very_good:.1f}%"
        )
        lines.append(f"  good (within 2x):           {report.pct_good:.1f}%")
        lines.append(f"  acceptable (within 10x):    {report.pct_acceptable:.1f}%")
        lines.append(f"  mean relative error:        {report.mean_relative_error:.3f}")
    return "\n".join(lines)


def _state_counts(outcome: BuildOutcome) -> list[int] | None:
    """Per-state training counts under the final partition."""
    try:
        states = outcome.model.states
        counts = [0] * states.num_states
        for obs in outcome.observations:
            counts[states.state_of(obs.probing_cost)] += 1
        return counts
    except Exception:  # pragma: no cover - defensive
        return None
