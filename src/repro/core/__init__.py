"""The paper's contribution: the multi-states query sampling method.

Develops regression cost models with a *qualitative variable* indicating
discrete system contention states, for local database systems in a
dynamic multidatabase environment.
"""

from .builder import ALGORITHMS, BuildOutcome, BuilderConfig, CostModelBuilder
from .classification import (
    ALL_CLASSES,
    G1,
    G2,
    G3,
    G4,
    G5,
    G6,
    GC,
    QueryClass,
    class_by_label,
    class_for_method,
    classify,
)
from .clustering import Cluster, agglomerate, cluster_extents, merge_small_clusters
from .fitting import QualitativeFit, fit_qualitative
from .icma import clustered_partitioner, determine_states_icma
from .iupma import (
    PhaseRecord,
    StateDeterminationResult,
    StatesConfig,
    determine_states,
    determine_states_iupma,
)
from .maintenance import (
    CatalogSnapshot,
    ChangeDetector,
    MaintenanceRecord,
    ModelMaintainer,
    SignificantChange,
    TableSnapshot,
)
from .merging import (
    DEFAULT_MERGE_THRESHOLD,
    MergeRecord,
    max_relative_difference,
    merge_adjustment,
    relative_error as coefficient_relative_error,
)
from .model import MultiStateCostModel
from .partition import ContentionStates, partition_from_intervals, uniform_partition
from .probing import ProbingCostEstimator, ProbingQuery, default_probing_query
from .qualitative import (
    ModelForm,
    adjusted_coefficients,
    build_design,
    design_row,
    encode_indicators,
    num_parameters,
    term_names,
)
from .report import derivation_report
from .sampling import (
    SamplingPlan,
    collect_observations,
    minimum_observations,
    recommended_sample_size,
    split_train_test,
)
from .selection import SelectionConfig, SelectionResult, SelectionStep, select_variables
from .static_method import StaticQuerySampling, derive_static_cost_model
from .strategy import (
    DEFAULT_STRATEGY,
    STRATEGY_NAMES,
    CostModelStrategy,
    OLSStrategy,
    OnlineSample,
    RLSStrategy,
    SGDStrategy,
    model_form,
    resolve_strategy,
    strategy_for,
)
from .validation import (
    ValidationReport,
    is_acceptable,
    is_good,
    is_very_good,
    relative_error,
    validate_model,
)
from .variables import (
    JOIN_VARIABLES,
    Observation,
    UNARY_VARIABLES,
    VariableSet,
    extract_variables,
    observation_from_result,
    variables_for,
)

__all__ = [
    "ALGORITHMS",
    "ALL_CLASSES",
    "BuildOutcome",
    "BuilderConfig",
    "CatalogSnapshot",
    "ChangeDetector",
    "Cluster",
    "ContentionStates",
    "CostModelBuilder",
    "CostModelStrategy",
    "DEFAULT_MERGE_THRESHOLD",
    "DEFAULT_STRATEGY",
    "G1",
    "G2",
    "G3",
    "G4",
    "G5",
    "G6",
    "GC",
    "JOIN_VARIABLES",
    "MaintenanceRecord",
    "MergeRecord",
    "ModelForm",
    "ModelMaintainer",
    "MultiStateCostModel",
    "OLSStrategy",
    "Observation",
    "OnlineSample",
    "PhaseRecord",
    "ProbingCostEstimator",
    "ProbingQuery",
    "QualitativeFit",
    "QueryClass",
    "RLSStrategy",
    "SGDStrategy",
    "STRATEGY_NAMES",
    "SamplingPlan",
    "SelectionConfig",
    "SelectionResult",
    "SelectionStep",
    "SignificantChange",
    "StateDeterminationResult",
    "StatesConfig",
    "StaticQuerySampling",
    "TableSnapshot",
    "UNARY_VARIABLES",
    "ValidationReport",
    "VariableSet",
    "adjusted_coefficients",
    "agglomerate",
    "build_design",
    "class_by_label",
    "class_for_method",
    "classify",
    "cluster_extents",
    "clustered_partitioner",
    "coefficient_relative_error",
    "collect_observations",
    "default_probing_query",
    "derivation_report",
    "derive_static_cost_model",
    "design_row",
    "determine_states",
    "determine_states_icma",
    "determine_states_iupma",
    "encode_indicators",
    "extract_variables",
    "fit_qualitative",
    "is_acceptable",
    "is_good",
    "is_very_good",
    "max_relative_difference",
    "merge_adjustment",
    "merge_small_clusters",
    "minimum_observations",
    "model_form",
    "num_parameters",
    "observation_from_result",
    "partition_from_intervals",
    "recommended_sample_size",
    "relative_error",
    "resolve_strategy",
    "select_variables",
    "strategy_for",
    "split_train_test",
    "term_names",
    "uniform_partition",
    "validate_model",
    "variables_for",
]
