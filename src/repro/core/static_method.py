"""The static query sampling method — the paper's baseline.

Zhu & Larson's earlier method assumes a static environment: one
regression equation per query class, no qualitative variable.  It is
exactly the one-contention-state special case of the multi-states
method (§1), so it is implemented as a thin wrapper around the shared
pipeline with ``algorithm="static"``.

The §5 experiments use it two ways:

* **Static Approach 1** — apply it to samples collected in a *static*
  environment (its intended use); the resulting model then faces a
  dynamic environment and collapses.
* **Static Approach 2** — apply it to samples collected in a *dynamic*
  environment; the single equation averages over all contention levels
  and fits none of them well.
"""

from __future__ import annotations

from typing import Sequence

from .builder import BuildOutcome, BuilderConfig, CostModelBuilder
from .classification import QueryClass
from .probing import ProbingQuery
from .variables import Observation


def derive_static_cost_model(
    observations: Sequence[Observation],
    query_class: QueryClass,
    builder: CostModelBuilder,
) -> BuildOutcome:
    """Derive a one-state (static) cost model from *observations*."""
    return builder.build_from_observations(observations, query_class, algorithm="static")


class StaticQuerySampling:
    """Convenience front end mirroring :class:`CostModelBuilder`."""

    def __init__(
        self,
        database,
        probe: ProbingQuery | None = None,
        config: BuilderConfig | None = None,
    ) -> None:
        self._builder = CostModelBuilder(database, probe=probe, config=config)

    @property
    def builder(self) -> CostModelBuilder:
        return self._builder

    def sample_size(self, query_class: QueryClass) -> int:
        """Sizing for the one-state model (m = 1 in Proposition 4.1)."""
        from .sampling import recommended_sample_size

        return recommended_sample_size(
            query_class.variables,
            max_states=1,
            secondary_allowance=self._builder.config.secondary_allowance,
        )

    def build(self, query_class: QueryClass, queries) -> BuildOutcome:
        """Collect samples and derive the static model."""
        return self._builder.build(query_class, queries, algorithm="static")

    def build_from_observations(
        self, observations: Sequence[Observation], query_class: QueryClass
    ) -> BuildOutcome:
        return derive_static_cost_model(observations, query_class, self._builder)
