"""Fitting qualitative regression cost models to sampled observations.

This is the glue between the statistical substrate (:mod:`repro.mlr`)
and the paper's state machinery: given quantitative variables, observed
costs, sampled probing costs, and a candidate partition into contention
states, fit the qualitative regression of the requested form and report
the statistics the determination algorithms iterate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mlr.ols import OLSResult, fit_ols
from .partition import ContentionStates
from .qualitative import (
    ModelForm,
    adjusted_coefficients,
    build_design,
    num_parameters,
    term_names,
)


@dataclass
class QualitativeFit:
    """A fitted qualitative regression over a specific state partition."""

    states: ContentionStates
    assignment: list[int]
    ols: OLSResult
    form: ModelForm
    variable_names: tuple[str, ...]
    #: Training design matrix and response, kept so alternative model-form
    #: strategies (:mod:`repro.core.strategy`) can re-derive coefficients
    #: from the same selected design without re-running selection.
    design: np.ndarray | None = field(default=None, repr=False, compare=False)
    response: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def num_states(self) -> int:
        return self.states.num_states

    @property
    def r_squared(self) -> float:
        return self.ols.r_squared

    @property
    def standard_error(self) -> float:
        return self.ols.standard_error

    def adjusted(self) -> np.ndarray:
        """Per-state effective coefficients B'[state, variable] (var 0 =
        intercept dummy)."""
        return adjusted_coefficients(
            self.ols.coefficients,
            len(self.variable_names),
            self.num_states,
            self.form,
        )

    def state_counts(self) -> list[int]:
        """Observations per state in the training sample."""
        counts = [0] * self.num_states
        for s in self.assignment:
            counts[s] += 1
        return counts


def fit_qualitative(
    X: np.ndarray,
    y: np.ndarray,
    probing: np.ndarray,
    states: ContentionStates,
    variable_names: tuple[str, ...],
    form: ModelForm = ModelForm.GENERAL,
) -> QualitativeFit:
    """Fit the qualitative regression of *form* over the given partition.

    Raises :class:`ValueError` when the sample cannot identify the model
    (fewer observations than parameters) — callers treat that as "this
    many states is too many for this sample".
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    y = np.asarray(y, dtype=float).reshape(-1)
    probing_arr = np.asarray(probing, dtype=float).reshape(-1)
    if not (X.shape[0] == y.shape[0] == probing_arr.shape[0]):
        raise ValueError("X, y, and probing must agree on the number of rows")
    if X.shape[1] != len(variable_names):
        raise ValueError("variable_names must match the columns of X")

    assignment = states.assign(probing_arr.tolist())
    p = num_parameters(X.shape[1], states.num_states, form)
    if X.shape[0] < p:
        raise ValueError(
            f"{X.shape[0]} observations cannot identify {p} parameters "
            f"({states.num_states} states, form {form.value})"
        )
    design = build_design(X, assignment, states.num_states, form)
    names = term_names(variable_names, states.num_states, form)
    ols = fit_ols(design, y, term_names=names, has_intercept=True)
    return QualitativeFit(
        states=states,
        assignment=assignment,
        ols=ols,
        form=form,
        variable_names=tuple(variable_names),
        design=design,
        response=y,
    )


def min_state_count(fit_or_counts) -> int:
    """Smallest per-state observation count (0 for an empty state)."""
    counts = (
        fit_or_counts.state_counts()
        if isinstance(fit_or_counts, QualitativeFit)
        else list(fit_or_counts)
    )
    return min(counts) if counts else 0
