"""Query classification: grouping local queries into homogeneous classes.

Inherited from the static query sampling method (§4.1): "we group local
queries on a local database system into classes based on their potential
access methods to be employed [...] a similar performance behavior is
shared among the queries in the class and can be described by a common
cost model."

The classification rules only use information available at the global
level — query shape, operand tables, index definitions, and catalog
statistics — mirrored here by calling the same deterministic access-path
rules the local optimizer applies (:mod:`repro.engine.optimizer`).

The paper's three representative classes carry their original labels:

* **G1** — unary queries without usable indexes (sequential scan);
* **G2** — unary queries with usable non-clustered indexes for ranges;
* **G3** — join queries without usable indexes (hash join here).

The full taxonomy also covers clustered-index scans and the other join
strategies, so every executable query lands in exactly one class.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.database import LocalDatabase
from ..engine.query import JoinQuery, Query, SelectQuery
from .variables import JOIN_VARIABLES, UNARY_VARIABLES, VariableSet


@dataclass(frozen=True)
class QueryClass:
    """One homogeneous query class."""

    label: str
    family: str  # "unary" | "join"
    access_method: str
    description: str

    @property
    def variables(self) -> VariableSet:
        return UNARY_VARIABLES if self.family == "unary" else JOIN_VARIABLES


G1 = QueryClass(
    "G1", "unary", "seq_scan", "unary queries without usable indexes"
)
G2 = QueryClass(
    "G2",
    "unary",
    "nonclustered_index_scan",
    "unary queries with usable non-clustered indexes for ranges",
)
GC = QueryClass(
    "GC", "unary", "clustered_index_scan", "unary queries using a clustered index"
)
G3 = QueryClass(
    "G3", "join", "hash_join", "join queries without usable indexes (hash join)"
)
G4 = QueryClass(
    "G4",
    "join",
    "index_nested_loop_join",
    "join queries probing an index on a join column",
)
G5 = QueryClass(
    "G5",
    "join",
    "sort_merge_join",
    "join queries over operands clustered on the join columns",
)
G6 = QueryClass(
    "G6", "join", "nested_loop_join", "join queries evaluated by nested loops"
)

ALL_CLASSES = (G1, G2, GC, G3, G4, G5, G6)

_BY_METHOD = {(c.family, c.access_method): c for c in ALL_CLASSES}
_BY_LABEL = {c.label: c for c in ALL_CLASSES}


def class_for_method(family: str, access_method: str) -> QueryClass:
    """The class whose queries use *access_method* in *family*."""
    try:
        return _BY_METHOD[(family, access_method)]
    except KeyError:
        raise KeyError(
            f"no query class for {family}/{access_method}"
        ) from None


def class_by_label(label: str) -> QueryClass:
    """Look up a class by its paper label (G1, G2, G3, ...)."""
    try:
        return _BY_LABEL[label]
    except KeyError:
        raise KeyError(f"unknown query class label {label!r}") from None


def classify(database: LocalDatabase, query: Query | str) -> QueryClass:
    """Classify *query* for *database* by its predicted access method.

    Uses the same rule-based access-path choice the local optimizer
    applies; since the rules depend only on globally visible facts
    (schemas, index definitions, statistics), the global level can make
    the identical prediction — which is what makes the classification
    usable despite local autonomy.
    """
    if isinstance(query, str):
        query = database.parse(query)
    if not isinstance(query, (SelectQuery, JoinQuery)):
        raise TypeError(f"unsupported query type: {type(query).__name__}")
    plan = database.plan(query)
    family = "unary" if isinstance(query, SelectQuery) else "join"
    return class_for_method(family, plan.method)
