"""Query sampling: sample-size rules and sample collection.

Proposition 4.1: for the general qualitative regression cost model with
n quantitative explanatory variables and one qualitative variable with m
states, **at least 10·((n+1)·m + 1) observations** are needed — 10 per
parameter ((n+1) coefficient groups × m states, plus the error-term
variance), following the "sample at least 10 observations for every
parameter" rule of thumb [12].

Collection pairs every sample-query execution with a probing-query
execution in the same environment ("sampled probing query costs", §3.3),
and spaces executions out in simulated time so the dynamic environment
actually moves between samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..engine.buffer import hit_state_label
from ..engine.database import LocalDatabase
from ..engine.query import Query
from .probing import ProbingQuery
from .variables import Observation, VariableSet, observation_from_result

#: Observations required per estimated parameter (textbook rule).
OBSERVATIONS_PER_PARAMETER = 10


def minimum_observations(n_variables: int, num_states: int) -> int:
    """Proposition 4.1's lower bound on the sample size."""
    if n_variables < 0:
        raise ValueError("n_variables must be non-negative")
    if num_states < 1:
        raise ValueError("num_states must be at least 1")
    return OBSERVATIONS_PER_PARAMETER * ((n_variables + 1) * num_states + 1)


def recommended_sample_size(
    variables: VariableSet,
    max_states: int,
    secondary_allowance: int = 2,
) -> int:
    """The paper's sizing rule (eq. (4)).

    The exact variable count is only known *after* selection, so size for
    the expected case: all basic variables plus a small allowance of
    secondary ones (|B| + 2), times the largest state count anticipated
    for the environment.
    """
    if max_states < 1:
        raise ValueError("max_states must be at least 1")
    if secondary_allowance < 0:
        raise ValueError("secondary_allowance must be non-negative")
    n_expected = len(variables.basic) + secondary_allowance
    return minimum_observations(n_expected, max_states)


@dataclass
class SamplingPlan:
    """How a sample run is to be executed."""

    #: Simulated seconds to let pass between consecutive sample queries,
    #: so the contention trace moves through its epochs.
    pause_seconds: float = 20.0
    #: Whether to record the ground-truth contention level for analysis.
    record_level: bool = True


def collect_observations(
    database: LocalDatabase,
    queries: Sequence[Query | str],
    probe: ProbingQuery,
    plan: SamplingPlan | None = None,
) -> list[Observation]:
    """Run sample *queries*, pairing each with a fresh probing cost.

    For each sample query the probing query runs first in the same
    environment; its cost is the observation's *sampled probing cost*,
    used later to determine the contention state the sample executed in.
    """
    plan = plan or SamplingPlan()
    if plan.pause_seconds < 0:
        raise ValueError("pause_seconds must be non-negative")
    observations: list[Observation] = []
    for query in queries:
        probing_cost = probe.observe()
        result = database.execute(query)
        extra: dict = {}
        if database.buffer_pool is not None:
            # Observed buffer-hit behaviour is a qualitative variable in
            # its own right: the probing query already ran through the
            # same pool (absorbing cache state into probing_cost, the
            # paper's §3.3 mechanism), and the per-query hit rate is
            # recorded so derived models carry explicit provenance.
            hit_rate = result.metrics.buffer_hit_rate
            extra = {
                "buffer_hit_rate": hit_rate,
                "buffer_hit_state": hit_state_label(hit_rate),
            }
        observations.append(
            observation_from_result(
                result,
                probing_cost,
                plan=result.plan,
                query=str(result.query),
                **extra,
            )
        )
        database.environment.advance(plan.pause_seconds)
    return observations


def split_train_test(
    observations: Iterable[Observation], test_fraction: float, rng
) -> tuple[list[Observation], list[Observation]]:
    """Random train/test split of observations (order-independent)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    items = list(observations)
    indices = rng.permutation(len(items))
    n_test = max(1, int(round(test_fraction * len(items))))
    test_idx = set(int(i) for i in indices[:n_test])
    train = [obs for i, obs in enumerate(items) if i not in test_idx]
    test = [obs for i, obs in enumerate(items) if i in test_idx]
    return train, test
