"""Multi-states cost models: the artifact the MDBS catalog stores.

A :class:`MultiStateCostModel` packages everything global query
optimization needs to estimate a local query's cost in a dynamic
environment: the query class, the selected explanatory variables, the
contention-state partition of the probing-cost range, and the fitted
per-state regression coefficients.  Estimating a cost takes (a) the
variable values predicted for the query (from the MDBS catalog and
selectivity estimates) and (b) a current probing cost — observed or
estimated — to resolve the contention state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .fitting import QualitativeFit
from .partition import ContentionStates
from .qualitative import ModelForm, adjusted_coefficients, design_row


@dataclass
class MultiStateCostModel:
    """A fitted qualitative regression cost model for one query class."""

    class_label: str
    family: str
    variable_names: tuple[str, ...]
    form: ModelForm
    states: ContentionStates
    coefficients: np.ndarray
    term_names: tuple[str, ...]
    # -- training statistics --------------------------------------------
    r_squared: float
    standard_error: float
    f_statistic: float | None
    f_pvalue: float | None
    n_observations: int
    algorithm: str = "iupma"
    metadata: dict = field(default_factory=dict)
    #: Coefficient covariance s^2 (X'X)^-1 from the training fit; enables
    #: prediction intervals (None for degenerate fits).
    coef_covariance: np.ndarray | None = field(default=None, repr=False)

    # -- prediction -------------------------------------------------------

    @property
    def num_states(self) -> int:
        return self.states.num_states

    def state_for(self, probing_cost: float) -> int:
        """Contention state indicated by *probing_cost*."""
        return self.states.state_of(probing_cost)

    def predict(self, values: Mapping[str, float], probing_cost: float) -> float:
        """Estimated cost for a query with *values*, given a probing cost."""
        state = self.state_for(probing_cost)
        return self.predict_in_state(values, state)

    def predict_in_state(self, values: Mapping[str, float], state: int) -> float:
        """Estimated cost assuming contention state *state*."""
        try:
            x = [float(values[n]) for n in self.variable_names]
        except KeyError as exc:
            raise KeyError(f"missing variable {exc.args[0]!r}") from None
        row = design_row(x, state, self.num_states, self.form)
        return float(row @ self.coefficients)

    def predict_with_interval(
        self,
        values: Mapping[str, float],
        probing_cost: float,
        confidence: float = 0.95,
    ) -> tuple[float, float, float]:
        """(estimate, lower, upper) prediction interval for one query.

        Lets the global optimizer hedge between plans whose cost
        intervals overlap.  Requires the training fit's coefficient
        covariance (kept by default).
        """
        if self.coef_covariance is None:
            raise ValueError("model carries no coefficient covariance")
        from ..mlr.intervals import prediction_interval
        from ..mlr.ols import OLSResult

        state = self.state_for(probing_cost)
        x = [float(values[n]) for n in self.variable_names]
        row = design_row(x, state, self.num_states, self.form).reshape(1, -1)
        # Rebuild the minimal OLSResult surface the interval math needs.
        p = len(self.coefficients)
        shim = OLSResult(
            coefficients=self.coefficients,
            term_names=self.term_names,
            fitted=np.empty(0),
            residuals=np.empty(0),
            n_observations=self.n_observations,
            n_parameters=p,
            r_squared=self.r_squared,
            adjusted_r_squared=self.r_squared,
            standard_error=self.standard_error,
            f_statistic=self.f_statistic,
            f_pvalue=self.f_pvalue,
            coef_std_errors=np.sqrt(np.clip(np.diag(self.coef_covariance), 0, None)),
            t_statistics=np.empty(p),
            t_pvalues=np.empty(p),
            coef_covariance=self.coef_covariance,
        )
        point, lower, upper = prediction_interval(shim, row, confidence)
        return float(point[0]), float(lower[0]), float(upper[0])

    def is_significant(self, alpha: float = 0.01) -> bool:
        """Overall F-test on the training fit."""
        return self.f_pvalue is not None and self.f_pvalue < alpha

    def validation_stats(self) -> dict:
        """The training-fit statistics the model-lifecycle layer records
        as provenance (R², SEE, F, sample size)."""
        return {
            "r_squared": self.r_squared,
            "standard_error": self.standard_error,
            "f_statistic": self.f_statistic,
            "f_pvalue": self.f_pvalue,
            "n_observations": self.n_observations,
        }

    # -- inspection ------------------------------------------------------------

    def per_state_coefficients(self) -> np.ndarray:
        """B'[state, variable] effective coefficients (var 0 = intercept)."""
        return adjusted_coefficients(
            self.coefficients, len(self.variable_names), self.num_states, self.form
        )

    def equation_table(self) -> str:
        """Render the per-state equations, Table-4 style."""
        B = self.per_state_coefficients()
        lines = [
            f"{self.class_label} ({self.family}; {self.num_states} states; "
            f"form={self.form.value}; algorithm={self.algorithm})",
            f"states: {self.states.describe()}",
        ]
        for i in range(self.num_states):
            terms = [f"{B[i, 0]:+.3e}"]
            terms += [
                f"{B[i, j + 1]:+.3e}*{name}"
                for j, name in enumerate(self.variable_names)
            ]
            lines.append(f"  s{i}: cost = " + " ".join(terms))
        return "\n".join(lines)

    # -- (de)serialization for the global catalog ---------------------------------

    def to_dict(self) -> dict:
        return {
            "class_label": self.class_label,
            "family": self.family,
            "variable_names": list(self.variable_names),
            "form": self.form.value,
            "states": {
                "cmin": self.states.cmin,
                "cmax": self.states.cmax,
                "boundaries": list(self.states.boundaries),
            },
            "coefficients": [float(c) for c in self.coefficients],
            "term_names": list(self.term_names),
            "r_squared": self.r_squared,
            "standard_error": self.standard_error,
            "f_statistic": self.f_statistic,
            "f_pvalue": self.f_pvalue,
            "n_observations": self.n_observations,
            "algorithm": self.algorithm,
            "metadata": dict(self.metadata),
            "coef_covariance": (
                None
                if self.coef_covariance is None
                else [[float(v) for v in row] for row in self.coef_covariance]
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MultiStateCostModel":
        states = ContentionStates(
            payload["states"]["cmin"],
            payload["states"]["cmax"],
            tuple(payload["states"]["boundaries"]),
        )
        return cls(
            class_label=payload["class_label"],
            family=payload["family"],
            variable_names=tuple(payload["variable_names"]),
            form=ModelForm(payload["form"]),
            states=states,
            coefficients=np.asarray(payload["coefficients"], dtype=float),
            term_names=tuple(payload["term_names"]),
            r_squared=payload["r_squared"],
            standard_error=payload["standard_error"],
            f_statistic=payload["f_statistic"],
            f_pvalue=payload["f_pvalue"],
            n_observations=payload["n_observations"],
            algorithm=payload.get("algorithm", "iupma"),
            metadata=dict(payload.get("metadata", {})),
            coef_covariance=(
                None
                if payload.get("coef_covariance") is None
                else np.asarray(payload["coef_covariance"], dtype=float)
            ),
        )

    @classmethod
    def from_fit(
        cls,
        fit: QualitativeFit,
        class_label: str,
        family: str,
        algorithm: str,
        **metadata,
    ) -> "MultiStateCostModel":
        """Package a :class:`QualitativeFit` as a catalog-ready model."""
        return cls(
            class_label=class_label,
            family=family,
            variable_names=fit.variable_names,
            form=fit.form,
            states=fit.states,
            coefficients=np.asarray(fit.ols.coefficients, dtype=float),
            term_names=fit.ols.term_names,
            r_squared=fit.ols.r_squared,
            standard_error=fit.ols.standard_error,
            f_statistic=fit.ols.f_statistic,
            f_pvalue=fit.ols.f_pvalue,
            n_observations=fit.ols.n_observations,
            algorithm=algorithm,
            metadata=dict(metadata),
            coef_covariance=fit.ols.coef_covariance,
        )
