"""Qualitative variables in regression: indicator encoding and the four
model forms of the paper's Table 2.

A qualitative variable with m states is represented by m-1 indicator
variables z_1 .. z_{m-1}; the all-zeros encoding denotes the reference
state (we use state 0, the lowest-contention subrange).  The qualitative
variable can enter a regression in four ways:

* **coincident** — the states share one equation (the static method's
  assumption);
* **parallel**   — state-specific intercepts, shared slopes;
* **concurrent** — shared intercept, state-specific slopes;
* **general**    — state-specific intercepts *and* slopes.

§3.2 argues the general form is right for query cost models, because
contention stretches initialization (intercept) and per-tuple I/O/CPU
work (slopes) alike; the other forms are implemented both for the
model-form ablation benchmark and because the theory is part of the
contribution.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np


class ModelForm(enum.Enum):
    """How a qualitative variable influences the regression equation."""

    COINCIDENT = "coincident"
    PARALLEL = "parallel"
    CONCURRENT = "concurrent"
    GENERAL = "general"


def encode_indicators(states: Sequence[int], num_states: int) -> np.ndarray:
    """Indicator matrix Z with columns z_1 .. z_{m-1}.

    ``Z[t, i-1] == 1`` iff observation t is in state i (i >= 1); a row of
    zeros means state 0.  At most one indicator is 1 per row — a system
    can only occupy one contention state at a time.
    """
    if num_states < 1:
        raise ValueError("num_states must be at least 1")
    states_arr = np.asarray(states, dtype=int)
    if states_arr.ndim != 1:
        raise ValueError("states must be a 1-D sequence")
    if states_arr.size and (states_arr.min() < 0 or states_arr.max() >= num_states):
        raise ValueError("state index out of range")
    Z = np.zeros((states_arr.size, num_states - 1))
    for i in range(1, num_states):
        Z[states_arr == i, i - 1] = 1.0
    return Z


def term_names(
    variable_names: Sequence[str], num_states: int, form: ModelForm
) -> tuple[str, ...]:
    """Column names matching :func:`build_design`'s output order."""
    names: list[str] = ["b0"]
    if form in (ModelForm.PARALLEL, ModelForm.GENERAL):
        names += [f"b0:s{i}" for i in range(1, num_states)]
    for var in variable_names:
        names.append(var)
        if form in (ModelForm.CONCURRENT, ModelForm.GENERAL):
            names += [f"{var}:s{i}" for i in range(1, num_states)]
    return tuple(names)


def build_design(
    X: np.ndarray,
    states: Sequence[int],
    num_states: int,
    form: ModelForm = ModelForm.GENERAL,
) -> np.ndarray:
    """Design matrix for the chosen qualitative form.

    Parameters
    ----------
    X:
        Quantitative explanatory variables, shape (t, n) — *without*
        an intercept column.
    states:
        State index per observation.
    num_states:
        Number of states m.  With m == 1 every form degenerates to the
        coincident (static) model — "the static method is a special case
        of the multi-states one when only one contention state is
        allowed" (§1).

    Column order matches :func:`term_names`: the intercept block first
    (1, then its state offsets for parallel/general), then one block per
    variable (x_j, then its state offsets for concurrent/general).
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    Z = encode_indicators(states, num_states)
    t = X.shape[0]
    if Z.shape[0] != t:
        raise ValueError("states must have one entry per observation")

    columns: list[np.ndarray] = [np.ones(t)]
    if form in (ModelForm.PARALLEL, ModelForm.GENERAL):
        columns.extend(Z[:, i] for i in range(Z.shape[1]))
    for j in range(X.shape[1]):
        columns.append(X[:, j])
        if form in (ModelForm.CONCURRENT, ModelForm.GENERAL):
            columns.extend(X[:, j] * Z[:, i] for i in range(Z.shape[1]))
    return np.column_stack(columns) if columns else np.ones((t, 1))


def num_parameters(n_variables: int, num_states: int, form: ModelForm) -> int:
    """Parameter count of the design produced by :func:`build_design`."""
    if form is ModelForm.COINCIDENT:
        return 1 + n_variables
    if form is ModelForm.PARALLEL:
        return num_states + n_variables
    if form is ModelForm.CONCURRENT:
        return 1 + n_variables * num_states
    return (1 + n_variables) * num_states


def adjusted_coefficients(
    coefficients: np.ndarray,
    n_variables: int,
    num_states: int,
    form: ModelForm = ModelForm.GENERAL,
) -> np.ndarray:
    """Effective per-state coefficients B'[state, variable].

    ``B'[i, j]`` is the coefficient of variable j (j = 0 is the dummy
    intercept) *in effect* when the system is in state i: the reference
    coefficient plus that state's offset.  These are the "adjusted
    coefficients" Algorithm 3.1's merging phase compares between
    neighbouring states.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    expected = num_parameters(n_variables, num_states, form)
    if coefficients.shape != (expected,):
        raise ValueError(
            f"expected {expected} coefficients for form {form.value}, "
            f"got {coefficients.shape}"
        )
    B = np.zeros((num_states, n_variables + 1))
    pos = 0
    # Intercept block.
    base_intercept = coefficients[pos]
    pos += 1
    B[:, 0] = base_intercept
    if form in (ModelForm.PARALLEL, ModelForm.GENERAL):
        for i in range(1, num_states):
            B[i, 0] += coefficients[pos]
            pos += 1
    # Variable blocks.
    for j in range(1, n_variables + 1):
        base = coefficients[pos]
        pos += 1
        B[:, j] = base
        if form in (ModelForm.CONCURRENT, ModelForm.GENERAL):
            for i in range(1, num_states):
                B[i, j] += coefficients[pos]
                pos += 1
    assert pos == expected
    return B


def design_row(
    values: Sequence[float], state: int, num_states: int, form: ModelForm
) -> np.ndarray:
    """One design-matrix row for prediction at a known state."""
    X = np.asarray(values, dtype=float).reshape(1, -1)
    return build_design(X, [state], num_states, form)[0]
