"""Contention states as partitions of the probing-cost range.

The system contention level is *gauged by the cost of a probing query*
(§3.3).  A set of contention states is a partition of the observed
probing-cost range [Cmin, Cmax] into subranges; the environment "is in
state i" when the probing cost falls in subrange i.

Indexing convention: the paper numbers states with a *decreasing* index
(state m is the cheapest subrange) purely to simplify its algorithm
prose.  We use the conventional ascending 0-based index — state 0 is the
lowest-contention subrange — and note the difference here once.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ContentionStates:
    """A partition of [cmin, cmax] into contiguous contention states.

    ``boundaries`` are the interior cut points, strictly increasing and
    strictly inside (cmin, cmax); with k boundaries there are k+1 states.
    State i covers [b_{i-1}, b_i) with b_{-1} = cmin and b_k = cmax
    (the last state is closed on the right).  Probing costs outside
    [cmin, cmax] clamp to the first/last state — at estimation time the
    environment can always be *more* or *less* loaded than anything seen
    during sampling.
    """

    cmin: float
    cmax: float
    boundaries: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.cmin <= self.cmax:
            raise ValueError("cmin must not exceed cmax")
        bounds = tuple(float(b) for b in self.boundaries)
        object.__setattr__(self, "boundaries", bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("boundaries must be strictly increasing")
        for b in bounds:
            if not self.cmin < b < self.cmax:
                raise ValueError(
                    f"boundary {b} outside the open range ({self.cmin}, {self.cmax})"
                )

    @property
    def num_states(self) -> int:
        return len(self.boundaries) + 1

    def state_of(self, probing_cost: float) -> int:
        """The state whose subrange contains *probing_cost* (clamped)."""
        return bisect.bisect_right(self.boundaries, probing_cost)

    def assign(self, probing_costs: Sequence[float]) -> list[int]:
        """Vectorized :meth:`state_of`."""
        return [self.state_of(c) for c in probing_costs]

    def subrange(self, state: int) -> tuple[float, float]:
        """The [low, high) subrange of *state*."""
        if not 0 <= state < self.num_states:
            raise IndexError(f"state {state} out of range")
        low = self.cmin if state == 0 else self.boundaries[state - 1]
        high = self.cmax if state == self.num_states - 1 else self.boundaries[state]
        return low, high

    def subranges(self) -> list[tuple[float, float]]:
        return [self.subrange(i) for i in range(self.num_states)]

    def merge(self, state: int) -> "ContentionStates":
        """Merge *state* with its successor (drop the boundary between them)."""
        if not 0 <= state < self.num_states - 1:
            raise IndexError(f"cannot merge state {state} with its successor")
        bounds = list(self.boundaries)
        del bounds[state]
        return ContentionStates(self.cmin, self.cmax, tuple(bounds))

    def describe(self) -> str:
        """Human-readable subrange listing (for reports and Table 4 output)."""
        parts = []
        for i, (lo, hi) in enumerate(self.subranges()):
            closer = "]" if i == self.num_states - 1 else ")"
            parts.append(f"s{i}=[{lo:.4g}, {hi:.4g}{closer}")
        return ", ".join(parts)


def uniform_partition(cmin: float, cmax: float, num_states: int) -> ContentionStates:
    """Partition [cmin, cmax] into *num_states* equal-width subranges.

    The straightforward partition of §3.3: subrange width
    (cmax - cmin) / m.
    """
    if num_states < 1:
        raise ValueError("num_states must be at least 1")
    if cmin > cmax:
        raise ValueError("cmin must not exceed cmax")
    if num_states == 1 or cmin == cmax:
        return ContentionStates(cmin, cmax)
    width = (cmax - cmin) / num_states
    boundaries = tuple(cmin + width * i for i in range(1, num_states))
    return ContentionStates(cmin, cmax, boundaries)


def partition_from_intervals(
    intervals: Sequence[tuple[float, float]],
    cmin: float | None = None,
    cmax: float | None = None,
) -> ContentionStates:
    """Build states from disjoint value intervals (e.g. cluster extents).

    Boundaries are placed at the midpoints of the gaps between adjacent
    intervals, so the states tile the whole [cmin, cmax] range — the gap
    between two observed clusters is split between their states, letting
    future probing costs that land in a gap resolve to the nearer cluster.
    """
    if not intervals:
        raise ValueError("at least one interval is required")
    ordered = sorted((float(lo), float(hi)) for lo, hi in intervals)
    for lo, hi in ordered:
        if lo > hi:
            raise ValueError(f"interval ({lo}, {hi}) is inverted")
    for (_, hi_prev), (lo_next, _) in zip(ordered, ordered[1:]):
        if lo_next < hi_prev:
            raise ValueError("intervals overlap")
    low = ordered[0][0] if cmin is None else float(cmin)
    high = ordered[-1][1] if cmax is None else float(cmax)
    boundaries = tuple(
        (hi_prev + lo_next) / 2.0
        for (_, hi_prev), (lo_next, _) in zip(ordered, ordered[1:])
    )
    return ContentionStates(low, high, boundaries)
