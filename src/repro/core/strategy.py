"""Pluggable cost-model strategies: batch OLS and online forms.

The paper derives every cost model with one *model form* — qualitative
multiple regression solved by batch OLS and re-derived wholesale when
the environment drifts.  The lifecycle machinery around it (builder,
maintainer, registry, drift detection) is model-agnostic in shape, so
this module makes the form an explicit strategy:

* :class:`OLSStrategy` (``mlr.ols``) — the paper's multi-states method,
  byte-identical to the pre-strategy pipeline.  It is the default and
  leaves the :class:`~repro.core.model.MultiStateCostModel` produced by
  the batch fit untouched.
* :class:`RLSStrategy` (``mlr.rls``) — recursive least squares with a
  forgetting factor.  Batch derivation streams the selected design
  through RLS (converging to the OLS coefficients); at serving time each
  estimate-vs-actual sample updates the coefficients in place, so the
  model tracks regime shifts without a re-derivation.
* :class:`SGDStrategy` (``mlr.sgd``) — normalized-LMS stochastic
  gradient descent, warm-started from the batch OLS solution.

Because the qualitative design row (:func:`repro.core.qualitative.design_row`)
already encodes per-state intercepts and slopes, one coefficient vector
updated online *is* a per-qualitative-state online model — each update
only touches the active state's block of the GENERAL form.

Strategy identity travels in ``model.metadata["model_form"]`` (absent
for the default, keeping the OLS artifact byte-identical) and is
surfaced by the registry as provenance (schema_version 3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Mapping

import numpy as np

from ..mlr.rls import (
    DEFAULT_DELTA,
    DEFAULT_LEARNING_RATE,
    DEFAULT_SGD_EPOCHS,
    NormalizedSGD,
    RecursiveLeastSquares,
    rls_fit,
    sgd_fit,
)
from .fitting import QualitativeFit
from .model import MultiStateCostModel
from .qualitative import design_row

__all__ = [
    "DEFAULT_STRATEGY",
    "MODEL_FORM_KEY",
    "STRATEGY_NAMES",
    "STRATEGY_PARAMS_KEY",
    "CostModelStrategy",
    "OLSStrategy",
    "OnlineSample",
    "RLSStrategy",
    "SGDStrategy",
    "model_form",
    "resolve_strategy",
    "strategy_for",
]

DEFAULT_STRATEGY = "mlr.ols"
MODEL_FORM_KEY = "model_form"
STRATEGY_PARAMS_KEY = "strategy_params"


@dataclass(frozen=True)
class OnlineSample:
    """One served query's estimate-vs-actual feedback for online forms."""

    values: Mapping[str, float]
    state: int
    actual: float
    predicted: float | None = None


class CostModelStrategy(abc.ABC):
    """How cost-model coefficients are derived and (optionally) updated."""

    name: ClassVar[str]
    supports_online_update: ClassVar[bool] = False

    # -- batch derivation --------------------------------------------------

    def fit(self, fit: QualitativeFit) -> np.ndarray:
        """Coefficient vector over *fit*'s qualitative design."""
        return np.asarray(fit.ols.coefficients, dtype=float)

    def finalize(
        self, model: MultiStateCostModel, fit: QualitativeFit
    ) -> MultiStateCostModel:
        """Rework the batch-derived *model* for this strategy.

        The default (OLS) is the identity — the batch artifact ships
        unchanged, byte for byte.  Online strategies re-derive the
        coefficients from the same selected design and stamp the form
        into the model metadata.
        """
        return model

    # -- prediction --------------------------------------------------------

    def predict_with_state(
        self, model: MultiStateCostModel, values: Mapping[str, float], state: int
    ) -> float:
        """Estimated cost for *values* assuming contention state *state*."""
        return model.predict_in_state(values, state)

    # -- online updates ----------------------------------------------------

    def make_updater(self, model: MultiStateCostModel):
        """Serving-time estimator warm-started from *model* (None = n/a)."""
        return None

    def update(self, model: MultiStateCostModel, sample: OnlineSample, updater) -> float | None:
        """Fold one served sample into *model* via *updater*.

        Mutates ``model.coefficients`` in place so every holder of the
        registered model (optimizer, plan cache resolution, exports)
        sees the updated form.  Returns the a-priori residual, or None
        when the strategy does not update online.
        """
        if not self.supports_online_update or updater is None:
            return None
        try:
            x = [float(sample.values[name]) for name in model.variable_names]
        except KeyError:
            return None
        state = min(max(int(sample.state), 0), model.num_states - 1)
        row = design_row(x, state, model.num_states, model.form)
        error = updater.update(row, float(sample.actual))
        model.coefficients[:] = updater.coefficients
        return error

    # -- serialization -----------------------------------------------------

    @abc.abstractmethod
    def params(self) -> dict:
        """JSON-serializable hyperparameters (round-trips via metadata)."""

    # -- shared helpers ----------------------------------------------------

    def _rework(
        self,
        model: MultiStateCostModel,
        fit: QualitativeFit,
        theta: np.ndarray,
    ) -> MultiStateCostModel:
        """Install *theta* into *model* and refresh the training stats."""
        model.coefficients = np.asarray(theta, dtype=float)
        if fit.design is not None and fit.response is not None:
            y = np.asarray(fit.response, dtype=float)
            residuals = y - fit.design @ model.coefficients
            sse = float(residuals @ residuals)
            sst = float(((y - y.mean()) ** 2).sum())
            model.r_squared = 1.0 - sse / sst if sst > 0.0 else 0.0
            df_error = len(y) - len(model.coefficients)
            model.standard_error = (
                float(np.sqrt(sse / df_error)) if df_error > 0 else float("nan")
            )
        model.metadata[MODEL_FORM_KEY] = self.name
        model.metadata[STRATEGY_PARAMS_KEY] = self.params()
        return model


class OLSStrategy(CostModelStrategy):
    """The paper's batch multi-states OLS — the byte-identical default."""

    name = "mlr.ols"
    supports_online_update = False

    def params(self) -> dict:
        return {}


class RLSStrategy(CostModelStrategy):
    """Recursive least squares with forgetting, per qualitative state."""

    name = "mlr.rls"
    supports_online_update = True

    def __init__(
        self,
        forgetting: float = 0.98,
        delta: float = DEFAULT_DELTA,
    ) -> None:
        self.forgetting = float(forgetting)
        self.delta = float(delta)

    def params(self) -> dict:
        return {"forgetting": self.forgetting, "delta": self.delta}

    def fit(self, fit: QualitativeFit) -> np.ndarray:
        if fit.design is None or fit.response is None:
            return np.asarray(fit.ols.coefficients, dtype=float)
        # Batch derivation uses no forgetting: with lambda = 1 the
        # recursion converges to the (ridge-stabilised) OLS solution.
        return rls_fit(fit.design, fit.response, forgetting=1.0, delta=self.delta)

    def finalize(
        self, model: MultiStateCostModel, fit: QualitativeFit
    ) -> MultiStateCostModel:
        return self._rework(model, fit, self.fit(fit))

    def make_updater(self, model: MultiStateCostModel) -> RecursiveLeastSquares:
        return RecursiveLeastSquares(
            len(model.coefficients),
            forgetting=self.forgetting,
            theta=np.asarray(model.coefficients, dtype=float),
        )


class SGDStrategy(CostModelStrategy):
    """Normalized-LMS SGD, warm-started from the batch OLS solution."""

    name = "mlr.sgd"
    supports_online_update = True

    def __init__(
        self,
        learning_rate: float = DEFAULT_LEARNING_RATE,
        epochs: int = DEFAULT_SGD_EPOCHS,
    ) -> None:
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)

    def params(self) -> dict:
        return {"learning_rate": self.learning_rate, "epochs": self.epochs}

    def fit(self, fit: QualitativeFit) -> np.ndarray:
        theta = np.asarray(fit.ols.coefficients, dtype=float)
        if fit.design is None or fit.response is None:
            return theta
        return sgd_fit(
            fit.design,
            fit.response,
            learning_rate=self.learning_rate,
            epochs=self.epochs,
            theta=theta,
        )

    def finalize(
        self, model: MultiStateCostModel, fit: QualitativeFit
    ) -> MultiStateCostModel:
        return self._rework(model, fit, self.fit(fit))

    def make_updater(self, model: MultiStateCostModel) -> NormalizedSGD:
        return NormalizedSGD(
            len(model.coefficients),
            learning_rate=self.learning_rate,
            theta=np.asarray(model.coefficients, dtype=float),
        )


_STRATEGIES: dict[str, type[CostModelStrategy]] = {
    OLSStrategy.name: OLSStrategy,
    RLSStrategy.name: RLSStrategy,
    SGDStrategy.name: SGDStrategy,
}

STRATEGY_NAMES: tuple[str, ...] = tuple(sorted(_STRATEGIES))


def resolve_strategy(
    name: str, params: Mapping | None = None
) -> CostModelStrategy:
    """Instantiate the strategy registered under *name*."""
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        known = ", ".join(STRATEGY_NAMES)
        raise ValueError(f"unknown cost-model strategy {name!r} (known: {known})")
    return cls(**dict(params or {}))


def model_form(model: MultiStateCostModel) -> str:
    """The strategy name a model was derived with (absent = OLS default)."""
    return model.metadata.get(MODEL_FORM_KEY, DEFAULT_STRATEGY)


def strategy_for(model: MultiStateCostModel) -> CostModelStrategy:
    """Reconstruct a model's strategy from its metadata."""
    return resolve_strategy(
        model_form(model), model.metadata.get(STRATEGY_PARAMS_KEY)
    )
