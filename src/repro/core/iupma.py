"""Algorithm 3.1: Iterative Uniform Partition with Merging Adjustment.

Phase 1 grows the number of uniformly partitioned contention states until
the qualitative regression stops improving appreciably (in R² *and*
standard error of estimation) or the model would get too complicated;
phase 2 merges neighbouring states whose adjusted coefficients are not
significantly different.  The algorithm returns the final state set *and*
the fitted model — "the algorithm integrates the contention states
determination procedure with the cost model development procedure"
(paper footnote 4).

The same iterate-and-adjust loop, parameterized by how candidate
partitions are generated, also powers ICMA (:mod:`repro.core.icma`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .fitting import QualitativeFit, fit_qualitative, min_state_count
from .merging import DEFAULT_MERGE_THRESHOLD, MergeRecord, merge_adjustment
from .partition import ContentionStates, uniform_partition
from .qualitative import ModelForm


@dataclass(frozen=True)
class StatesConfig:
    """Tuning knobs for the state-determination algorithms."""

    #: Largest number of states tried before the model is "too complicated"
    #: (§5: three to six states usually suffice).
    max_states: int = 6
    #: Minimum R² improvement that justifies another state.
    min_r2_gain: float = 0.02
    #: Minimum *relative* SEE improvement that justifies another state.
    min_see_gain: float = 0.05
    #: Merge states whose adjusted coefficients differ by less than this.
    merge_threshold: float = DEFAULT_MERGE_THRESHOLD
    #: Per-state identifiability floor; ``None`` derives it from the
    #: variable count (n + 2).
    min_obs_per_state: Optional[int] = None
    form: ModelForm = ModelForm.GENERAL

    def obs_floor(self, n_variables: int) -> int:
        if self.min_obs_per_state is not None:
            return self.min_obs_per_state
        return n_variables + 2


@dataclass(frozen=True)
class PhaseRecord:
    """Statistics of one phase-1 iteration."""

    num_states: int
    r_squared: float
    standard_error: float
    accepted: bool


@dataclass
class StateDeterminationResult:
    """Outcome of IUPMA/ICMA: final states, fitted model, and history."""

    fit: QualitativeFit
    phase1: list[PhaseRecord] = field(default_factory=list)
    merges: list[MergeRecord] = field(default_factory=list)
    algorithm: str = "iupma"

    @property
    def states(self) -> ContentionStates:
        return self.fit.states

    @property
    def num_states(self) -> int:
        return self.fit.num_states


#: A partitioner maps a desired state count to a candidate partition,
#: or None when that count is infeasible for the sample.
Partitioner = Callable[[int], Optional[ContentionStates]]


def determine_states(
    X: np.ndarray,
    y: np.ndarray,
    probing: np.ndarray,
    variable_names: tuple[str, ...],
    partitioner: Partitioner,
    config: StatesConfig = StatesConfig(),
    algorithm: str = "custom",
) -> StateDeterminationResult:
    """The shared iterate-then-merge loop behind IUPMA and ICMA."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    y = np.asarray(y, dtype=float).reshape(-1)
    probing_arr = np.asarray(probing, dtype=float).reshape(-1)
    if probing_arr.size == 0:
        raise ValueError("at least one observation is required")
    floor = config.obs_floor(X.shape[1])

    one_state = partitioner(1)
    if one_state is None:
        raise ValueError("partitioner must support a single state")
    current = fit_qualitative(X, y, probing_arr, one_state, variable_names, config.form)
    history = [
        PhaseRecord(1, current.r_squared, current.standard_error, accepted=True)
    ]

    m = 1
    while m < config.max_states:
        candidate_states = partitioner(m + 1)
        if candidate_states is None or candidate_states.num_states != m + 1:
            break
        try:
            candidate = fit_qualitative(
                X, y, probing_arr, candidate_states, variable_names, config.form
            )
        except ValueError:
            break  # sample too small to identify this many states
        if min_state_count(candidate) < floor:
            break
        r2_gain = candidate.r_squared - current.r_squared
        if current.standard_error > 0:
            see_gain = (
                current.standard_error - candidate.standard_error
            ) / current.standard_error
        else:
            see_gain = 0.0
        accepted = r2_gain >= config.min_r2_gain or see_gain >= config.min_see_gain
        history.append(
            PhaseRecord(
                m + 1, candidate.r_squared, candidate.standard_error, accepted
            )
        )
        if not accepted:
            break
        current = candidate
        m += 1

    final, merges = merge_adjustment(
        current, X, y, probing_arr, threshold=config.merge_threshold
    )
    return StateDeterminationResult(
        fit=final, phase1=history, merges=merges, algorithm=algorithm
    )


def determine_states_iupma(
    X: np.ndarray,
    y: np.ndarray,
    probing: np.ndarray,
    variable_names: tuple[str, ...],
    config: StatesConfig = StatesConfig(),
) -> StateDeterminationResult:
    """Algorithm 3.1 with the straightforward uniform partition."""
    probing_arr = np.asarray(probing, dtype=float).reshape(-1)
    cmin = float(probing_arr.min())
    cmax = float(probing_arr.max())

    def partitioner(m: int) -> Optional[ContentionStates]:
        if m > 1 and cmin == cmax:
            return None
        return uniform_partition(cmin, cmax, m)

    return determine_states(
        X, y, probing_arr, variable_names, partitioner, config, algorithm="iupma"
    )
