"""Agglomerative hierarchical clustering of probing costs (for ICMA).

§3.3: "An agglomerative hierarchical algorithm is often used for data
clustering.  The main idea [...] is to place each data object in its own
cluster initially and then gradually merge clusters into larger and
larger clusters until a desired number of clusters have been found.  The
criterion used to merge two clusters is to make their distance minimized
[... using] the distance between the centroids."

Probing costs are one-dimensional, which lets us exploit a classical
fact: under centroid-distance linkage on the line, the globally closest
pair of clusters is always adjacent in sorted order, so only neighbour
merges need to be considered and the whole agglomeration runs in
O(n log n) after sorting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Cluster:
    """A contiguous cluster of one-dimensional values."""

    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def centroid(self) -> float:
        return self.total / self.count

    def merged_with(self, other: "Cluster") -> "Cluster":
        return Cluster(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def extent(self) -> tuple[float, float]:
        return self.minimum, self.maximum


def agglomerate(values: Sequence[float], num_clusters: int) -> list[Cluster]:
    """Cluster *values* into *num_clusters* groups by centroid linkage.

    Returns clusters sorted by centroid (ascending).  Duplicate values
    start in one singleton each, exactly as the textbook algorithm says;
    ties in merge distance break toward the leftmost pair so the result
    is deterministic.
    """
    if num_clusters < 1:
        raise ValueError("num_clusters must be at least 1")
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot cluster an empty sample")
    clusters = [Cluster(1, v, v, v) for v in data]
    if num_clusters >= len(clusters):
        return clusters

    # Neighbour-only merging is exact for 1-D centroid linkage.
    while len(clusters) > num_clusters:
        best_idx = 0
        best_gap = clusters[1].centroid - clusters[0].centroid
        for i in range(1, len(clusters) - 1):
            gap = clusters[i + 1].centroid - clusters[i].centroid
            if gap < best_gap:
                best_gap = gap
                best_idx = i
        merged = clusters[best_idx].merged_with(clusters[best_idx + 1])
        clusters[best_idx : best_idx + 2] = [merged]
    return clusters


def merge_small_clusters(clusters: list[Cluster], min_count: int) -> list[Cluster]:
    """Merge clusters with fewer than *min_count* members into their
    nearest (by centroid) neighbour.

    The paper prefers drawing *additional sample queries* to fill a thin
    cluster (§3.3) — the builder does that when it can; this function is
    the terminal fallback when resampling is exhausted, so that no data
    point is discarded as an outlier (also per §3.3: "no useful contention
    level points are ignored").
    """
    if min_count <= 1 or len(clusters) <= 1:
        return list(clusters)
    result = list(clusters)
    while len(result) > 1:
        small = [i for i, c in enumerate(result) if c.count < min_count]
        if not small:
            break
        i = small[0]
        if i == 0:
            j = 1
        elif i == len(result) - 1:
            j = i - 1
        else:
            left_gap = result[i].centroid - result[i - 1].centroid
            right_gap = result[i + 1].centroid - result[i].centroid
            j = i - 1 if left_gap <= right_gap else i + 1
        lo, hi = min(i, j), max(i, j)
        merged = result[lo].merged_with(result[hi])
        result[lo : hi + 1] = [merged]
    return result


def cluster_extents(clusters: Sequence[Cluster]) -> list[tuple[float, float]]:
    """[min, max] intervals of the clusters, in centroid order."""
    return [c.extent for c in clusters]
