"""Mixed backward/forward variable selection for qualitative cost models.

§4.2: start from the *full basic model* and eliminate insignificant basic
variables backward; then try adding significant secondary variables
forward.  When a variable enters or leaves, **all** of its per-state
coefficients enter or leave with it.  Ranking uses simple correlation
coefficients computed per contention state:

* backward — remove the variable with the smallest *average* |r| with
  the response across states, provided removal improves the standard
  error of estimation or barely hurts it;
* forward — add the secondary variable with the largest average |r|
  with the *residuals* of the current model across states, provided it
  improves the SEE appreciably.

Additionally (§4.2 screen): a variable whose *maximum* per-state |r| with
the response is too small has no linear relationship with the cost in any
state and is removed from consideration, and (§4.3) a variable whose
max-over-states VIF is large is excluded to avoid multicollinearity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mlr.correlation import (
    average_abs_state_correlation,
    max_abs_state_correlation,
)
from ..mlr.diagnostics import DEFAULT_VIF_LIMIT, max_state_vif
from .fitting import QualitativeFit, fit_qualitative
from .partition import ContentionStates
from .qualitative import ModelForm


@dataclass(frozen=True)
class SelectionConfig:
    """Thresholds of the mixed selection procedure."""

    #: Variables with max-over-states |r| below this are screened out.
    correlation_floor: float = 0.05
    #: Backward: removal allowed if SEE grows by at most this fraction
    #: (the paper's delta_1: "removing x improves accuracy or affects the
    #: model very little").
    backward_tolerance: float = 0.02
    #: Forward: addition requires SEE to shrink by at least this fraction
    #: (the paper's delta_2: "significantly improves the accuracy").
    forward_gain: float = 0.02
    #: Max-over-states VIF above which a variable is excluded (§4.3).
    vif_limit: float = DEFAULT_VIF_LIMIT


@dataclass(frozen=True)
class SelectionStep:
    """One decision made by the procedure (for audit/report)."""

    action: str  # "screen", "vif", "remove", "add", "keep"
    variable: str
    detail: str


@dataclass
class SelectionResult:
    """Final variable set and fitted model."""

    variables: tuple[str, ...]
    fit: QualitativeFit
    steps: list[SelectionStep] = field(default_factory=list)


class _Data:
    """Column-addressable view of the sample for one query class."""

    def __init__(self, columns: dict[str, np.ndarray], y: np.ndarray, probing: np.ndarray):
        self.columns = columns
        self.y = y
        self.probing = probing

    def matrix(self, names: tuple[str, ...]) -> np.ndarray:
        if not names:
            return np.empty((self.y.shape[0], 0))
        return np.column_stack([self.columns[n] for n in names])


def _fit(data: _Data, names: tuple[str, ...], states: ContentionStates, form: ModelForm):
    return fit_qualitative(
        data.matrix(names), data.y, data.probing, states, names, form
    )


def select_variables(
    columns: dict[str, np.ndarray],
    y: np.ndarray,
    probing: np.ndarray,
    basic: tuple[str, ...],
    secondary: tuple[str, ...],
    states: ContentionStates,
    form: ModelForm = ModelForm.GENERAL,
    config: SelectionConfig = SelectionConfig(),
) -> SelectionResult:
    """Run the mixed backward/forward procedure.

    Parameters
    ----------
    columns:
        Variable name → value vector over the sample.
    y, probing:
        Observed costs and their sampled probing costs.
    basic, secondary:
        Candidate variable names (paper Table 3 sets).
    states:
        The contention states already determined for this environment.
    """
    y = np.asarray(y, dtype=float).reshape(-1)
    probing_arr = np.asarray(probing, dtype=float).reshape(-1)
    cols = {k: np.asarray(v, dtype=float).reshape(-1) for k, v in columns.items()}
    data = _Data(cols, y, probing_arr)
    assignment = states.assign(probing_arr.tolist())
    m = states.num_states
    steps: list[SelectionStep] = []

    # ---- screen: no linear relationship with the response in ANY state.
    def screened(names: tuple[str, ...]) -> tuple[str, ...]:
        kept = []
        for n in names:
            r_max = max_abs_state_correlation(cols[n], y, assignment, m)
            if r_max < config.correlation_floor:
                steps.append(
                    SelectionStep("screen", n, f"max state |r|={r_max:.3f} below floor")
                )
            else:
                kept.append(n)
        return tuple(kept)

    basic_kept = screened(basic)
    secondary_kept = screened(secondary)
    if not basic_kept:
        # Degenerate sample; keep the strongest basic variable anyway so
        # a model always exists.
        strongest = max(
            basic,
            key=lambda n: max_abs_state_correlation(cols[n], y, assignment, m),
        )
        basic_kept = (strongest,)
        steps.append(SelectionStep("keep", strongest, "forced: all basics screened"))

    # ---- multicollinearity screen on the basic set (worst VIF first).
    basic_list = list(basic_kept)
    while len(basic_list) > 1:
        X = data.matrix(tuple(basic_list))
        vifs = [max_state_vif(X, assignment, m, j) for j in range(len(basic_list))]
        worst = int(np.argmax(vifs))
        if vifs[worst] <= config.vif_limit:
            break
        name = basic_list.pop(worst)
        steps.append(
            SelectionStep("vif", name, f"max state VIF={vifs[worst]:.1f} exceeds limit")
        )
    current_names = tuple(basic_list)
    current = _fit(data, current_names, states, form)

    # ---- backward elimination over the basic model.
    while len(current_names) > 1:
        ranked = sorted(
            current_names,
            key=lambda n: average_abs_state_correlation(cols[n], y, assignment, m),
        )
        candidate = ranked[0]
        reduced_names = tuple(n for n in current_names if n != candidate)
        reduced = _fit(data, reduced_names, states, form)
        if reduced.standard_error <= current.standard_error * (
            1.0 + config.backward_tolerance
        ):
            steps.append(
                SelectionStep(
                    "remove",
                    candidate,
                    f"SEE {current.standard_error:.4g} -> {reduced.standard_error:.4g}",
                )
            )
            current_names, current = reduced_names, reduced
        else:
            break

    # ---- forward selection over the secondary variables.
    remaining = [n for n in secondary_kept if n not in current_names]
    while remaining:
        residuals = current.ols.residuals
        ranked = sorted(
            remaining,
            key=lambda n: average_abs_state_correlation(
                cols[n], residuals, assignment, m
            ),
            reverse=True,
        )
        candidate = ranked[0]
        augmented_names = current_names + (candidate,)
        X_aug = data.matrix(augmented_names)
        vif = max_state_vif(X_aug, assignment, m, len(augmented_names) - 1)
        if vif > config.vif_limit:
            steps.append(
                SelectionStep("vif", candidate, f"max state VIF={vif:.1f} exceeds limit")
            )
            remaining.remove(candidate)
            continue
        try:
            augmented = _fit(data, augmented_names, states, form)
        except ValueError:
            # Not enough observations for another variable block.
            break
        if augmented.standard_error <= current.standard_error * (
            1.0 - config.forward_gain
        ):
            steps.append(
                SelectionStep(
                    "add",
                    candidate,
                    f"SEE {current.standard_error:.4g} -> {augmented.standard_error:.4g}",
                )
            )
            current_names, current = augmented_names, augmented
            remaining.remove(candidate)
        else:
            break

    return SelectionResult(variables=current_names, fit=current, steps=steps)
