"""End-to-end cost-model development: the multi-states query sampling method.

Pipeline (paper §4):

1. classify local queries (:mod:`repro.core.classification`);
2. draw a sample of queries sized per Proposition 4.1
   (:mod:`repro.core.sampling`);
3. run them in the dynamic environment, pairing each execution with a
   probing-query cost;
4. determine the contention states — IUPMA or ICMA — jointly with a
   first qualitative fit over the basic variables;
5. select variables with the mixed backward/forward procedure;
6. package the final fit as a :class:`~repro.core.model.MultiStateCostModel`
   ready for the MDBS catalog.

The *static query sampling method* is the one-state special case
(``algorithm="static"``): run it on samples from a static environment
for the paper's Static Approach 1, or on dynamic samples for Static
Approach 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import obs
from ..engine.database import LocalDatabase
from ..engine.query import Query
from .classification import QueryClass
from .icma import determine_states_icma
from .iupma import StateDeterminationResult, StatesConfig, determine_states_iupma
from .model import MultiStateCostModel
from .partition import ContentionStates
from .probing import ProbingQuery, default_probing_query
from .sampling import SamplingPlan, collect_observations, recommended_sample_size
from .selection import SelectionConfig, SelectionResult, select_variables
from .strategy import DEFAULT_STRATEGY, resolve_strategy
from .variables import Observation, check_observations

ALGORITHMS = ("iupma", "icma", "static")


@dataclass
class BuilderConfig:
    """All tunables of the pipeline, with the paper-calibrated defaults."""

    states: StatesConfig = field(default_factory=StatesConfig)
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    sampling: SamplingPlan = field(default_factory=SamplingPlan)
    #: Secondary-variable allowance in the sizing rule (paper eq. (4)).
    secondary_allowance: int = 2
    #: Anticipated maximum state count used for sizing the sample.
    sizing_states: int = 6
    #: Model-form strategy the final fit ships as (see
    #: :mod:`repro.core.strategy`); ``mlr.ols`` is the paper's method.
    strategy: str = DEFAULT_STRATEGY


@dataclass
class BuildOutcome:
    """A derived model plus everything produced along the way.

    ``selection`` and ``determination`` are derivation provenance: they
    are populated by a live build, but outcomes restored from the
    on-disk experiment cache carry ``None`` there (only the model,
    observations, and timings are persisted — see
    :mod:`repro.experiments.serialize`).
    """

    model: MultiStateCostModel
    observations: list[Observation]
    selection: SelectionResult | None
    determination: StateDeterminationResult | None
    #: Real (wall-clock) seconds spent in each pipeline phase, in
    #: pipeline order — the model's derivation cost.
    timings: dict[str, float] = field(default_factory=dict)


class CostModelBuilder:
    """Derives cost models for one local database system."""

    def __init__(
        self,
        database: LocalDatabase,
        probe: ProbingQuery | None = None,
        config: BuilderConfig | None = None,
    ) -> None:
        self.database = database
        self.probe = probe or default_probing_query(database)
        self.config = config or BuilderConfig()

    # -- sizing ---------------------------------------------------------

    def sample_size(self, query_class: QueryClass) -> int:
        """Sample size per the paper's sizing rule (eq. (4))."""
        return recommended_sample_size(
            query_class.variables,
            self.config.sizing_states,
            self.config.secondary_allowance,
        )

    # -- collection ---------------------------------------------------------

    def collect(self, queries: Sequence[Query | str]) -> list[Observation]:
        """Run sample queries, pairing each with a probing cost."""
        with obs.span("build.sampling", database=self.database.name) as sp:
            observations = collect_observations(
                self.database, queries, self.probe, self.config.sampling
            )
            if sp.recording:
                sp.set_attribute("n_observations", len(observations))
        return observations

    # -- model development ------------------------------------------------------

    def build_from_observations(
        self,
        observations: Sequence[Observation],
        query_class: QueryClass,
        algorithm: str = "iupma",
        strategy: str | None = None,
    ) -> BuildOutcome:
        """Steps 4–6 of the pipeline over pre-collected observations.

        *strategy* overrides the configured model-form strategy for this
        one derivation (the maintainer uses this for per-class forms).
        """
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}; pick from {ALGORITHMS}")
        with obs.span(
            "build.derive", class_label=query_class.label, algorithm=algorithm
        ):
            return self._derive(observations, query_class, algorithm, strategy)

    def _derive(
        self,
        observations: Sequence[Observation],
        query_class: QueryClass,
        algorithm: str,
        strategy: str | None = None,
    ) -> BuildOutcome:
        form_strategy = resolve_strategy(strategy or self.config.strategy)
        timings: dict[str, float] = {}
        observations = list(observations)
        variables = query_class.variables
        check_observations(observations, variables.all_names)

        columns = {
            name: np.array([o.values[name] for o in observations])
            for name in variables.all_names
        }
        y = np.array([o.cost for o in observations])
        probing = np.array([o.probing_cost for o in observations])

        phase_started = time.perf_counter()
        determination: StateDeterminationResult | None = None
        with obs.span("build.partitioning", algorithm=algorithm) as sp:
            if algorithm == "static":
                states = ContentionStates(float(probing.min()), float(probing.max()))
            else:
                X_basic = np.column_stack([columns[n] for n in variables.basic])
                determine = (
                    determine_states_iupma
                    if algorithm == "iupma"
                    else determine_states_icma
                )
                determination = determine(
                    X_basic, y, probing, variables.basic, self.config.states
                )
                states = determination.states
            if sp.recording:
                sp.set_attribute("num_states", states.num_states)
        timings["partitioning"] = time.perf_counter() - phase_started

        phase_started = time.perf_counter()
        with obs.span("build.variable_selection") as sp:
            selection = select_variables(
                columns,
                y,
                probing,
                variables.basic,
                variables.secondary,
                states,
                self.config.states.form,
                self.config.selection,
            )
            if sp.recording:
                sp.set_attribute("selected", list(selection.variables))
        timings["variable_selection"] = time.perf_counter() - phase_started

        # Qualitative provenance: every model conditions on the paper's
        # contention state; when the site simulates a memory hierarchy,
        # the observed buffer-hit state is a second qualitative variable
        # (it reaches the fit through the probing costs — the probe runs
        # through the same pool — and is recorded per-observation).
        qualitative = ["contention_state"]
        hit_states = sorted(
            {
                str(o.metadata["buffer_hit_state"])
                for o in observations
                if "buffer_hit_state" in o.metadata
            }
        )
        if self.database.buffer_pool is not None or hit_states:
            qualitative.append("buffer_hit_state")

        phase_started = time.perf_counter()
        with obs.span("build.fitting"):
            model = MultiStateCostModel.from_fit(
                selection.fit,
                class_label=query_class.label,
                family=query_class.family,
                algorithm=algorithm,
                database=self.database.name,
                probe=self.probe.describe(),
                qualitative_variables=qualitative,
                observed_buffer_hit_states=hit_states,
                # Training means of the selected variables: a representative
                # query for diagnostics (e.g. per-state cost curves).
                variable_means={
                    name: float(np.mean(columns[name]))
                    for name in selection.variables
                },
                selection_steps=[
                    {"action": s.action, "variable": s.variable, "detail": s.detail}
                    for s in selection.steps
                ],
                state_history=(
                    [
                        {
                            "num_states": r.num_states,
                            "r_squared": r.r_squared,
                            "standard_error": r.standard_error,
                            "accepted": r.accepted,
                        }
                        for r in determination.phase1
                    ]
                    if determination is not None
                    else []
                ),
            )
            # The model form is a pluggable strategy: the default (OLS)
            # finalize is the identity, keeping the paper's artifact
            # byte-identical; online forms re-derive coefficients from
            # the same selected design.
            model = form_strategy.finalize(model, selection.fit)
        timings["fitting"] = time.perf_counter() - phase_started
        obs.inc("build.models_built")
        return BuildOutcome(
            model=model,
            observations=observations,
            selection=selection,
            determination=determination,
            timings=timings,
        )

    def build(
        self,
        query_class: QueryClass,
        queries: Sequence[Query | str],
        algorithm: str = "iupma",
        strategy: str | None = None,
    ) -> BuildOutcome:
        """The full pipeline: collect observations, then derive the model."""
        with obs.span(
            "build",
            database=self.database.name,
            class_label=query_class.label,
            algorithm=algorithm,
        ):
            sampling_started = time.perf_counter()
            observations = self.collect(queries)
            sampling_seconds = time.perf_counter() - sampling_started
            outcome = self.build_from_observations(
                observations, query_class, algorithm, strategy
            )
        outcome.timings = {"sampling": sampling_seconds, **outcome.timings}
        return outcome
