"""Cost-model validation: the paper's estimate-quality criteria.

§5: "the accuracy of cost estimation in query optimization is not
required to be very high.  The estimated costs with relative errors
within 30% are considered to be very good, and the estimated costs that
are within the range of one-time larger or smaller than the corresponding
observed costs (e.g., 2 minutes vs 4 minutes) are considered to be good.
Only those estimated costs which are not of the same order of magnitude
with the observed costs (e.g., 2 minutes vs 3 hours) are not acceptable."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .model import MultiStateCostModel
from .variables import Observation

#: "Very good": relative error within 30%.
VERY_GOOD_RELATIVE_ERROR = 0.30
#: "Good": within one time larger or smaller (a factor of 2).
GOOD_FACTOR = 2.0
#: "Acceptable": same order of magnitude (a factor of 10).
ACCEPTABLE_FACTOR = 10.0


def relative_error(estimated: float, observed: float) -> float:
    """|est - obs| / obs (infinite when the observed cost is zero)."""
    if observed == 0.0:
        return float("inf") if estimated != 0.0 else 0.0
    return abs(estimated - observed) / abs(observed)


def _ratio(estimated: float, observed: float) -> float:
    """max/min ratio; infinite for non-positive estimates of positive costs."""
    if observed <= 0.0:
        return 1.0 if estimated == observed else float("inf")
    if estimated <= 0.0:
        return float("inf")
    return max(estimated / observed, observed / estimated)


def is_very_good(estimated: float, observed: float) -> bool:
    return relative_error(estimated, observed) <= VERY_GOOD_RELATIVE_ERROR


def is_good(estimated: float, observed: float) -> bool:
    """Within one time larger or smaller (includes all very good estimates)."""
    return _ratio(estimated, observed) <= GOOD_FACTOR


def is_acceptable(estimated: float, observed: float) -> bool:
    """Same order of magnitude as the observed cost."""
    return _ratio(estimated, observed) <= ACCEPTABLE_FACTOR


@dataclass(frozen=True)
class ValidationReport:
    """Estimate-quality summary over a set of test observations."""

    n_queries: int
    average_observed_cost: float
    pct_very_good: float
    pct_good: float
    pct_acceptable: float
    mean_relative_error: float
    # Training-fit statistics carried along for Table-5-style rows.
    r_squared: float
    standard_error: float
    f_significant: bool

    def row(self) -> dict:
        """A flat dict (one Table-5 row)."""
        return {
            "n": self.n_queries,
            "R2": self.r_squared,
            "SEE": self.standard_error,
            "avg_cost": self.average_observed_cost,
            "very_good_pct": self.pct_very_good,
            "good_pct": self.pct_good,
            "acceptable_pct": self.pct_acceptable,
            "mean_rel_err": self.mean_relative_error,
            "F_significant": self.f_significant,
        }


def validate_model(
    model: MultiStateCostModel,
    test_observations: Sequence[Observation],
    alpha: float = 0.01,
) -> ValidationReport:
    """Score *model* against held-out observations.

    Each test observation supplies both the variable values and the
    sampled probing cost that resolves its contention state — exactly the
    information the optimizer would have at estimation time.
    """
    if not test_observations:
        raise ValueError("at least one test observation is required")
    from ..obs import span as _obs_span

    with _obs_span(
        "build.validation",
        class_label=model.class_label,
        n_queries=len(test_observations),
    ):
        return _validate(model, test_observations, alpha)


def _validate(
    model: MultiStateCostModel,
    test_observations: Sequence[Observation],
    alpha: float,
) -> ValidationReport:
    estimates = np.array(
        [model.predict(obs.values, obs.probing_cost) for obs in test_observations]
    )
    observed = np.array([obs.cost for obs in test_observations])
    very_good = sum(is_very_good(e, o) for e, o in zip(estimates, observed))
    good = sum(is_good(e, o) for e, o in zip(estimates, observed))
    acceptable = sum(is_acceptable(e, o) for e, o in zip(estimates, observed))
    rel_errors = [
        relative_error(e, o) for e, o in zip(estimates, observed) if o > 0
    ]
    n = len(test_observations)
    return ValidationReport(
        n_queries=n,
        average_observed_cost=float(observed.mean()),
        pct_very_good=100.0 * very_good / n,
        pct_good=100.0 * good / n,
        pct_acceptable=100.0 * acceptable / n,
        mean_relative_error=float(np.mean(rel_errors)) if rel_errors else 0.0,
        r_squared=model.r_squared,
        standard_error=model.standard_error,
        f_significant=model.is_significant(alpha),
    )
