"""End-to-end: a concurrent front end riding out a regime shift.

The full adaptive loop, under real thread concurrency (pool of 4): the
front end serves batched global joins while the workload's contention
regime shifts underneath it; the armed drift policy turns the watched
class's collapsing accuracy window into a targeted re-derivation; the
registry publish invalidates exactly the stale cached plans; and the
rebuilt model brings accuracy back into the §5 good band *under the new
regime* — while every in-flight request keeps completing.
"""

import pytest

from repro.core.builder import CostModelBuilder
from repro.loadgen import (
    VAR_SITE,
    WATCHED_CLASS,
    loadgen_builder_config,
    loadgen_drift_policy,
    loadgen_tables,
    make_universe,
    train_models,
)
from repro.loadgen.worker import _MODEL_CLASSES, _round_query
from repro.mdbs.agent import MDBSAgent
from repro.mdbs.server import MDBSServer
from repro.obs.quality import AccuracyTracker
from repro.serving import ServingConfig, ServingFrontEnd

from ..loadgen.conftest import MICRO

GAP = 600.0
ROUNDS = 16
SHIFT_ROUND = 5
QUERIES_PER_ROUND = 4

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def payload():
    return train_models(MICRO)


def test_pool_survives_regime_shift_and_recovers(payload):
    import numpy as np

    var, steady = make_universe(MICRO)
    tables = loadgen_tables(MICRO)
    tracker = AccuracyTracker(probe_window_size=8, export=False)
    server = MDBSServer(accuracy=tracker, probe_ttl=GAP / 4.0)
    for site in (var, steady):
        server.register_agent(MDBSAgent(site.database))
    server.catalog.import_models(payload)

    agent = server.agents[var.name]
    server.configure_maintenance(
        var.name,
        builder=CostModelBuilder(
            agent.database, probe=agent.probe, config=loadgen_builder_config()
        ),
        drift=loadgen_drift_policy(GAP),
    )
    for query_class in _MODEL_CLASSES:
        server.register_model_class(
            var.name,
            query_class,
            lambda n, qc=query_class: var.generator.queries_for(
                qc, n, tables=tables
            ),
            sample_count=MICRO.train_count(query_class.family),
            build_now=False,
        )

    rng = np.random.default_rng(4242)
    serving = ServingConfig(
        workers=4,
        queue_depth=32,
        admission_policy="block",
        plan_cache=True,
    )
    detect_round = recover_round = None
    completed = failed = 0
    with ServingFrontEnd(server, serving) as frontend:
        for r in range(ROUNDS):
            var.environment.advance(GAP)
            steady.environment.advance(GAP)
            if r == SHIFT_ROUND:
                # The regime shift: contention pins near saturation.
                var.load_builder.constant(0.9)

            # The whole round is admitted as one concurrent batch: four
            # workers race over shared plan cache and probe state.
            batch = [
                _round_query(var, steady, tables, rng)
                for _ in range(QUERIES_PER_ROUND)
            ]
            tickets = frontend.serve(batch)
            completed += sum(1 for t in tickets if t.ok)
            failed += sum(1 for t in tickets if not t.ok)

            before = len(server.drift_events)
            server.maintain()
            if detect_round is None and len(server.drift_events) > before:
                if r >= SHIFT_ROUND:
                    detect_round = r
            stats = tracker.stats(var.name, WATCHED_CLASS)
            if (
                detect_round is not None
                and recover_round is None
                and r > detect_round
                and stats.count >= 3
                and stats.pct_good >= 50.0
            ):
                recover_round = r
        front_stats = frontend.stats()

    # Nothing dropped, nothing errored under concurrency.
    assert completed == ROUNDS * QUERIES_PER_ROUND
    assert failed == 0
    assert front_stats.completed == completed

    # The loop closed: shift detected, model re-derived and published,
    # post-rebuild accuracy back in the good band under the new regime.
    assert detect_round is not None, "drift never detected after the shift"
    assert detect_round - SHIFT_ROUND <= 4
    registry = server.catalog.registry
    active = registry.active_version(VAR_SITE, WATCHED_CLASS)
    assert active.version > 1
    assert active.provenance.trigger is not None
    assert recover_round is not None, "accuracy never returned to the good band"

    # The publish reached the plan cache: dependent entries were evicted
    # (the cache was warm before the shift, so invalidations are visible).
    assert front_stats.plan_cache_invalidated > 0
